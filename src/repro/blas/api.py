"""Unified BLAS Level 3 routine interface and specifications (paper Table I).

A *routine key* such as ``"dgemm"`` or ``"ssyr2k"`` combines a precision
prefix (``s`` = float32, ``d`` = float64) with a base routine name.  The
:data:`ROUTINE_SPECS` table records, for every base routine, the operand
shapes and types of Table I, the names of its free dimension parameters and
how FLOPs and memory footprint are computed from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

__all__ = [
    "RoutineSpec",
    "OperandSpec",
    "ROUTINE_SPECS",
    "ROUTINE_NAMES",
    "ROUTINE_KEYS",
    "PRECISIONS",
    "parse_routine",
    "routine_dims",
    "precision_dtype",
    "precision_bytes",
    "compute",
]


PRECISIONS: Dict[str, np.dtype] = {
    "s": np.dtype(np.float32),
    "d": np.dtype(np.float64),
}


@dataclass(frozen=True)
class OperandSpec:
    """Shape/type of one matrix operand as listed in Table I."""

    name: str
    shape: Tuple[str, str]
    kind: str  # "regular", "symmetric", "triangular"


@dataclass(frozen=True)
class RoutineSpec:
    """Specification of one BLAS Level 3 base routine.

    Attributes
    ----------
    name:
        Base routine name (``"gemm"``, ``"symm"``, ...).
    dim_names:
        The free size parameters the ADSALA sampler draws (paper: three for
        GEMM, two for the rest).
    operands:
        Operand table matching the paper's Table I.
    flops:
        Callable mapping the dimension dict to the floating-point operation
        count of the routine.
    memory_words:
        Callable mapping the dimension dict to the number of matrix elements
        that must be resident (input/output operands counted once even when
        overwritten, per the paper's footnote on TRMM/TRSM).

    Both callables are pure arithmetic on the dimension values, so they
    accept scalars *or* aligned NumPy arrays (one entry per problem shape)
    and return a float or float array accordingly — the batch timing path
    (:meth:`repro.machine.perfmodel.PerformanceModel.breakdown_batch`)
    relies on this.
    """

    name: str
    dim_names: Tuple[str, ...]
    operands: Tuple[OperandSpec, ...]
    flops: Callable[[Dict[str, int]], float]
    memory_words: Callable[[Dict[str, int]], float]

    @property
    def n_dims(self) -> int:
        return len(self.dim_names)

    def dims_from_args(self, *args: int, **kwargs: int) -> Dict[str, int]:
        """Build the dimension dict from positional or keyword sizes."""
        if args and kwargs:
            raise TypeError("Pass dimensions either positionally or by name, not both")
        if args:
            if len(args) != self.n_dims:
                raise ValueError(
                    f"{self.name} expects {self.n_dims} dimensions "
                    f"{self.dim_names}, got {len(args)}"
                )
            dims = dict(zip(self.dim_names, args))
        else:
            missing = [d for d in self.dim_names if d not in kwargs]
            if missing:
                raise ValueError(f"{self.name} missing dimensions: {missing}")
            extra = [d for d in kwargs if d not in self.dim_names]
            if extra:
                raise ValueError(f"{self.name} got unexpected dimensions: {extra}")
            dims = {d: kwargs[d] for d in self.dim_names}
        for key, value in dims.items():
            value = int(value)
            if value < 1:
                raise ValueError(f"Dimension {key} must be positive, got {value}")
            dims[key] = value
        return dims


ROUTINE_SPECS: Dict[str, RoutineSpec] = {
    "gemm": RoutineSpec(
        name="gemm",
        dim_names=("m", "k", "n"),
        operands=(
            OperandSpec("A", ("m", "k"), "regular"),
            OperandSpec("B", ("k", "n"), "regular"),
            OperandSpec("C", ("m", "n"), "regular"),
        ),
        flops=lambda d: 2.0 * d["m"] * d["k"] * d["n"],
        memory_words=lambda d: 1.0
        * (d["m"] * d["k"] + d["k"] * d["n"] + d["m"] * d["n"]),
    ),
    "symm": RoutineSpec(
        name="symm",
        dim_names=("m", "n"),
        operands=(
            OperandSpec("A", ("m", "m"), "symmetric"),
            OperandSpec("B", ("m", "n"), "regular"),
            OperandSpec("C", ("m", "n"), "regular"),
        ),
        flops=lambda d: 2.0 * d["m"] * d["m"] * d["n"],
        memory_words=lambda d: 1.0 * (d["m"] * d["m"] + 2 * d["m"] * d["n"]),
    ),
    "syrk": RoutineSpec(
        name="syrk",
        dim_names=("n", "k"),
        operands=(
            OperandSpec("A", ("n", "k"), "regular"),
            OperandSpec("C", ("n", "n"), "symmetric"),
        ),
        flops=lambda d: 1.0 * d["n"] * (d["n"] + 1) * d["k"],
        memory_words=lambda d: 1.0 * (d["n"] * d["k"] + d["n"] * d["n"]),
    ),
    "syr2k": RoutineSpec(
        name="syr2k",
        dim_names=("n", "k"),
        operands=(
            OperandSpec("A", ("n", "k"), "regular"),
            OperandSpec("B", ("n", "k"), "regular"),
            OperandSpec("C", ("n", "n"), "symmetric"),
        ),
        flops=lambda d: 2.0 * d["n"] * (d["n"] + 1) * d["k"],
        memory_words=lambda d: 1.0 * (2 * d["n"] * d["k"] + d["n"] * d["n"]),
    ),
    "trmm": RoutineSpec(
        name="trmm",
        dim_names=("m", "n"),
        operands=(
            OperandSpec("A", ("m", "m"), "triangular"),
            OperandSpec("B", ("m", "n"), "regular"),
        ),
        flops=lambda d: 1.0 * d["m"] * d["m"] * d["n"],
        memory_words=lambda d: 1.0 * (d["m"] * d["m"] + d["m"] * d["n"]),
    ),
    "trsm": RoutineSpec(
        name="trsm",
        dim_names=("m", "n"),
        operands=(
            OperandSpec("A", ("m", "m"), "triangular"),
            OperandSpec("B", ("m", "n"), "regular"),
        ),
        flops=lambda d: 1.0 * d["m"] * d["m"] * d["n"],
        memory_words=lambda d: 1.0 * (d["m"] * d["m"] + d["m"] * d["n"]),
    ),
}

ROUTINE_NAMES: List[str] = list(ROUTINE_SPECS)

#: All precision-qualified routine keys ("sgemm", "dgemm", ..., "dtrsm").
ROUTINE_KEYS: List[str] = [
    prec + name for name in ROUTINE_NAMES for prec in ("s", "d")
]


def parse_routine(routine: str) -> Tuple[str, str, RoutineSpec]:
    """Split ``"dgemm"`` into ``("d", "gemm", spec)``.

    A bare base name (``"gemm"``) defaults to double precision.
    """
    key = routine.lower()
    if key in ROUTINE_SPECS:
        return "d", key, ROUTINE_SPECS[key]
    prefix, base = key[:1], key[1:]
    if prefix in PRECISIONS and base in ROUTINE_SPECS:
        return prefix, base, ROUTINE_SPECS[base]
    raise KeyError(
        f"Unknown BLAS routine {routine!r}; expected one of "
        f"{ROUTINE_KEYS} or a base name in {ROUTINE_NAMES}"
    )


def routine_dims(routine: str, *args: int, **kwargs: int) -> Dict[str, int]:
    """Validated dimension dict for a routine key."""
    _, _, spec = parse_routine(routine)
    return spec.dims_from_args(*args, **kwargs)


def precision_dtype(precision: str) -> np.dtype:
    if precision not in PRECISIONS:
        raise KeyError(f"Unknown precision {precision!r}; expected 's' or 'd'")
    return PRECISIONS[precision]


def precision_bytes(precision: str) -> int:
    return precision_dtype(precision).itemsize


def compute(routine: str, threads: int = 1, **operands):
    """Execute a BLAS L3 routine with the blocked multi-threaded substrate.

    This is a convenience wrapper over :class:`repro.blas.threaded.ThreadedBlas`
    that accepts the operands as keyword arguments, e.g.::

        C = compute("dgemm", threads=4, A=A, B=B)
        B = compute("dtrsm", threads=2, A=L, B=B, lower=True)
    """
    from repro.blas.threaded import ThreadedBlas

    executor = ThreadedBlas(n_threads=threads)
    return executor.run(routine, **operands)
