"""Unified BLAS Level 3 routine interface and specifications (paper Table I).

A *routine key* such as ``"dgemm"`` or ``"ssyr2k"`` combines a precision
prefix (``s`` = float32, ``d`` = float64) with a base routine name.  Since
the routine-plugin refactor the specifications themselves live in
:mod:`repro.routines`: the Table I built-ins are provided by
:class:`repro.routines.builtin.BuiltinBlasPlugin` and :func:`parse_routine`
/ :func:`routine_dims` are thin queries against the process-wide
:class:`~repro.routines.catalog.RoutineCatalog`, so plugin routines
(``ADSALA_PLUGIN_PATH`` directories, ``adsala.routines`` entry points)
resolve everywhere these helpers are used.  This module remains the
backward-compatible import surface: :data:`ROUTINE_SPECS`,
:data:`ROUTINE_KEYS` and :data:`ROUTINE_NAMES` still describe the builtin
BLAS-12 (the default installation campaign); the catalog's ``keys()`` is
the full dynamic listing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.routines.builtin import ROUTINE_SPECS
from repro.routines.spec import PRECISIONS, OperandSpec, RoutineSpec

__all__ = [
    "RoutineSpec",
    "OperandSpec",
    "ROUTINE_SPECS",
    "ROUTINE_NAMES",
    "ROUTINE_KEYS",
    "PRECISIONS",
    "parse_routine",
    "routine_dims",
    "precision_dtype",
    "precision_bytes",
    "compute",
]


#: Base names of the builtin BLAS L3 routines (the paper's fixed set).
ROUTINE_NAMES: List[str] = list(ROUTINE_SPECS)

#: The builtin precision-qualified routine keys ("sgemm", ..., "dtrsm") —
#: the default installation campaign.  Plugin keys are listed by
#: ``repro.routines.get_catalog().keys()``.
ROUTINE_KEYS: List[str] = [
    prec + name for name in ROUTINE_NAMES for prec in ("s", "d")
]


def parse_routine(routine: str) -> Tuple[str, str, RoutineSpec]:
    """Split ``"dgemm"`` into ``("d", "gemm", spec)`` via the catalog.

    A bare base name (``"gemm"``) defaults to double precision.  Unknown
    keys raise :class:`repro.routines.UnknownRoutineError` (a
    :class:`KeyError`) naming the registered catalog keys.
    """
    from repro.routines.catalog import get_catalog

    return get_catalog().resolve(routine)


def routine_dims(routine: str, *args: int, **kwargs: int) -> Dict[str, int]:
    """Validated dimension dict for a routine key."""
    _, _, spec = parse_routine(routine)
    return spec.dims_from_args(*args, **kwargs)


def precision_dtype(precision: str) -> np.dtype:
    if precision not in PRECISIONS:
        raise KeyError(f"Unknown precision {precision!r}; expected 's' or 'd'")
    return PRECISIONS[precision]


def precision_bytes(precision: str) -> int:
    return precision_dtype(precision).itemsize


def compute(routine: str, threads: int = 1, **operands):
    """Execute a BLAS L3 routine with the blocked multi-threaded substrate.

    This is a convenience wrapper over :class:`repro.blas.threaded.ThreadedBlas`
    that accepts the operands as keyword arguments, e.g.::

        C = compute("dgemm", threads=4, A=A, B=B)
        B = compute("dtrsm", threads=2, A=L, B=B, lower=True)
    """
    from repro.blas.threaded import ThreadedBlas

    executor = ThreadedBlas(n_threads=threads)
    return executor.run(routine, **operands)
