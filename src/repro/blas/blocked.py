"""Cache-blocked (tiled) BLAS Level 3 algorithms.

Each routine is decomposed into independent *tile tasks* over the output
matrix so that the threaded executor (:mod:`repro.blas.threaded`) can run
them on a worker pool.  The tiles call NumPy's matmul on contiguous panels,
which is the standard Goto/BLIS decomposition expressed at the Python level.

The tile generators return ``(row_slice, col_slice, thunk)`` triples where
the thunk computes the tile's value without touching any other tile, so the
executor can write results in place without locking.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from repro.blas.reference import make_triangular, symmetrize, trsm as _trsm_reference

__all__ = [
    "tile_ranges",
    "gemm_tasks",
    "symm_tasks",
    "syrk_tasks",
    "syr2k_tasks",
    "trmm_tasks",
    "trsm_blocked",
    "DEFAULT_TILE",
]

#: Default output-tile edge length.  256x256 double-precision tiles keep the
#: working set of one task inside a typical per-core L2 cache slice.
DEFAULT_TILE = 256

TileTask = Tuple[slice, slice, Callable[[], np.ndarray]]


def tile_ranges(extent: int, tile: int) -> List[Tuple[int, int]]:
    """Split ``range(extent)`` into contiguous chunks of at most ``tile``."""
    if extent < 1:
        raise ValueError("extent must be positive")
    if tile < 1:
        raise ValueError("tile must be positive")
    return [(start, min(start + tile, extent)) for start in range(0, extent, tile)]


def gemm_tasks(A, B, alpha: float, tile: int) -> Iterator[TileTask]:
    """Tile tasks computing ``alpha * A @ B`` block by block of C."""
    m, k = A.shape
    k2, n = B.shape
    if k != k2:
        raise ValueError(f"Inner dimensions do not match: {A.shape} @ {B.shape}")
    for row_start, row_end in tile_ranges(m, tile):
        a_panel = A[row_start:row_end, :]
        for col_start, col_end in tile_ranges(n, tile):
            b_panel = B[:, col_start:col_end]

            def task(a_panel=a_panel, b_panel=b_panel):
                return alpha * (a_panel @ b_panel)

            yield slice(row_start, row_end), slice(col_start, col_end), task


def symm_tasks(A, B, alpha: float, lower: bool, tile: int) -> Iterator[TileTask]:
    """Tile tasks for ``alpha * sym(A) @ B`` (side='L')."""
    full_A = symmetrize(A, lower=lower)
    yield from gemm_tasks(full_A, B, alpha, tile)


def syrk_tasks(A, alpha: float, trans: bool, tile: int) -> Iterator[TileTask]:
    """Tile tasks for ``alpha * A @ A.T`` (or ``A.T @ A``).

    Only the tiles of the lower triangle (including diagonal blocks) are
    computed; the executor mirrors them into the upper triangle afterwards.
    """
    op = A.T if trans else A
    n = op.shape[0]
    for row_start, row_end in tile_ranges(n, tile):
        a_panel = op[row_start:row_end, :]
        for col_start, col_end in tile_ranges(n, tile):
            if col_start > row_start:
                continue  # strictly-upper tiles are mirrored later
            b_panel = op[col_start:col_end, :].T

            def task(a_panel=a_panel, b_panel=b_panel):
                return alpha * (a_panel @ b_panel)

            yield slice(row_start, row_end), slice(col_start, col_end), task


def syr2k_tasks(A, B, alpha: float, trans: bool, tile: int) -> Iterator[TileTask]:
    """Tile tasks for ``alpha * (A @ B.T + B @ A.T)`` over the lower triangle."""
    opA = A.T if trans else A
    opB = B.T if trans else B
    n = opA.shape[0]
    for row_start, row_end in tile_ranges(n, tile):
        a_row = opA[row_start:row_end, :]
        b_row = opB[row_start:row_end, :]
        for col_start, col_end in tile_ranges(n, tile):
            if col_start > row_start:
                continue
            a_col = opA[col_start:col_end, :]
            b_col = opB[col_start:col_end, :]

            def task(a_row=a_row, b_row=b_row, a_col=a_col, b_col=b_col):
                return alpha * (a_row @ b_col.T + b_row @ a_col.T)

            yield slice(row_start, row_end), slice(col_start, col_end), task


def trmm_tasks(
    A, B, alpha: float, lower: bool, transa: bool, unit_diag: bool, tile: int
) -> Iterator[TileTask]:
    """Tile tasks for ``alpha * op(tri(A)) @ B`` (side='L').

    The triangular structure is exploited per row-block: row block ``i`` of
    the result only needs the columns of ``A`` up to (lower) or from (upper)
    block ``i``, so skinny row blocks near the apex do less work — the same
    load-imbalance source a real TRMM has.
    """
    tri = make_triangular(A, lower=lower, unit_diag=unit_diag)
    op = tri.T if transa else tri
    m = op.shape[0]
    op_is_lower = lower != transa  # transposing flips the triangle
    for row_start, row_end in tile_ranges(m, tile):
        if op_is_lower:
            a_panel = op[row_start:row_end, :row_end]
            b_rows = slice(0, row_end)
        else:
            a_panel = op[row_start:row_end, row_start:]
            b_rows = slice(row_start, m)
        for col_start, col_end in tile_ranges(B.shape[1], tile):
            b_panel = B[b_rows, col_start:col_end]

            def task(a_panel=a_panel, b_panel=b_panel):
                return alpha * (a_panel @ b_panel)

            yield slice(row_start, row_end), slice(col_start, col_end), task


def trsm_blocked(
    A,
    B,
    alpha: float = 1.0,
    lower: bool = True,
    transa: bool = False,
    unit_diag: bool = False,
    tile: int = DEFAULT_TILE,
    column_task_runner: Callable | None = None,
) -> np.ndarray:
    """Blocked triangular solve (side='L') with column-panel parallelism.

    The solve recurrence is sequential across row blocks, but independent
    across column panels of the right-hand side; ``column_task_runner`` (when
    given) receives a list of thunks, one per column panel, and may execute
    them concurrently.
    """
    tri = make_triangular(A, lower=lower, unit_diag=unit_diag)
    op = tri.T if transa else tri
    m, n = B.shape
    if op.shape[0] != m:
        raise ValueError("A and B dimensions do not match for side='L'")
    out_dtype = np.result_type(A, B)
    if not np.issubdtype(out_dtype, np.floating):
        out_dtype = np.float64
    X = alpha * np.array(B, dtype=out_dtype, copy=True)

    col_panels = tile_ranges(n, tile)

    def solve_panel(col_start: int, col_end: int) -> None:
        # Forward/backward substitution over row blocks for this panel.
        panel = X[:, col_start:col_end]
        row_blocks = tile_ranges(m, tile)
        ordered = row_blocks if (lower != transa) else list(reversed(row_blocks))
        solved: List[Tuple[int, int]] = []
        for row_start, row_end in ordered:
            diag_block = op[row_start:row_end, row_start:row_end]
            rhs = panel[row_start:row_end, :].copy()
            for prev_start, prev_end in solved:
                rhs -= op[row_start:row_end, prev_start:prev_end] @ panel[prev_start:prev_end, :]
            panel[row_start:row_end, :] = _trsm_reference(
                diag_block, rhs, lower=(lower != transa), unit_diag=unit_diag
            )
            solved.append((row_start, row_end))

    thunks = [
        (lambda cs=col_start, ce=col_end: solve_panel(cs, ce))
        for col_start, col_end in col_panels
    ]
    if column_task_runner is None:
        for thunk in thunks:
            thunk()
    else:
        column_task_runner(thunks)
    return X
