"""BLAS Level 3 substrate.

Provides everything the ADSALA layer needs from "a BLAS library":

* :mod:`repro.blas.api` — the unified routine interface and the routine
  specification table (paper Table I),
* :mod:`repro.blas.flops` — floating-point-operation and memory-footprint
  accounting per routine,
* :mod:`repro.blas.reference` — straightforward NumPy implementations used
  as correctness oracles,
* :mod:`repro.blas.blocked` — cache-blocked (tiled) algorithms,
* :mod:`repro.blas.threaded` — a thread-pool executor that runs the blocked
  algorithms with an explicitly requested number of threads, mirroring how
  ADSALA pins the vendor BLAS thread count at runtime.
"""

from repro.blas.api import (
    ROUTINE_SPECS,
    ROUTINE_NAMES,
    PRECISIONS,
    RoutineSpec,
    parse_routine,
    routine_dims,
    compute,
)
from repro.blas.flops import flop_count, memory_words, memory_bytes, arithmetic_intensity
from repro.blas.reference import gemm, symm, syrk, syr2k, trmm, trsm
from repro.blas.threaded import ThreadedBlas

__all__ = [
    "ROUTINE_SPECS",
    "ROUTINE_NAMES",
    "PRECISIONS",
    "RoutineSpec",
    "parse_routine",
    "routine_dims",
    "compute",
    "flop_count",
    "memory_words",
    "memory_bytes",
    "arithmetic_intensity",
    "gemm",
    "symm",
    "syrk",
    "syr2k",
    "trmm",
    "trsm",
    "ThreadedBlas",
]
