"""Straightforward NumPy reference implementations of BLAS Level 3 routines.

These are the correctness oracles for the blocked / threaded substrate and
the computational backend the ADSALA runtime dispatches to when executing a
call for real (as opposed to simulating its timing).

Conventions follow the Fortran BLAS:

* ``symm``/``trmm``/``trsm`` take a ``side`` argument ("L" — the structured
  operand multiplies from the left — or "R");
* ``uplo``/``lower`` selects which triangle of a symmetric or triangular
  operand is referenced; the other triangle is never read;
* ``trmm``/``trsm`` overwrite and return ``B`` (a copy is made, the caller's
  array is untouched).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm", "symm", "syrk", "syr2k", "trmm", "trsm", "symmetrize", "make_triangular"]


def _as_matrix(a, name: str) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got ndim={a.ndim}")
    return a


def symmetrize(a: np.ndarray, lower: bool = True) -> np.ndarray:
    """Return the full symmetric matrix implied by one triangle of ``a``."""
    a = _as_matrix(a, "a")
    if a.shape[0] != a.shape[1]:
        raise ValueError("symmetrize expects a square matrix")
    tri = np.tril(a) if lower else np.triu(a)
    return tri + tri.T - np.diag(np.diag(a))


def make_triangular(a: np.ndarray, lower: bool = True, unit_diag: bool = False) -> np.ndarray:
    """Zero the unreferenced triangle (and optionally force a unit diagonal)."""
    a = _as_matrix(a, "a")
    if a.shape[0] != a.shape[1]:
        raise ValueError("make_triangular expects a square matrix")
    tri = np.tril(a) if lower else np.triu(a)
    if unit_diag:
        tri = tri.copy()
        np.fill_diagonal(tri, 1.0)
    return tri


def gemm(A, B, C=None, alpha: float = 1.0, beta: float = 0.0, transa: bool = False, transb: bool = False):
    """General matrix multiply: ``C := alpha*op(A)@op(B) + beta*C``."""
    A = _as_matrix(A, "A")
    B = _as_matrix(B, "B")
    opA = A.T if transa else A
    opB = B.T if transb else B
    if opA.shape[1] != opB.shape[0]:
        raise ValueError(
            f"Inner dimensions do not match: op(A) is {opA.shape}, op(B) is {opB.shape}"
        )
    result = alpha * (opA @ opB)
    if C is None:
        if beta != 0.0:
            raise ValueError("beta != 0 requires C")
        return result
    C = _as_matrix(C, "C")
    if C.shape != result.shape:
        raise ValueError(f"C has shape {C.shape}, expected {result.shape}")
    return result + beta * C


def symm(A, B, C=None, alpha: float = 1.0, beta: float = 0.0, side: str = "L", lower: bool = True):
    """Symmetric matrix multiply.

    ``side="L"``: ``C := alpha*sym(A)@B + beta*C`` with ``A`` m×m symmetric.
    ``side="R"``: ``C := alpha*B@sym(A) + beta*C`` with ``A`` n×n symmetric.
    Only the ``lower`` (or upper) triangle of ``A`` is referenced.
    """
    if side not in ("L", "R"):
        raise ValueError("side must be 'L' or 'R'")
    A = _as_matrix(A, "A")
    B = _as_matrix(B, "B")
    full_A = symmetrize(A, lower=lower)
    if side == "L":
        if full_A.shape[1] != B.shape[0]:
            raise ValueError("A and B dimensions do not match for side='L'")
        result = alpha * (full_A @ B)
    else:
        if B.shape[1] != full_A.shape[0]:
            raise ValueError("A and B dimensions do not match for side='R'")
        result = alpha * (B @ full_A)
    if C is None:
        if beta != 0.0:
            raise ValueError("beta != 0 requires C")
        return result
    C = _as_matrix(C, "C")
    if C.shape != result.shape:
        raise ValueError(f"C has shape {C.shape}, expected {result.shape}")
    return result + beta * C


def syrk(A, C=None, alpha: float = 1.0, beta: float = 0.0, trans: bool = False, lower: bool = True):
    """Symmetric rank-k update: ``C := alpha*A@A.T + beta*C`` (or ``A.T@A``).

    Only the selected triangle of the returned matrix is meaningful in a real
    BLAS; here the full symmetric result is returned for convenience, which
    keeps the oracle simple while remaining numerically identical on the
    referenced triangle.
    """
    A = _as_matrix(A, "A")
    product = A.T @ A if trans else A @ A.T
    result = alpha * product
    n = result.shape[0]
    if C is None:
        if beta != 0.0:
            raise ValueError("beta != 0 requires C")
        return result
    C = _as_matrix(C, "C")
    if C.shape != (n, n):
        raise ValueError(f"C has shape {C.shape}, expected {(n, n)}")
    full_C = symmetrize(C, lower=lower)
    return result + beta * full_C


def syr2k(A, B, C=None, alpha: float = 1.0, beta: float = 0.0, trans: bool = False, lower: bool = True):
    """Symmetric rank-2k update: ``C := alpha*(A@B.T + B@A.T) + beta*C``."""
    A = _as_matrix(A, "A")
    B = _as_matrix(B, "B")
    if A.shape != B.shape:
        raise ValueError(f"A and B must have the same shape, got {A.shape} and {B.shape}")
    if trans:
        product = A.T @ B + B.T @ A
    else:
        product = A @ B.T + B @ A.T
    result = alpha * product
    n = result.shape[0]
    if C is None:
        if beta != 0.0:
            raise ValueError("beta != 0 requires C")
        return result
    C = _as_matrix(C, "C")
    if C.shape != (n, n):
        raise ValueError(f"C has shape {C.shape}, expected {(n, n)}")
    full_C = symmetrize(C, lower=lower)
    return result + beta * full_C


def trmm(A, B, alpha: float = 1.0, side: str = "L", lower: bool = True,
         transa: bool = False, unit_diag: bool = False):
    """Triangular matrix multiply: ``B := alpha*op(tri(A))@B`` (side='L').

    Returns a new array; the caller's ``B`` is not modified.
    """
    if side not in ("L", "R"):
        raise ValueError("side must be 'L' or 'R'")
    A = _as_matrix(A, "A")
    B = _as_matrix(B, "B")
    tri = make_triangular(A, lower=lower, unit_diag=unit_diag)
    op = tri.T if transa else tri
    if side == "L":
        if op.shape[1] != B.shape[0]:
            raise ValueError("A and B dimensions do not match for side='L'")
        return alpha * (op @ B)
    if B.shape[1] != op.shape[0]:
        raise ValueError("A and B dimensions do not match for side='R'")
    return alpha * (B @ op)


def trsm(A, B, alpha: float = 1.0, side: str = "L", lower: bool = True,
         transa: bool = False, unit_diag: bool = False):
    """Triangular solve with multiple right-hand sides.

    side='L': solves ``op(tri(A)) @ X = alpha*B`` for X.
    side='R': solves ``X @ op(tri(A)) = alpha*B`` for X.
    Returns the solution as a new array.
    """
    if side not in ("L", "R"):
        raise ValueError("side must be 'L' or 'R'")
    A = _as_matrix(A, "A")
    B = _as_matrix(B, "B")
    tri = make_triangular(A, lower=lower, unit_diag=unit_diag)
    op = tri.T if transa else tri
    diag = np.diag(op)
    if not unit_diag and np.any(np.abs(diag) < np.finfo(float).tiny * 1e3):
        raise np.linalg.LinAlgError("Triangular matrix is singular to working precision")
    rhs = alpha * B
    if side == "L":
        if op.shape[1] != B.shape[0]:
            raise ValueError("A and B dimensions do not match for side='L'")
        return np.linalg.solve(op, rhs)
    if B.shape[1] != op.shape[0]:
        raise ValueError("A and B dimensions do not match for side='R'")
    # X @ op = rhs  <=>  op.T @ X.T = rhs.T
    return np.linalg.solve(op.T, rhs.T).T
