"""FLOP-count and memory-footprint accounting for BLAS Level 3 routines.

These quantities drive both the analytic performance model
(:mod:`repro.machine.perfmodel`) and the ADSALA feature engineering
(:mod:`repro.core.features`), and implement the paper's 500 MB sampling cap
("the upper bound of the sum size of matrices", with TRMM/TRSM counting the
overwritten operand once).
"""

from __future__ import annotations

from typing import Dict

from repro.blas.api import parse_routine, precision_bytes

__all__ = [
    "flop_count",
    "memory_words",
    "memory_bytes",
    "arithmetic_intensity",
    "fits_memory_cap",
]


def flop_count(routine: str, dims: Dict[str, int]) -> float:
    """Floating-point operations performed by one call of ``routine``."""
    _, _, spec = parse_routine(routine)
    dims = spec.dims_from_args(**dims)
    return float(spec.flops(dims))


def memory_words(routine: str, dims: Dict[str, int]) -> float:
    """Total matrix elements held by the call (overwritten operands counted once)."""
    _, _, spec = parse_routine(routine)
    dims = spec.dims_from_args(**dims)
    return float(spec.memory_words(dims))


def memory_bytes(routine: str, dims: Dict[str, int], precision: str | None = None) -> float:
    """Memory footprint in bytes for the given precision.

    When ``precision`` is ``None`` it is taken from the routine key prefix
    (``"sgemm"`` → float32), defaulting to double precision for bare names.
    """
    prefix, _, _ = parse_routine(routine)
    if precision is None:
        precision = prefix
    return memory_words(routine, dims) * precision_bytes(precision)


def arithmetic_intensity(routine: str, dims: Dict[str, int], precision: str | None = None) -> float:
    """FLOPs per byte of operand traffic — the roofline x-coordinate."""
    bytes_moved = memory_bytes(routine, dims, precision)
    if bytes_moved <= 0:
        raise ValueError("memory footprint must be positive")
    return flop_count(routine, dims) / bytes_moved


def fits_memory_cap(
    routine: str,
    dims: Dict[str, int],
    precision: str | None = None,
    cap_bytes: float = 500e6,
) -> bool:
    """Whether the call's operands fit under the sampling memory cap (500 MB)."""
    return memory_bytes(routine, dims, precision) <= cap_bytes
