"""Multi-threaded execution of the blocked BLAS Level 3 algorithms.

:class:`ThreadedBlas` is the stand-in for "the vendor BLAS called with an
explicitly chosen thread count": the ADSALA runtime decides how many threads
to use and this executor runs the tiled algorithms on exactly that many
worker threads.  NumPy's matmul releases the GIL, so tile tasks genuinely
overlap.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List

import numpy as np

from repro.blas import blocked
from repro.blas.api import parse_routine
from repro.blas.reference import symmetrize

__all__ = ["ThreadedBlas", "ExecutionRecord"]


def _out_dtype(*arrays) -> np.dtype:
    """Common floating dtype of the operands (float32 stays float32)."""
    dtype = np.result_type(*arrays)
    if not np.issubdtype(dtype, np.floating):
        return np.dtype(np.float64)
    return dtype


@dataclass
class ExecutionRecord:
    """Wall-clock record of one executed call (for measurement-mode timing)."""

    routine: str
    threads: int
    elapsed_seconds: float
    n_tasks: int


class ThreadedBlas:
    """Run blocked BLAS Level 3 routines on a fixed-size thread pool.

    One worker pool is created lazily on the first multi-threaded call and
    reused for every subsequent call — constructing a fresh
    ``ThreadPoolExecutor`` (and its OS threads) per call costs more than
    many of the tile tasks it runs.  :attr:`last_record` timings only cover
    the call itself, so the one-off pool spin-up never pollutes
    measurement-mode numbers after the first call; :meth:`close` (or using
    the executor as a context manager) releases the workers.

    Parameters
    ----------
    n_threads:
        Number of worker threads used for tile tasks.
    tile:
        Output-tile edge length for the blocked algorithms.
    """

    def __init__(self, n_threads: int = 1, tile: int = blocked.DEFAULT_TILE):
        if n_threads < 1:
            raise ValueError("n_threads must be at least 1")
        if tile < 16:
            raise ValueError("tile must be at least 16")
        self.n_threads = n_threads
        self.tile = tile
        self.last_record: ExecutionRecord | None = None
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    # -- worker pool ---------------------------------------------------------
    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.n_threads,
                thread_name_prefix="adsala-blas",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the reusable worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedBlas":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- task execution ------------------------------------------------------
    def _run_tile_tasks(self, tasks: Iterable[blocked.TileTask], out: np.ndarray) -> int:
        tasks = list(tasks)
        if self.n_threads == 1 or len(tasks) <= 1:
            for row_slice, col_slice, thunk in tasks:
                out[row_slice, col_slice] = thunk()
            return len(tasks)

        lock = threading.Lock()
        iterator = iter(tasks)

        def worker() -> None:
            while True:
                with lock:
                    item = next(iterator, None)
                if item is None:
                    return
                row_slice, col_slice, thunk = item
                result = thunk()
                out[row_slice, col_slice] = result

        pool = self._ensure_pool()
        n_workers = min(self.n_threads, len(tasks))
        futures = [pool.submit(worker) for _ in range(n_workers)]
        for future in futures:
            future.result()
        return len(tasks)

    def _run_thunks(self, thunks: List[Callable[[], None]]) -> None:
        if self.n_threads == 1 or len(thunks) <= 1:
            for thunk in thunks:
                thunk()
            return
        pool = self._ensure_pool()
        futures = [pool.submit(thunk) for thunk in thunks]
        for future in futures:
            future.result()

    # -- routines --------------------------------------------------------------
    def gemm(self, A, B, C=None, alpha=1.0, beta=0.0) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        out = np.empty((A.shape[0], B.shape[1]), dtype=_out_dtype(A, B))
        n_tasks = self._run_tile_tasks(blocked.gemm_tasks(A, B, alpha, self.tile), out)
        if C is not None:
            out += beta * np.asarray(C)
        self._n_tasks = n_tasks
        return out

    def symm(self, A, B, C=None, alpha=1.0, beta=0.0, lower=True) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        out = np.empty((A.shape[0], B.shape[1]), dtype=_out_dtype(A, B))
        n_tasks = self._run_tile_tasks(
            blocked.symm_tasks(A, B, alpha, lower, self.tile), out
        )
        if C is not None:
            out += beta * np.asarray(C)
        self._n_tasks = n_tasks
        return out

    def syrk(self, A, C=None, alpha=1.0, beta=0.0, trans=False, lower=True) -> np.ndarray:
        A = np.asarray(A)
        n = A.shape[1] if trans else A.shape[0]
        out = np.zeros((n, n), dtype=_out_dtype(A))
        n_tasks = self._run_tile_tasks(
            blocked.syrk_tasks(A, alpha, trans, self.tile), out
        )
        # Mirror the computed lower triangle into the upper triangle.
        out = np.tril(out) + np.tril(out, -1).T
        if C is not None:
            out += beta * symmetrize(np.asarray(C), lower=lower)
        self._n_tasks = n_tasks
        return out

    def syr2k(self, A, B, C=None, alpha=1.0, beta=0.0, trans=False, lower=True) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        n = A.shape[1] if trans else A.shape[0]
        out = np.zeros((n, n), dtype=_out_dtype(A, B))
        n_tasks = self._run_tile_tasks(
            blocked.syr2k_tasks(A, B, alpha, trans, self.tile), out
        )
        out = np.tril(out) + np.tril(out, -1).T
        if C is not None:
            out += beta * symmetrize(np.asarray(C), lower=lower)
        self._n_tasks = n_tasks
        return out

    def trmm(self, A, B, alpha=1.0, lower=True, transa=False, unit_diag=False) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        out = np.empty_like(B, dtype=_out_dtype(A, B))
        n_tasks = self._run_tile_tasks(
            blocked.trmm_tasks(A, B, alpha, lower, transa, unit_diag, self.tile), out
        )
        self._n_tasks = n_tasks
        return out

    def trsm(self, A, B, alpha=1.0, lower=True, transa=False, unit_diag=False) -> np.ndarray:
        result = blocked.trsm_blocked(
            np.asarray(A),
            np.asarray(B),
            alpha=alpha,
            lower=lower,
            transa=transa,
            unit_diag=unit_diag,
            tile=self.tile,
            column_task_runner=self._run_thunks,
        )
        self._n_tasks = max(1, int(np.ceil(np.asarray(B).shape[1] / self.tile)))
        return result

    # -- generic dispatch -------------------------------------------------------
    def run(self, routine: str, **operands) -> np.ndarray:
        """Execute a routine by name (``"dgemm"``, ``"strsm"``, ...).

        The precision prefix selects the dtype the operands are cast to
        before execution.  Wall-clock time and task count are recorded in
        :attr:`last_record`.
        """
        precision, base, _ = parse_routine(routine)
        dtype = np.float32 if precision == "s" else np.float64
        cast = {
            key: (np.asarray(value, dtype=dtype) if isinstance(value, np.ndarray) or hasattr(value, "__len__") else value)
            for key, value in operands.items()
        }
        method = getattr(self, base)
        start = time.perf_counter()
        result = method(**cast)
        elapsed = time.perf_counter() - start
        self.last_record = ExecutionRecord(
            routine=routine,
            threads=self.n_threads,
            elapsed_seconds=elapsed,
            n_tasks=getattr(self, "_n_tasks", 1),
        )
        return result
