"""Command-line interface: ``adsala install | predict | serve | adapt | bundle | analyze | bench | platforms``.

The CLI mirrors how the paper's library is used, plus the serving layer:

* ``adsala install`` runs the installation workflow for a platform and
  writes the bundle (config + trained models) to a directory;
* ``adsala predict`` loads a bundle and prints the predicted-optimal thread
  count (and estimated speedup) for one BLAS call;
* ``adsala serve`` replays a request stream (a JSONL workload file or a
  generated mix) through the micro-batching serving engine and prints
  throughput plus per-routine telemetry (with ``--observe``, drift flags
  and the adaptation lifecycle from the bundle's audit trail);
* ``adsala adapt`` closes the loop: serve traffic with observed runtimes
  (optionally on a synthetically drifted machine), then let the
  :class:`~repro.adaptive.controller.AdaptationController` re-gather,
  shadow-evaluate and promote retrained models — one-shot or ``--watch``;
* ``adsala bundle`` inspects, checksum-verifies, schema-migrates or rolls
  back a bundle directory;
* ``adsala analyze`` runs the offline analytics over a run journal written
  by ``adsala serve --journal``: realized speedup vs the max-threads
  baseline per routine, error trends across bundle versions, capacity
  headroom, and the supervision counters of the recorded run;
* ``adsala bench`` regenerates a paper table from the command line;
* ``adsala platforms`` lists the built-in machine presets;
* ``adsala routines`` lists every registered routine — builtin BLAS keys
  plus any plugin routines discovered from ``ADSALA_PLUGIN_PATH``
  directories or ``adsala.routines`` entry points.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.blas.api import ROUTINE_KEYS, parse_routine
from repro.machine.platforms import get_platform, list_platforms

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adsala",
        description="ADSALA reproduction: ML-driven thread-count selection for BLAS L3",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    install = sub.add_parser("install", help="run the installation workflow")
    install.add_argument("--platform", default="gadi", help="platform preset name")
    install.add_argument(
        "--routines", nargs="+", default=None, help=f"routine keys (default: all of {ROUTINE_KEYS})"
    )
    install.add_argument("--output", required=True, help="directory to write the bundle to")
    install.add_argument("--samples", type=int, default=80, help="problem shapes per routine")
    install.add_argument("--threads-per-shape", type=int, default=14)
    install.add_argument("--test-shapes", type=int, default=30)
    install.add_argument("--tune", action="store_true", help="run hyper-parameter tuning")
    install.add_argument("--seed", type=int, default=0)
    install.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the installation fan-out "
        "(default: $ADSALA_JOBS or 1; -1 = all cores)",
    )
    install.add_argument(
        "--bundle-version",
        type=int,
        default=1,
        help="version tag stamped into the bundle manifest (the serving "
        "registry serves the highest version per platform)",
    )

    predict = sub.add_parser("predict", help="predict the optimal thread count for one call")
    predict.add_argument("--bundle", required=True, help="bundle directory written by install")
    predict.add_argument("--routine", required=True, help="routine key, e.g. dgemm")
    predict.add_argument("--dims", nargs="+", type=int, required=True,
                         help="matrix dimensions in the routine's natural order")

    serve = sub.add_parser(
        "serve", help="replay a request stream through the micro-batching engine"
    )
    serve.add_argument("--bundle", required=True, help="bundle directory written by install")
    serve.add_argument(
        "--workload", default=None,
        help="JSONL workload file (one {'routine':..., 'dims':{...}} per line); "
        "generated when omitted",
    )
    serve.add_argument("--requests", type=int, default=256,
                       help="generated workload length (ignored with --workload)")
    serve.add_argument("--mix", choices=["uniform", "cycling", "skewed"],
                       default="uniform", help="generated workload distribution")
    serve.add_argument("--routines", nargs="+", default=None,
                       help="routines for the generated workload (default: installed)")
    serve.add_argument("--batch-size", type=int, default=64,
                       help="micro-batch size limit")
    serve.add_argument("--shards", type=int, default=1,
                       help="engine shards behind the concurrent frontend "
                       "(1 = the single-engine path)")
    serve.add_argument("--backend", choices=["thread", "process"],
                       default="thread",
                       help="shard execution backend: engines in this process "
                       "(thread) or one worker process per shard mapping the "
                       "model state from shared memory (process)")
    serve.add_argument("--clients", type=int, default=1,
                       help="concurrent client threads driving the frontend")
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="global in-flight request bound (admission control)")
    serve.add_argument("--backpressure", choices=["block", "reject"],
                       default="block",
                       help="what submit() does when --max-pending requests "
                       "are in flight: wait for a slot or shed the request")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--no-cache", action="store_true",
                       help="bypass the per-routine LRU prediction caches")
    serve.add_argument("--observe", action="store_true",
                       help="simulate observed runtimes (independent noise) and "
                       "report drift / re-install candidates")
    serve.add_argument("--drift-threshold", type=float, default=0.25,
                       help="rolling mean |observed-predicted|/observed that flags "
                       "a routine for re-installation")
    serve.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="seeded chaos for the sharded path: a fault spec like "
                       "'kill:3,hang:1' (kinds: kill, hang, corrupt, shm, slow); "
                       "forces the sharded frontend")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the deterministic fault schedule")
    serve.add_argument("--fault-horizon", type=int, default=None,
                       help="dispatch-ordinal window the fault schedule is drawn "
                       "from (default: 8x the fault count)")
    serve.add_argument("--hang-timeout", type=float, default=30.0,
                       help="seconds a batch may stay in flight before the "
                       "supervisor declares the shard hung")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request timeout in seconds; requests that "
                       "expire before execution are shed, not served")
    serve.add_argument("--no-supervise", action="store_true",
                       help="disable shard supervision: worker deaths fail "
                       "their requests instead of restart + redispatch")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="expose Prometheus text at "
                       "http://127.0.0.1:PORT/metrics (JSON at /metrics.json) "
                       "from a stdlib HTTP thread; 0 picks an ephemeral port")
    serve.add_argument("--metrics-linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the metrics endpoint up this long after the "
                       "stream finishes, so scrapers can collect the final "
                       "state (default: stop immediately)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="append every served plan, observation and shed "
                       "event to a JSONL run journal at PATH "
                       "(read it back with 'adsala analyze')")
    serve.add_argument("--journal-max-bytes", type=int, default=0,
                       help="rotate the journal when the live segment would "
                       "exceed this size (0 = never rotate)")

    adapt = sub.add_parser(
        "adapt",
        help="drift-triggered re-gather, shadow retraining and canary promotion",
    )
    adapt.add_argument("--bundle", required=True, help="bundle directory written by install")
    adapt.add_argument("--routines", nargs="+", default=None,
                       help="routines for the generated traffic (default: installed)")
    adapt.add_argument("--requests", type=int, default=256,
                       help="observed traffic per round")
    adapt.add_argument("--mix", choices=["uniform", "cycling", "skewed"],
                       default="skewed", help="traffic distribution")
    adapt.add_argument("--seed", type=int, default=0,
                       help="seed for traffic, re-gather and retraining "
                       "(same seed -> bit-identical promoted bundle)")
    adapt.add_argument("--drift-threshold", type=float, default=0.25)
    adapt.add_argument("--min-observations", type=int, default=20,
                       help="window fill required before the drift flag can fire")
    adapt.add_argument("--drift-clock", type=float, default=1.0,
                       help="clock-speed scale of the (synthetically) drifted "
                       "machine observed runtimes come from")
    adapt.add_argument("--drift-bandwidth", type=float, default=1.0,
                       help="memory-bandwidth scale of the drifted machine")
    adapt.add_argument("--drift-sync", type=float, default=1.0,
                       help="synchronisation-cost scale of the drifted machine")
    adapt.add_argument("--regather-shapes", type=int, default=24,
                       help="problem-shape budget of the incremental re-gather")
    adapt.add_argument("--threads-per-shape", type=int, default=6)
    adapt.add_argument("--test-shapes", type=int, default=10)
    adapt.add_argument("--traffic-fraction", type=float, default=0.5,
                       help="fraction of the re-gather budget seeded from the "
                       "observed-traffic shape histogram")
    adapt.add_argument("--min-improvement", type=float, default=0.05,
                       help="shadow bar: fractional error reduction required "
                       "of the candidate model")
    adapt.add_argument("--max-latency-regression", type=float, default=0.5,
                       help="shadow bar: allowed fractional increase of the "
                       "candidate's estimated plan latency")
    adapt.add_argument("--candidates", nargs="+", default=None,
                       help="candidate model pool for retraining "
                       "(default: the full catalogue)")
    adapt.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the re-gather fan-out")
    adapt.add_argument("--watch", action="store_true",
                       help="keep serving+adapting for --rounds rounds instead "
                       "of one shot")
    adapt.add_argument("--rounds", type=int, default=3,
                       help="serve/adapt rounds in --watch mode")
    adapt.add_argument("--require-promotion", action="store_true",
                       help="exit non-zero unless at least one routine is "
                       "promoted and its rolling error recovers below the "
                       "drift threshold")

    bundle_cmd = sub.add_parser(
        "bundle", help="inspect / verify / migrate / roll back a bundle"
    )
    bundle_cmd.add_argument(
        "action", choices=["inspect", "verify", "migrate", "rollback"]
    )
    bundle_cmd.add_argument("--bundle", required=True, help="bundle directory")
    bundle_cmd.add_argument(
        "--to-version", type=int, default=None,
        help="archived bundle_version to restore (rollback only; default: "
        "the most recent version below the current one)",
    )

    analyze = sub.add_parser(
        "analyze", help="offline analytics over a run journal"
    )
    analyze.add_argument("--journal", required=True,
                         help="run journal written by 'adsala serve --journal' "
                         "(rotated segments are found automatically)")
    analyze.add_argument("--window", type=float, default=1.0,
                         help="capacity-report window in seconds")
    analyze.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the full report as JSON instead of tables")
    analyze.add_argument("--strict", action="store_true",
                         help="fail on malformed journal lines instead of "
                         "skipping them with a warning")

    bench = sub.add_parser("bench", help="regenerate a paper table")
    bench.add_argument(
        "table",
        choices=["table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8"],
    )
    bench.add_argument("--platform", default="gadi")

    sub.add_parser("platforms", help="list built-in platform presets")

    routines_cmd = sub.add_parser(
        "routines",
        help="list every registered routine (builtin + discovered plugins)",
    )
    routines_cmd.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the catalog as JSON instead of a table",
    )
    return parser


def _cmd_install(args: argparse.Namespace) -> int:
    from repro.core.install import install_adsala
    from repro.core.persistence import save_bundle

    platform = get_platform(args.platform)
    bundle = install_adsala(
        platform=platform,
        routines=args.routines,
        n_samples=args.samples,
        threads_per_shape=args.threads_per_shape,
        n_test_shapes=args.test_shapes,
        tune_hyperparameters=args.tune,
        seed=args.seed,
        n_jobs=args.jobs,
    )
    path = save_bundle(bundle, args.output, bundle_version=args.bundle_version)
    print(f"Installed {len(bundle.routines)} routine(s) on {platform.name}; bundle at {path}")
    for routine, model in bundle.best_models().items():
        print(f"  {routine}: {model}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_bundle
    from repro.core.runtime import AdsalaRuntime

    bundle = load_bundle(args.bundle)
    runtime = AdsalaRuntime(bundle)
    _, _, spec = parse_routine(args.routine)
    if len(args.dims) != spec.n_dims:
        print(
            f"error: {args.routine} expects {spec.n_dims} dimensions {spec.dim_names}, "
            f"got {len(args.dims)}",
            file=sys.stderr,
        )
        return 2
    dims = dict(zip(spec.dim_names, args.dims))
    plan = runtime.plan(args.routine, **dims)
    print(
        f"{args.routine} {dims}: use {plan.threads} threads "
        f"(predicted {plan.predicted_time * 1e3:.2f} ms, "
        f"max-thread baseline {plan.baseline_time * 1e3:.2f} ms, "
        f"estimated speedup {plan.estimated_speedup:.2f}x)"
    )
    if plan.fallback_from is not None:
        print(
            f"  note: {plan.fallback_from} has no installed model; served by "
            f"the {plan.routine} model ({plan.policy} fallback)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading
    import time

    from repro.core.persistence import BundleFormatError
    from repro.harness.tables import format_table
    from repro.machine.simulator import TimingSimulator
    from repro.serving.engine import ServingEngine
    from repro.serving.faults import FaultInjector
    from repro.serving.frontend import (
        DeadlineExceededError,
        QueueFullError,
        ShardedFrontend,
    )
    from repro.serving.registry import BundleHandle, ModelRegistry
    from repro.serving.supervisor import RestartPolicy
    from repro.serving.telemetry import EngineTelemetry
    from repro.serving.workload import generate_workload, load_workload

    if args.shards < 1 or args.clients < 1:
        print("error: --shards and --clients must be at least 1", file=sys.stderr)
        return 2
    registry = ModelRegistry()
    try:
        injector = None
        if args.inject_faults:
            injector = FaultInjector(
                args.inject_faults,
                seed=args.fault_seed,
                horizon=args.fault_horizon,
            )
        supervise = not args.no_supervise
        restart_policy = (
            RestartPolicy(hang_timeout=args.hang_timeout) if supervise else None
        )
        handle = registry.register(args.bundle)
        if args.workload:
            requests = load_workload(args.workload)
            source = args.workload
        else:
            routines = args.routines or handle.installed_routines
            requests = generate_workload(
                routines, args.requests, distribution=args.mix, seed=args.seed
            )
            source = f"generated ({args.mix} mix)"
        if not requests:
            print("error: workload is empty", file=sys.stderr)
            return 2

        bundle_version = handle.bundle_version
        journal = None
        if args.journal:
            from repro.obs.journal import RunJournal

            # Async writer: per-request journaling must not tax the serve
            # loop; run_end + close() below drain everything to disk.
            journal = RunJournal(
                args.journal, max_bytes=args.journal_max_bytes, async_writer=True
            )
            journal.record_run_start(
                bundle=str(args.bundle),
                bundle_version=bundle_version,
                source=source,
                requests=len(requests),
                shards=args.shards,
                backend=args.backend,
                clients=args.clients,
                batch_size=args.batch_size,
                observe=bool(args.observe),
            )
        # The scrape-time collector reads whatever stats callable the
        # serving path has installed so far (live frontend/engine during
        # the stream, the final snapshot afterwards).
        stats_holder: dict = {}
        metrics_server = None
        if args.metrics_port is not None:
            from repro.obs.collectors import StatsCollector
            from repro.obs.metrics import MetricsRegistry, MetricsServer

            metrics_registry = MetricsRegistry()
            collector = StatsCollector(
                metrics_registry,
                stats_fn=lambda: stats_holder.get("fn", dict)(),
                bundle_dir=args.bundle,
            )
            metrics_server = MetricsServer(
                metrics_registry, port=args.metrics_port, collector=collector
            )
            metrics_server.start()
            print(f"metrics: http://127.0.0.1:{metrics_server.port}/metrics")

        def observe_plans(recorder, served_plans) -> None:
            # An independently seeded simulator stands in for real measured
            # runtimes: same machine model (including any calibration a
            # promotion stamped into the settings), different noise draw.
            settings = handle.settings
            observer = TimingSimulator(
                handle.simulator.platform,
                seed=int(settings.get("seed", 0)) + 1,
                noise_level=float(settings.get("noise_level", 0.04)),
            )
            for plan in served_plans:
                observed = observer.time(plan.routine, plan.dims, plan.threads)
                recorder.record_observation(plan, observed)
                if journal is not None:
                    journal.record_observation(
                        plan.routine,
                        plan.threads,
                        plan.predicted_time,
                        observed,
                        baseline_time=plan.baseline_time,
                    )

        sharded = (
            args.shards > 1
            or args.clients > 1
            or args.backend == "process"
            or injector is not None
            or args.deadline is not None
        )
        if sharded:
            if args.backend == "process":
                # One shared export: every worker maps the same model pages.
                frontend = ShardedFrontend(
                    [handle] * args.shards,
                    max_pending=args.max_pending,
                    backpressure=args.backpressure,
                    max_batch_size=args.batch_size,
                    use_cache=not args.no_cache,
                    backend="process",
                    drift_threshold=args.drift_threshold,
                    supervise=supervise,
                    restart_policy=restart_policy,
                    injector=injector,
                )
            else:
                # One independent lazy handle per shard (separate model/LRU
                # state); custom telemetry rides in on pre-built engines.
                engines = [
                    ServingEngine(
                        BundleHandle(args.bundle),
                        max_batch_size=args.batch_size,
                        use_cache=not args.no_cache,
                        telemetry=EngineTelemetry(
                            drift_threshold=args.drift_threshold
                        ),
                    )
                    for _ in range(args.shards)
                ]
                frontend = ShardedFrontend(
                    engines,
                    max_pending=args.max_pending,
                    backpressure=args.backpressure,
                    supervise=supervise,
                    restart_policy=restart_policy,
                    injector=injector,
                )
            results: list = [None] * len(requests)
            client_errors: list = []
            expired_slots: list = []

            def client(client_index: int) -> None:
                # Round-robin slice, submitted in stream order; each
                # future resolves to exactly one plan (or a shed marker).
                try:
                    for slot in range(client_index, len(requests), args.clients):
                        request = requests[slot]
                        try:
                            future = frontend.submit(
                                request.routine,
                                timeout=args.deadline,
                                **request.dims,
                            )
                        except QueueFullError:
                            # Counted in the frontend's shed stats.
                            if journal is not None:
                                journal.record_shed(
                                    request.routine, "queue_full",
                                    dims=request.dims,
                                )
                            continue
                        try:
                            plan = future.result()
                        except DeadlineExceededError:
                            expired_slots.append(slot)  # shed, not lost
                            if journal is not None:
                                journal.record_shed(
                                    request.routine, "deadline",
                                    dims=request.dims,
                                    request_id=future.request_id,
                                )
                            continue
                        results[slot] = plan
                        if journal is not None:
                            journal.record_plan(
                                plan.routine,
                                plan.dims,
                                plan.threads,
                                plan.predicted_time,
                                baseline_time=plan.baseline_time,
                                from_cache=plan.from_cache,
                                fallback_from=plan.fallback_from,
                                policy=plan.policy,
                                shard=future.shard,
                                request_id=future.request_id,
                                version=bundle_version,
                            )
                except Exception as exc:  # surfaced as exit code 1 below
                    client_errors.append(exc)

            workers = [
                threading.Thread(target=client, args=(index,))
                for index in range(args.clients)
            ]
            stats_holder["fn"] = frontend.stats
            start = time.perf_counter()
            # Observations and the stats snapshot happen inside the with
            # block: process-backend workers (and their telemetry) are gone
            # once the frontend closes.
            with frontend:
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                elapsed = time.perf_counter() - start
                plans = [plan for plan in results if plan is not None]
                if client_errors:
                    print(f"error: client thread failed: {client_errors[0]}",
                          file=sys.stderr)
                    return 1
                lost = (
                    len(requests) - len(plans) - frontend.n_shed
                    - len(expired_slots)
                )
                if lost:
                    print(f"error: {lost} request(s) neither served, shed "
                          "nor expired", file=sys.stderr)
                    return 1
                if args.observe:
                    observe_plans(frontend, plans)
                stats = frontend.stats()
        else:
            engine = ServingEngine(
                handle,
                max_batch_size=args.batch_size,
                use_cache=not args.no_cache,
                telemetry=EngineTelemetry(drift_threshold=args.drift_threshold),
            )
            stats_holder["fn"] = engine.stats
            start = time.perf_counter()
            plans = engine.plan_many(request.as_tuple() for request in requests)
            elapsed = time.perf_counter() - start
            if journal is not None:
                for slot, plan in enumerate(plans):
                    journal.record_plan(
                        plan.routine,
                        plan.dims,
                        plan.threads,
                        plan.predicted_time,
                        baseline_time=plan.baseline_time,
                        from_cache=plan.from_cache,
                        fallback_from=plan.fallback_from,
                        policy=plan.policy,
                        request_id=slot,
                        version=bundle_version,
                    )
            if args.observe:
                observe_plans(engine, plans)
            stats = engine.stats()

        print(
            f"Served {len(plans)} plans from {source} on {handle.platform.name} "
            f"(bundle v{handle.bundle_version}, schema v{handle.schema_version})"
        )
        print(
            f"  {len(plans) / elapsed:.0f} plans/sec | {stats['batches']} batches, "
            f"mean size {stats['mean_batch_size']:.1f} (limit {args.batch_size}) | "
            f"fallback chain: {stats['fallback_chain']}"
        )
        if sharded:
            admission = stats["admission"]
            print(
                f"  {stats['shards']} {stats['backend']} shards x "
                f"{args.clients} clients | "
                f"admission: {admission['submitted']} submitted, "
                f"{admission['shed']} shed ({admission['mode']} mode, "
                f"capacity {admission['capacity']})"
            )
            supervision = stats.get("supervision")
            if supervision is not None:
                quarantined = supervision["quarantined"]
                recovery = ""
                if supervision["recovery_episodes"]:
                    recovery = (
                        f" | recovery mean "
                        f"{supervision['recovery_mean_s'] * 1e3:.0f} ms, max "
                        f"{supervision['recovery_max_s'] * 1e3:.0f} ms"
                    )
                print(
                    f"  supervision: {supervision['restarts']} restarts, "
                    f"{supervision['failures']} failures, "
                    f"{supervision['redispatched']} redispatched, "
                    f"{supervision['rerouted']} rerouted, "
                    f"{supervision['hangs']} hangs, "
                    f"{supervision['deadline_expired']} deadline-expired | "
                    f"healthy {supervision['healthy_shards']}/{stats['shards']}"
                    + (f" | quarantined: {quarantined}" if quarantined else "")
                    + recovery
                )
                injected = supervision.get("injected")
                if injected is not None:
                    fired = ", ".join(
                        f"{kind}:{count}"
                        for kind, count in sorted(injected["injected"].items())
                    ) or "none"
                    print(
                        f"  injected faults: {fired} "
                        f"(seed {injected['seed']}, "
                        f"{injected['remaining']} unfired of "
                        f"{sum(injected['spec'].values())} scheduled)"
                    )
        cache = stats["cache"]
        print(
            f"  cache: {cache['cache_hits']} hits / {cache['cache_misses']} misses, "
            f"{cache['model_evaluations']} model evaluations"
        )
        rows = []
        for routine, snap in stats["routines"].items():
            row = {
                "routine": routine,
                "plans": snap["plans"],
                "cache_hits": snap["cache_hits"],
                "fallback": snap["fallback_plans"],
                "heuristic": snap["heuristic_plans"],
            }
            if args.observe:
                row["mean_err"] = round(snap["mean_abs_rel_error"], 3)
                row["drifting"] = routine in stats["reinstall_candidates"]
            rows.append(row)
        print(format_table(rows, title="Per-routine serving statistics"))
        if args.observe:
            candidates = stats["reinstall_candidates"]
            if candidates:
                print(f"Re-install candidates (drift > {args.drift_threshold}): "
                      f"{', '.join(candidates)}")
            else:
                print(f"No routine drifted past {args.drift_threshold}")
            _print_adaptation_state(args.bundle)
        # Scrapes after the stream read the final merged snapshot (live
        # frontends/engines may already be closed).
        stats_holder["fn"] = lambda: stats
        if journal is not None:
            journal.record_run_end(
                stats=stats,
                plans=len(plans),
                elapsed_s=elapsed,
            )
            journal.close()
            segments = 1 + journal.n_rotations if journal.max_bytes else 1
            print(f"journal: {journal.path} ({journal.n_rows} rows, "
                  f"{min(segments, journal.max_segments + 1)} segment(s))")
        if metrics_server is not None:
            if args.metrics_linger > 0:
                time.sleep(args.metrics_linger)
            metrics_server.stop()
        return 0
    except (FileNotFoundError, BundleFormatError, KeyError, ValueError) as exc:
        # KeyError/ValueError cover bad workload content: unknown routine
        # names, invalid dimensions, --requests 0, malformed JSONL lines.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 1


def _print_adaptation_state(bundle_dir: str) -> None:
    """Report the adaptive layer's lifecycle per routine from the audit trail."""
    from pathlib import Path

    from repro.adaptive.promote import ADAPTATION_LOG_FILE, AdaptationLog

    log = AdaptationLog(Path(bundle_dir) / ADAPTATION_LOG_FILE)
    states = log.per_routine_state()
    if not states:
        return
    print("Adaptation state (from adaptation_log.jsonl):")
    for routine, event in sorted(states.items()):
        details = event.get("details") or {}
        extra = ""
        if event.get("event") == "promoted":
            extra = (f" (v{details.get('from_version')} -> "
                     f"v{details.get('to_version')}, "
                     f"model {details.get('model')})")
        elif event.get("event") == "rejected":
            reasons = details.get("reasons") or []
            if reasons:
                extra = f" ({reasons[0]})"
        print(f"  {routine}: {event.get('state', '?')}"
              f" [last event: {event.get('event', '?')}]{extra}")
    rollback = log.last_event(event="rolled_back")
    if rollback is not None:
        details = rollback.get("details") or {}
        print(f"  last rollback: v{details.get('from_version')} -> "
              f"v{details.get('to_version')}")


def _cmd_adapt(args: argparse.Namespace) -> int:
    import time

    from repro.adaptive import (
        AdaptationConfig,
        AdaptationController,
        DriftInjector,
        make_calibration,
    )
    from repro.core.persistence import BundleFormatError
    from repro.serving.engine import ServingEngine
    from repro.serving.registry import ModelRegistry
    from repro.serving.telemetry import EngineTelemetry
    from repro.serving.workload import generate_workload

    try:
        registry = ModelRegistry()
        handle = registry.register(args.bundle)
        engine = ServingEngine(
            handle,
            telemetry=EngineTelemetry(
                drift_threshold=args.drift_threshold,
                min_observations=args.min_observations,
            ),
        )
        routines = args.routines or handle.installed_routines
        settings = handle.settings
        calibration = make_calibration(
            clock=args.drift_clock,
            bandwidth=args.drift_bandwidth,
            sync=args.drift_sync,
        )
        injector = DriftInjector(handle.platform, calibration)
        noise = float(settings.get("noise_level", 0.04))
        base_seed = int(settings.get("seed", 0))
        # The observer stands in for real measured runtimes on the (possibly
        # drifted) machine: independent noise via a shifted seed.
        observer = injector.simulator(seed=base_seed + 1, noise_level=noise)
        config = AdaptationConfig(
            seed=args.seed,
            regather_shapes=args.regather_shapes,
            regather_threads_per_shape=args.threads_per_shape,
            regather_test_shapes=args.test_shapes,
            traffic_fraction=args.traffic_fraction,
            candidate_models=tuple(args.candidates) if args.candidates else None,
            min_error_improvement=args.min_improvement,
            max_latency_regression=args.max_latency_regression,
            n_jobs=args.jobs,
        )
        controller = AdaptationController(
            engine,
            config,
            # The re-gather times the drifted machine with its own noise draw.
            measurement_simulator=injector.simulator(
                seed=base_seed + 2, noise_level=noise
            ),
            calibration=calibration,
        )
        if injector.drifted:
            print(f"Injected drift: {injector.calibration}")

        def serve_round(round_index: int) -> None:
            requests = generate_workload(
                routines, args.requests, distribution=args.mix,
                seed=args.seed + round_index,
            )
            plans = engine.plan_many(request.as_tuple() for request in requests)
            for plan in plans:
                engine.record_observation(
                    plan, observer.time(plan.routine, plan.dims, plan.threads)
                )

        def rolling_errors() -> dict:
            return {
                routine: telemetry.mean_abs_rel_error
                for routine, telemetry in engine.telemetry.routines.items()
            }

        n_rounds = args.rounds if args.watch else 1
        promoted_any = False
        start = time.perf_counter()
        for round_index in range(n_rounds):
            serve_round(round_index)
            before = rolling_errors()
            report = controller.step()
            print(f"[round {round_index + 1}/{n_rounds}] {report.summary()} "
                  f"({report.wall_time_s:.2f}s)")
            for routine, verdict in report.shadow.items():
                print(f"  shadow {routine}: live err {verdict.live_error:.4f} "
                      f"({verdict.live_model}) vs candidate "
                      f"{verdict.candidate_error:.4f} ({verdict.candidate_model}) "
                      f"-> {'accept' if verdict.accepted else 'reject'}")
                for reason in verdict.reasons:
                    print(f"    - {reason}")
            if report.promoted:
                promoted_any = True
                serve_round(n_rounds + round_index)  # fresh post-promotion traffic
                after = rolling_errors()
                for routine in report.promoted:
                    print(f"  {routine}: rolling error {before.get(routine, 0.0):.4f} "
                          f"-> {after.get(routine, 0.0):.4f} "
                          f"(threshold {args.drift_threshold})")
            if args.watch and not report.acted and promoted_any:
                break
        elapsed = time.perf_counter() - start

        states = controller.states()
        print(f"Final states after {elapsed:.2f}s: "
              + ", ".join(f"{r}={s}" for r, s in sorted(states.items())))
        print(f"Bundle at version v{handle.bundle_version}")

        if args.require_promotion:
            errors = rolling_errors()
            recovered = [
                routine
                for routine, state in states.items()
                if state in ("promoted", "healthy")
                and errors.get(routine, float("inf")) < args.drift_threshold
            ]
            if not promoted_any or not recovered:
                print(
                    "error: adaptation did not promote a recovered model "
                    f"(promoted={promoted_any}, errors={errors})",
                    file=sys.stderr,
                )
                return 1
        return 0
    except (FileNotFoundError, BundleFormatError, KeyError, ValueError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 1


def _cmd_bundle(args: argparse.Namespace) -> int:
    from repro.core.persistence import (
        SCHEMA_VERSION,
        BundleFormatError,
        manifest_schema_version,
        migrate_manifest,
        read_manifest,
        verify_bundle,
    )

    try:
        if args.action == "inspect":
            manifest = read_manifest(args.bundle)
            print(f"Bundle {args.bundle}")
            print(f"  schema version: {manifest_schema_version(manifest)} "
                  f"(library supports {SCHEMA_VERSION})")
            print(f"  bundle version: {manifest.get('bundle_version', 1)}")
            print(f"  platform:       {manifest['platform']}")
            for routine, meta in sorted(manifest["routines"].items()):
                checksum = meta.get("checksum", "-")
                if isinstance(checksum, str) and ":" in checksum:
                    checksum = checksum.split(":", 1)[1][:12] + "..."
                print(f"  {routine}: model={meta.get('model_name', '?')} "
                      f"file={meta.get('model_file', '?')} checksum={checksum}")
        elif args.action == "rollback":
            from repro.adaptive.promote import BundlePromoter

            promoter = BundlePromoter(args.bundle)
            before = promoter.current_version()
            try:
                restored = promoter.rollback(args.to_version)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"Rolled back {args.bundle}: bundle v{before} -> v{restored} "
                  f"(archived versions: {promoter.archived_versions()})")
        elif args.action == "verify":
            report = verify_bundle(args.bundle)
            for routine, status in sorted(report["routines"].items()):
                print(f"  {routine}: {status}")
            if not report["ok"]:
                print(f"Bundle {args.bundle}: FAILED verification", file=sys.stderr)
                return 1
            print(f"Bundle {args.bundle}: ok "
                  f"(schema v{report['schema_version']}, "
                  f"bundle v{report['bundle_version']}, {report['platform']})")
        else:  # migrate
            before = manifest_schema_version(read_manifest(args.bundle))
            manifest = migrate_manifest(args.bundle)
            after = manifest_schema_version(manifest)
            if before == after:
                print(f"Bundle {args.bundle} already at schema v{after}")
            else:
                print(f"Migrated {args.bundle}: schema v{before} -> v{after} "
                      f"({len(manifest['routines'])} checksums written)")
    except (FileNotFoundError, BundleFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.harness.tables import format_table
    from repro.obs.analytics import (
        capacity_report,
        error_trend,
        speedup_by_routine,
        supervision_summary,
    )
    from repro.obs.journal import journal_segments, read_journal

    segments = journal_segments(args.journal)
    if not segments:
        print(f"error: no journal at {args.journal}", file=sys.stderr)
        return 1
    try:
        rows = list(read_journal(args.journal, strict=args.strict))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    n_plans = sum(1 for row in rows if row.get("event") == "plan")
    n_observations = sum(1 for row in rows if row.get("event") == "observation")
    n_shed = sum(1 for row in rows if row.get("event") == "shed")

    speedup = speedup_by_routine(rows)
    trend = error_trend(rows)
    capacity = capacity_report(rows, window=args.window)
    supervision = supervision_summary(rows)

    if args.as_json:
        report = {
            "journal": str(args.journal),
            "segments": [str(path) for path in segments],
            "rows": len(rows),
            "plans": n_plans,
            "observations": n_observations,
            "shed": n_shed,
            "speedup_by_routine": speedup,
            "error_trend": {
                " ".join(str(part) for part in key): value
                for key, value in trend.items()
            },
            "capacity": capacity,
            "supervision": supervision,
        }
        print(json.dumps(report, indent=2))
        return 0

    print(f"Journal {args.journal}: {len(rows)} rows in {len(segments)} "
          f"segment(s) ({n_plans} plans, {n_observations} observations, "
          f"{n_shed} shed)")

    def cell(value, digits=3):
        return "-" if value is None else round(value, digits)

    table_rows = []
    for routine, entry in speedup.items():
        table_rows.append({
            "routine": routine,
            "plans": entry["plans"],
            "cache_hits": entry["cache_hits"],
            "fallbacks": entry["fallbacks"],
            "observations": entry["observations"],
            "speedup": cell(entry["speedup"]),
            "basis": entry["basis"],
        })
    if table_rows:
        print(format_table(
            table_rows, title="Realized speedup vs max-threads baseline"
        ))
    else:
        print("No plan or observation rows — nothing to attribute speedup to")

    if trend:
        trend_rows = []
        for key in sorted(trend, key=str):
            entry = trend[key]
            routine, version = key[0], key[1]
            trend_rows.append({
                "routine": routine,
                "version": "-" if version is None else version,
                "observations": entry["observations"],
                "mean_err": cell(entry["mean_abs_rel_error"]),
                "p50_err": cell(entry["p50_abs_rel_error"]),
                "p99_err": cell(entry["p99_abs_rel_error"]),
                "max_err": cell(entry["max_abs_rel_error"]),
            })
        print(format_table(
            trend_rows, title="Prediction error by routine x bundle version"
        ))

    if supervision is not None:
        block = supervision.get("supervision")
        if isinstance(block, dict):
            quarantined = block.get("quarantined") or []
            print(
                f"Supervision (from the run_end snapshot): "
                f"{block.get('restarts', 0)} restarts, "
                f"{block.get('failures', 0)} failures, "
                f"{block.get('redispatched', 0)} redispatched, "
                f"{block.get('rerouted', 0)} rerouted, "
                f"{block.get('hangs', 0)} hangs, "
                f"{block.get('deadline_expired', 0)} deadline-expired | "
                f"healthy {block.get('healthy_shards', '?')}"
                + (f" | quarantined: {quarantined}" if quarantined else "")
            )
        admission = supervision.get("admission")
        if isinstance(admission, dict):
            print(
                f"Admission: {admission.get('submitted', 0)} submitted, "
                f"{admission.get('completed', 0)} completed, "
                f"{admission.get('shed', 0)} shed "
                f"(capacity {admission.get('capacity', '?')}, "
                f"{admission.get('mode', '?')} mode)"
            )
    else:
        print("No run_end snapshot in the journal (run crashed or still live)")

    windows = capacity["windows"]
    if windows:
        busiest = max(windows, key=lambda w: w["request_rate"])
        peak = capacity["peak_clean_rate"]
        headroom = busiest["headroom"]
        print(
            f"Capacity: {len(windows)} x {capacity['window_s']:g}s windows | "
            f"peak clean rate "
            + (f"{peak:.0f} req/s" if peak else "n/a")
            + f" | busiest window {busiest['request_rate']:.0f} req/s, "
            f"shed fraction {busiest['shed_fraction']:.3f}"
            + (f", headroom {headroom:+.1%}" if headroom is not None else "")
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import experiments
    from repro.harness.tables import format_table

    if args.table == "table1":
        print(format_table(experiments.table1_routine_specs(), title="Table I: routine specifications"))
    elif args.table == "table2":
        print(format_table(experiments.table2_model_catalog(), title="Table II: candidate models"))
    elif args.table == "table3":
        print(format_table(experiments.table3_features(), title="Table III: features"))
    elif args.table == "table4":
        print(format_table(experiments.table4_model_selection_setonix(), title="Table IV: best models (Setonix)"))
    elif args.table == "table5":
        print(format_table(experiments.table5_model_selection_gadi(), title="Table V: best models (Gadi)"))
    elif args.table == "table6":
        for routine, rows in experiments.table6_model_statistics(args.platform).items():
            print(format_table(rows, title=f"Table VI: {routine} on {args.platform}"))
            print()
    elif args.table == "table7":
        print(
            format_table(
                experiments.table7_speedup_statistics(args.platform),
                title=f"Table VII: speedup statistics on {args.platform}",
            )
        )
    elif args.table == "table8":
        print(
            format_table(
                experiments.table8_profiling(args.platform),
                title=f"Table VIII: profiling breakdown on {args.platform}",
            )
        )
    return 0


def _cmd_platforms(_args: argparse.Namespace) -> int:
    for name in list_platforms():
        print(get_platform(name).describe())
        print()
    return 0


def _cmd_routines(args: argparse.Namespace) -> int:
    import json

    from repro.harness.tables import format_table
    from repro.routines.catalog import get_catalog

    catalog = get_catalog()
    rows = []
    for entry in catalog.entries():
        spec = entry.spec
        for key in entry.keys():
            rows.append(
                {
                    "key": key,
                    "dims": " ".join(spec.dim_names),
                    "source": entry.source,
                    "plugin": entry.plugin_name,
                    "version": entry.plugin_version,
                    "simulator": "yes" if spec.has_simulator else "no",
                }
            )
    rows.sort(key=lambda row: row["key"])
    if args.as_json:
        report = {"routines": rows}
        if catalog.load_errors:
            report["load_errors"] = [
                {"source": source, "error": message}
                for source, message in catalog.load_errors
            ]
        print(json.dumps(report, indent=2))
        return 0
    print(format_table(rows, title=f"Registered routines ({len(rows)} keys)"))
    for source, message in catalog.load_errors:
        print(f"warning: plugin source {source} failed to load: {message}",
              file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "install": _cmd_install,
        "predict": _cmd_predict,
        "serve": _cmd_serve,
        "adapt": _cmd_adapt,
        "bundle": _cmd_bundle,
        "analyze": _cmd_analyze,
        "bench": _cmd_bench,
        "platforms": _cmd_platforms,
        "routines": _cmd_routines,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
