"""Command-line interface: ``adsala install | predict | bench | platforms``.

The CLI mirrors how the paper's library is used:

* ``adsala install`` runs the installation workflow for a platform and
  writes the bundle (config + trained models) to a directory;
* ``adsala predict`` loads a bundle and prints the predicted-optimal thread
  count (and estimated speedup) for one BLAS call;
* ``adsala bench`` regenerates a paper table from the command line;
* ``adsala platforms`` lists the built-in machine presets.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.blas.api import ROUTINE_KEYS, parse_routine
from repro.machine.platforms import get_platform, list_platforms

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adsala",
        description="ADSALA reproduction: ML-driven thread-count selection for BLAS L3",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    install = sub.add_parser("install", help="run the installation workflow")
    install.add_argument("--platform", default="gadi", help="platform preset name")
    install.add_argument(
        "--routines", nargs="+", default=None, help=f"routine keys (default: all of {ROUTINE_KEYS})"
    )
    install.add_argument("--output", required=True, help="directory to write the bundle to")
    install.add_argument("--samples", type=int, default=80, help="problem shapes per routine")
    install.add_argument("--threads-per-shape", type=int, default=14)
    install.add_argument("--test-shapes", type=int, default=30)
    install.add_argument("--tune", action="store_true", help="run hyper-parameter tuning")
    install.add_argument("--seed", type=int, default=0)
    install.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the installation fan-out "
        "(default: $ADSALA_JOBS or 1; -1 = all cores)",
    )

    predict = sub.add_parser("predict", help="predict the optimal thread count for one call")
    predict.add_argument("--bundle", required=True, help="bundle directory written by install")
    predict.add_argument("--routine", required=True, help="routine key, e.g. dgemm")
    predict.add_argument("--dims", nargs="+", type=int, required=True,
                         help="matrix dimensions in the routine's natural order")

    bench = sub.add_parser("bench", help="regenerate a paper table")
    bench.add_argument(
        "table",
        choices=["table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8"],
    )
    bench.add_argument("--platform", default="gadi")

    sub.add_parser("platforms", help="list built-in platform presets")
    return parser


def _cmd_install(args: argparse.Namespace) -> int:
    from repro.core.install import install_adsala
    from repro.core.persistence import save_bundle

    platform = get_platform(args.platform)
    bundle = install_adsala(
        platform=platform,
        routines=args.routines,
        n_samples=args.samples,
        threads_per_shape=args.threads_per_shape,
        n_test_shapes=args.test_shapes,
        tune_hyperparameters=args.tune,
        seed=args.seed,
        n_jobs=args.jobs,
    )
    path = save_bundle(bundle, args.output)
    print(f"Installed {len(bundle.routines)} routine(s) on {platform.name}; bundle at {path}")
    for routine, model in bundle.best_models().items():
        print(f"  {routine}: {model}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_bundle
    from repro.core.runtime import AdsalaRuntime

    bundle = load_bundle(args.bundle)
    runtime = AdsalaRuntime(bundle)
    _, _, spec = parse_routine(args.routine)
    if len(args.dims) != spec.n_dims:
        print(
            f"error: {args.routine} expects {spec.n_dims} dimensions {spec.dim_names}, "
            f"got {len(args.dims)}",
            file=sys.stderr,
        )
        return 2
    dims = dict(zip(spec.dim_names, args.dims))
    plan = runtime.plan(args.routine, **dims)
    print(
        f"{args.routine} {dims}: use {plan.threads} threads "
        f"(predicted {plan.predicted_time * 1e3:.2f} ms, "
        f"max-thread baseline {plan.baseline_time * 1e3:.2f} ms, "
        f"estimated speedup {plan.estimated_speedup:.2f}x)"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import experiments
    from repro.harness.tables import format_table

    if args.table == "table1":
        print(format_table(experiments.table1_routine_specs(), title="Table I: routine specifications"))
    elif args.table == "table2":
        print(format_table(experiments.table2_model_catalog(), title="Table II: candidate models"))
    elif args.table == "table3":
        print(format_table(experiments.table3_features(), title="Table III: features"))
    elif args.table == "table4":
        print(format_table(experiments.table4_model_selection_setonix(), title="Table IV: best models (Setonix)"))
    elif args.table == "table5":
        print(format_table(experiments.table5_model_selection_gadi(), title="Table V: best models (Gadi)"))
    elif args.table == "table6":
        for routine, rows in experiments.table6_model_statistics(args.platform).items():
            print(format_table(rows, title=f"Table VI: {routine} on {args.platform}"))
            print()
    elif args.table == "table7":
        print(
            format_table(
                experiments.table7_speedup_statistics(args.platform),
                title=f"Table VII: speedup statistics on {args.platform}",
            )
        )
    elif args.table == "table8":
        print(
            format_table(
                experiments.table8_profiling(args.platform),
                title=f"Table VIII: profiling breakdown on {args.platform}",
            )
        )
    return 0


def _cmd_platforms(_args: argparse.Namespace) -> int:
    for name in list_platforms():
        print(get_platform(name).describe())
        print()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "install": _cmd_install,
        "predict": _cmd_predict,
        "bench": _cmd_bench,
        "platforms": _cmd_platforms,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
