"""Plain-text and Markdown table formatting for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_markdown_table", "summary_statistics"]


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _normalise_rows(
    rows: Sequence[Dict[str, object]], columns: Sequence[str] | None
) -> tuple[List[str], List[List[str]]]:
    if not rows:
        raise ValueError("rows must not be empty")
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_stringify(row.get(col, "")) for col in columns] for row in rows]
    return list(columns), table


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Format row dicts as an aligned fixed-width text table."""
    columns, table = _normalise_rows(rows, columns)
    widths = [
        max(len(col), *(len(line[i]) for line in table)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Dict[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Format row dicts as a GitHub-flavoured Markdown table."""
    columns, table = _normalise_rows(rows, columns)
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for line in table:
        lines.append("| " + " | ".join(line) + " |")
    return "\n".join(lines)


def summary_statistics(values) -> Dict[str, float]:
    """Mean/std/min/quartiles/max summary in the paper's Table VII layout."""
    import numpy as np

    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("values must not be empty")
    return {
        "mean": float(values.mean()),
        "std": float(values.std(ddof=1)) if values.size > 1 else 0.0,
        "min": float(values.min()),
        "25%": float(np.percentile(values, 25)),
        "50%": float(np.percentile(values, 50)),
        "75%": float(np.percentile(values, 75)),
        "max": float(values.max()),
    }
