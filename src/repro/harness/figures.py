"""Heatmap data generators for the paper's Figures 4-7.

The paper's figures are 2-D heatmaps over matrix-dimension space (square-root
scaled axes) colouring either the optimal thread count (Figs. 4-5) or the
achieved speedup (Figs. 6-7).  These helpers produce the underlying grids as
NumPy arrays plus an ASCII rendering so the benchmarks can regenerate the
figures without a plotting dependency; the grids can be dumped to ``.npz``
for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.blas.api import parse_routine
from repro.blas.flops import memory_bytes
from repro.core.predictor import ThreadPredictor
from repro.machine.simulator import TimingSimulator

__all__ = [
    "HeatmapGrid",
    "sqrt_axis",
    "optimal_threads_heatmap",
    "gemm_optimal_threads_heatmap",
    "speedup_heatmap",
    "render_heatmap_ascii",
]


@dataclass
class HeatmapGrid:
    """A 2-D grid of values over two matrix dimensions."""

    routine: str
    platform: str
    x_name: str
    y_name: str
    x_values: np.ndarray
    y_values: np.ndarray
    values: np.ndarray  # shape (len(y_values), len(x_values)), NaN = infeasible
    quantity: str

    def to_rows(self) -> List[Dict[str, object]]:
        """Flatten to row dicts (one per feasible grid cell)."""
        rows = []
        for i, y in enumerate(self.y_values):
            for j, x in enumerate(self.x_values):
                value = self.values[i, j]
                if np.isnan(value):
                    continue
                rows.append(
                    {
                        self.x_name: int(x),
                        self.y_name: int(y),
                        self.quantity: float(value),
                    }
                )
        return rows

    def save_npz(self, path) -> None:
        np.savez(
            path,
            x_values=self.x_values,
            y_values=self.y_values,
            values=self.values,
            routine=self.routine,
            platform=self.platform,
            quantity=self.quantity,
        )


def sqrt_axis(min_value: int, max_value: int, n_points: int) -> np.ndarray:
    """Grid points spaced uniformly on a square-root scale (paper's axes)."""
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    if not 0 < min_value < max_value:
        raise ValueError("require 0 < min_value < max_value")
    roots = np.linspace(np.sqrt(min_value), np.sqrt(max_value), n_points)
    return np.unique(np.round(roots ** 2).astype(int))


def _grid_axes(
    routine: str,
    memory_cap_bytes: float,
    min_dim: int,
    n_points: int,
    third_dim: int | None,
) -> tuple[List[str], np.ndarray, np.ndarray]:
    prefix, base, spec = parse_routine(routine)
    itemsize = 4 if prefix == "s" else 8
    cap_words = memory_cap_bytes / itemsize
    if spec.n_dims == 3:
        if third_dim is None:
            raise ValueError("three-dimension routines need third_dim (the k value)")
        names = ["m", "n"]
        edge = int(np.sqrt(cap_words / 3))
    else:
        names = list(spec.dim_names)
        edge = int(np.sqrt(cap_words / 3))
    axis = sqrt_axis(min_dim, max(edge, min_dim * 4), n_points)
    return names, axis, axis


def _cell_dims(routine: str, names, x: int, y: int, third_dim: int | None) -> Dict[str, int]:
    _, _, spec = parse_routine(routine)
    if spec.n_dims == 3:
        return {"m": int(y), "n": int(x), "k": int(third_dim)}
    return {names[0]: int(y), names[1]: int(x)}


def optimal_threads_heatmap(
    routine: str,
    simulator: TimingSimulator,
    n_points: int = 10,
    memory_cap_bytes: float = 500e6,
    min_dim: int = 32,
    third_dim: int | None = None,
) -> HeatmapGrid:
    """Figure 4/5 data: oracle-optimal thread count over dimension space.

    Cells whose operands exceed the memory cap are NaN (infeasible), which
    reproduces the empty upper-right corners of the paper's heatmaps.
    """
    names, x_axis, y_axis = _grid_axes(routine, memory_cap_bytes, min_dim, n_points, third_dim)
    values = np.full((len(y_axis), len(x_axis)), np.nan)
    for i, y in enumerate(y_axis):
        for j, x in enumerate(x_axis):
            dims = _cell_dims(routine, names, int(x), int(y), third_dim)
            if memory_bytes(routine, dims) > memory_cap_bytes:
                continue
            values[i, j] = simulator.best_threads(routine, dims)
    _, _, spec = parse_routine(routine)
    x_name = "n" if spec.n_dims == 3 else names[1]
    y_name = "m" if spec.n_dims == 3 else names[0]
    return HeatmapGrid(
        routine=routine,
        platform=simulator.platform.name,
        x_name=x_name,
        y_name=y_name,
        x_values=x_axis,
        y_values=y_axis,
        values=values,
        quantity="optimal_threads",
    )


def gemm_optimal_threads_heatmap(
    routine: str,
    simulator: TimingSimulator,
    k: int = 2048,
    n_points: int = 10,
    memory_cap_bytes: float = 500e6,
) -> HeatmapGrid:
    """Figure 5 data: GEMM optimal thread count over (m, n) at fixed k."""
    return optimal_threads_heatmap(
        routine,
        simulator,
        n_points=n_points,
        memory_cap_bytes=memory_cap_bytes,
        third_dim=k,
    )


def speedup_heatmap(
    routine: str,
    simulator: TimingSimulator,
    predictor: ThreadPredictor,
    n_points: int = 10,
    memory_cap_bytes: float = 500e6,
    min_dim: int = 32,
    third_dim: int | None = None,
    eval_time: float = 0.0,
) -> HeatmapGrid:
    """Figure 6/7 data: ADSALA speedup over max threads across dimension space."""
    names, x_axis, y_axis = _grid_axes(routine, memory_cap_bytes, min_dim, n_points, third_dim)
    values = np.full((len(y_axis), len(x_axis)), np.nan)
    for i, y in enumerate(y_axis):
        for j, x in enumerate(x_axis):
            dims = _cell_dims(routine, names, int(x), int(y), third_dim)
            if memory_bytes(routine, dims) > memory_cap_bytes:
                continue
            threads = predictor.predict_threads(dims, use_cache=False)
            chosen = simulator.time(routine, dims, threads) + eval_time
            baseline = simulator.time_at_max_threads(routine, dims)
            values[i, j] = baseline / chosen
    _, _, spec = parse_routine(routine)
    x_name = "n" if spec.n_dims == 3 else names[1]
    y_name = "m" if spec.n_dims == 3 else names[0]
    return HeatmapGrid(
        routine=routine,
        platform=simulator.platform.name,
        x_name=x_name,
        y_name=y_name,
        x_values=x_axis,
        y_values=y_axis,
        values=values,
        quantity="speedup",
    )


def render_heatmap_ascii(grid: HeatmapGrid, width: int = 6) -> str:
    """Render a heatmap grid as fixed-width ASCII (NaN cells shown as '.')."""
    lines = [
        f"{grid.routine} on {grid.platform}: {grid.quantity} "
        f"({grid.y_name} down, {grid.x_name} across)"
    ]
    header = " " * width + "".join(f"{int(x):>{width}}" for x in grid.x_values)
    lines.append(header)
    for i in range(len(grid.y_values) - 1, -1, -1):
        cells = []
        for j in range(len(grid.x_values)):
            value = grid.values[i, j]
            cells.append(" " * (width - 1) + "." if np.isnan(value) else f"{value:>{width}.1f}")
        lines.append(f"{int(grid.y_values[i]):>{width}}" + "".join(cells))
    return "\n".join(lines)
