"""Drivers that regenerate each table of the paper's evaluation section.

Every public ``tableN_*`` function returns a list of row dicts that can be
printed with :func:`repro.harness.tables.format_table`.  Experiments that
need a trained installation share bundles through :func:`get_bundle`, which
caches one installation per (platform, configuration) pair so that the
benchmark suite does not retrain for every table.

Two presets are provided:

* :data:`QUICK_CONFIG` — a scaled-down campaign (default for benchmarks and
  CI) that reproduces the qualitative results in a couple of minutes;
* :data:`PAPER_CONFIG` — the paper-scale campaign (~1100 training rows and
  100+ test problems per routine); select it with
  ``ADSALA_BENCH_PRESET=paper``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.blas.api import ROUTINE_KEYS, ROUTINE_SPECS
from repro.core.evalcost import estimate_native_eval_time
from repro.core.features import THREE_DIM_FEATURES, TWO_DIM_FEATURES
from repro.core.install import InstallationBundle, install_adsala
from repro.harness.tables import summary_statistics
from repro.machine.platforms import get_platform
from repro.machine.profiler import profile_call
from repro.ml.model_zoo import MODEL_CHARACTERISTICS

__all__ = [
    "ExperimentConfig",
    "QUICK_CONFIG",
    "PAPER_CONFIG",
    "active_config",
    "get_bundle",
    "clear_bundle_cache",
    "table1_routine_specs",
    "table2_model_catalog",
    "table3_features",
    "table4_model_selection_setonix",
    "table5_model_selection_gadi",
    "table6_model_statistics",
    "table7_speedup_statistics",
    "table8_profiling",
    "TABLE8_CASES",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling the size of an experiment campaign."""

    name: str
    n_samples: int
    threads_per_shape: int
    n_test_shapes: int
    candidate_models: tuple = (
        "LinearRegression",
        "ElasticNet",
        "BayesianRidge",
        "DecisionTree",
        "RandomForest",
        "AdaBoost",
        "KNN",
        "XGBoost",
        "LightGBM",
        "SVR",
    )
    tune_hyperparameters: bool = False
    seed: int = 0


QUICK_CONFIG = ExperimentConfig(
    name="quick",
    n_samples=56,
    threads_per_shape=12,
    n_test_shapes=40,
    candidate_models=(
        "LinearRegression",
        "BayesianRidge",
        "DecisionTree",
        "RandomForest",
        "KNN",
        "XGBoost",
    ),
)

PAPER_CONFIG = ExperimentConfig(
    name="paper",
    n_samples=80,
    threads_per_shape=14,
    n_test_shapes=110,
)


def active_config() -> ExperimentConfig:
    """Preset selected by the ``ADSALA_BENCH_PRESET`` environment variable."""
    preset = os.environ.get("ADSALA_BENCH_PRESET", "quick").lower()
    if preset == "paper":
        return PAPER_CONFIG
    if preset == "quick":
        return QUICK_CONFIG
    raise ValueError(
        f"Unknown ADSALA_BENCH_PRESET={preset!r}; expected 'quick' or 'paper'"
    )


_BUNDLE_CACHE: Dict[tuple, InstallationBundle] = {}


def get_bundle(
    platform_name: str,
    routines: Sequence[str] | None = None,
    config: ExperimentConfig | None = None,
) -> InstallationBundle:
    """Install (or fetch from cache) ADSALA for the requested routines."""
    config = config or active_config()
    routines = tuple(sorted(routines)) if routines is not None else tuple(ROUTINE_KEYS)
    key = (platform_name, routines, config.name, config.seed)
    if key in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[key]
    bundle = install_adsala(
        platform=get_platform(platform_name),
        routines=list(routines),
        n_samples=config.n_samples,
        threads_per_shape=config.threads_per_shape,
        n_test_shapes=config.n_test_shapes,
        candidate_models=list(config.candidate_models),
        tune_hyperparameters=config.tune_hyperparameters,
        seed=config.seed,
    )
    _BUNDLE_CACHE[key] = bundle
    return bundle


def clear_bundle_cache() -> None:
    _BUNDLE_CACHE.clear()


# ---------------------------------------------------------------------------
# Static tables (I-III)
# ---------------------------------------------------------------------------
def table1_routine_specs() -> List[Dict[str, object]]:
    """Paper Table I: operand shapes and types of the six L3 routines."""
    rows = []
    for name, spec in ROUTINE_SPECS.items():
        row: Dict[str, object] = {
            "routine": name.upper(),
            "dims": spec.n_dims,
        }
        for operand in spec.operands:
            row[f"{operand.name}_shape"] = "x".join(operand.shape)
            row[f"{operand.name}_type"] = operand.kind
        rows.append(row)
    return rows


def table2_model_catalog() -> List[Dict[str, object]]:
    """Paper Table II: candidate-model characteristics."""
    rows = []
    for name, traits in MODEL_CHARACTERISTICS.items():
        rows.append(
            {
                "model": name,
                "category": traits["category"],
                "parametric": "Yes" if traits["parametric"] else "No",
                "good_with_imbalance": "Yes" if traits["good_with_imbalance"] else "No",
                "data_size_requirement": traits["data_size_requirement"],
            }
        )
    return rows


def table3_features() -> List[Dict[str, object]]:
    """Paper Table III: feature lists for three- and two-dimension routines."""
    rows = []
    longest = max(len(THREE_DIM_FEATURES), len(TWO_DIM_FEATURES))
    for i in range(longest):
        rows.append(
            {
                "index": i + 1,
                "three_dimensions": THREE_DIM_FEATURES[i]
                if i < len(THREE_DIM_FEATURES)
                else "",
                "two_dimensions": TWO_DIM_FEATURES[i]
                if i < len(TWO_DIM_FEATURES)
                else "",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Model-selection tables (IV-VI)
# ---------------------------------------------------------------------------
def _model_selection_rows(platform_name: str, routines, config) -> List[Dict[str, object]]:
    bundle = get_bundle(platform_name, routines, config)
    rows = []
    for routine in sorted(bundle.routines):
        installation = bundle.routines[routine]
        best = installation.selection.best_evaluation
        rows.append(
            {
                "subroutine": routine,
                "best_model": installation.best_model_name,
                "estimated_mean_speedup": round(best.estimated_mean_speedup, 2),
                "estimated_aggregate_speedup": round(best.estimated_aggregate_speedup, 2),
            }
        )
    return rows


def table4_model_selection_setonix(
    routines: Sequence[str] | None = None, config: ExperimentConfig | None = None
) -> List[Dict[str, object]]:
    """Paper Table IV: best model per subroutine on Setonix."""
    return _model_selection_rows("setonix", routines, config)


def table5_model_selection_gadi(
    routines: Sequence[str] | None = None, config: ExperimentConfig | None = None
) -> List[Dict[str, object]]:
    """Paper Table V: best model per subroutine on Gadi."""
    return _model_selection_rows("gadi", routines, config)


#: The four routines the paper details in Table VI.
TABLE6_ROUTINES = ("dgemm", "dsymm", "ssyrk", "strsm")


def table6_model_statistics(
    platform_name: str = "gadi",
    routines: Sequence[str] = TABLE6_ROUTINES,
    config: ExperimentConfig | None = None,
    reuse_full_bundle: bool = True,
) -> Dict[str, List[Dict[str, object]]]:
    """Paper Table VI: per-candidate statistics for selected routines on Gadi.

    Returns a mapping routine -> rows (one row per candidate model with
    normalised RMSE, ideal/estimated speedups and evaluation time).  By
    default the full 12-routine installation bundle is reused (it is shared
    with Tables IV/V/VII); pass ``reuse_full_bundle=False`` to install only
    the requested routines.
    """
    bundle_routines = None if reuse_full_bundle else routines
    bundle = get_bundle(platform_name, bundle_routines, config)
    result: Dict[str, List[Dict[str, object]]] = {}
    for routine in routines:
        report = bundle.routines[routine].selection
        result[routine] = report.as_rows()
    return result


# ---------------------------------------------------------------------------
# Table VII: speedup statistics on held-out problems
# ---------------------------------------------------------------------------
def table7_speedup_statistics(
    platform_name: str,
    routines: Sequence[str] | None = None,
    config: ExperimentConfig | None = None,
    include_eval_time: bool = True,
) -> List[Dict[str, object]]:
    """Paper Table VII: per-routine speedup statistics versus max threads.

    For every held-out problem the ADSALA-chosen thread count is timed by
    the simulator, the native model-evaluation cost is added (the paper's
    speedups "include the model evaluation time during runtime"), and the
    ratio against the maximum-thread baseline is summarised.
    """
    config = config or active_config()
    if routines is None:
        routines = ROUTINE_KEYS
    bundle = get_bundle(platform_name, routines, config)
    simulator = bundle.simulator
    rows = []
    for routine in sorted(bundle.routines):
        installation = bundle.routines[routine]
        predictor = installation.predictor
        eval_time = (
            estimate_native_eval_time(
                predictor.model,
                n_candidates=len(predictor.candidate_threads),
                n_features=predictor.pipeline.n_features_out_,
            )
            if include_eval_time
            else 0.0
        )
        speedups = []
        for dims in installation.test_shapes:
            threads = predictor.predict_threads(dims, use_cache=False)
            chosen = simulator.time(routine, dims, threads) + eval_time
            baseline = simulator.time_at_max_threads(routine, dims)
            speedups.append(baseline / chosen)
        stats = summary_statistics(speedups)
        row: Dict[str, object] = {"subroutine": routine, "model": predictor.model_name}
        row.update({k: round(v, 2) for k, v in stats.items()})
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table VIII: profiling breakdown
# ---------------------------------------------------------------------------
#: Problem sizes profiled in the paper's Table VIII (routine, dims).
TABLE8_CASES = (
    ("dgemm", {"m": 64, "k": 2048, "n": 64}),
    ("sgemm", {"m": 64, "k": 2048, "n": 64}),
    ("dsymm", {"m": 248, "n": 39944}),
    ("ssymm", {"m": 2759, "n": 41681}),
    ("dsyrk", {"n": 124, "k": 160163}),
    ("ssyrk", {"n": 175, "k": 15095}),
)


def table8_profiling(
    platform_name: str = "gadi",
    repeats: int = 100,
    config: ExperimentConfig | None = None,
    reuse_full_bundle: bool = True,
) -> List[Dict[str, object]]:
    """Paper Table VIII: copy/sync/kernel breakdown with and without ML.

    Each case is profiled twice: at the platform's maximum thread count
    ("no ML") and at the thread count chosen by the trained predictor
    ("with ML"), accumulating ``repeats`` consecutive calls as in the paper.
    """
    config = config or active_config()
    routines = sorted({routine for routine, _ in TABLE8_CASES})
    bundle_routines = None if reuse_full_bundle else routines
    bundle = get_bundle(platform_name, bundle_routines, config)
    simulator = bundle.simulator
    platform = bundle.platform

    rows = []
    for routine, dims in TABLE8_CASES:
        predictor = bundle.routines[routine].predictor
        ml_threads = predictor.predict_threads(dims, use_cache=False)
        for label, threads in (("no ML", platform.max_threads), ("with ML", ml_threads)):
            record = profile_call(simulator, routine, dims, threads, repeats=repeats)
            row = record.as_row()
            row["case"] = f"{row['case']} {label}"
            rows.append(row)
    return rows
