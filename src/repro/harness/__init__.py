"""Experiment harness: regenerate every table and figure of the paper.

Each paper artefact has a dedicated driver in :mod:`repro.harness.experiments`
(returning plain row dicts / numpy grids) plus text formatting helpers in
:mod:`repro.harness.tables` and heatmap helpers in
:mod:`repro.harness.figures`.  The ``benchmarks/`` directory wires each
driver into a pytest-benchmark target, and the ``adsala bench`` CLI
sub-command prints the same rows from the command line.
"""

from repro.harness.tables import format_table, format_markdown_table
from repro.harness.experiments import (
    ExperimentConfig,
    QUICK_CONFIG,
    PAPER_CONFIG,
    get_bundle,
    table1_routine_specs,
    table2_model_catalog,
    table3_features,
    table4_model_selection_setonix,
    table5_model_selection_gadi,
    table6_model_statistics,
    table7_speedup_statistics,
    table8_profiling,
)
from repro.harness.figures import (
    HeatmapGrid,
    optimal_threads_heatmap,
    gemm_optimal_threads_heatmap,
    speedup_heatmap,
    render_heatmap_ascii,
)

__all__ = [
    "format_table",
    "format_markdown_table",
    "ExperimentConfig",
    "QUICK_CONFIG",
    "PAPER_CONFIG",
    "get_bundle",
    "table1_routine_specs",
    "table2_model_catalog",
    "table3_features",
    "table4_model_selection_setonix",
    "table5_model_selection_gadi",
    "table6_model_statistics",
    "table7_speedup_statistics",
    "table8_profiling",
    "HeatmapGrid",
    "optimal_threads_heatmap",
    "gemm_optimal_threads_heatmap",
    "speedup_heatmap",
    "render_heatmap_ascii",
]
