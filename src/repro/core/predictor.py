"""Runtime thread-count prediction (paper Fig. 1b, "Parameter Predictor").

For a given BLAS call the predictor evaluates the trained runtime model at
every admissible thread count and returns the argmin (paper Section IV-A).
Repeated calls with recently seen dimensions skip the model evaluation
entirely through a bounded LRU cache — a generalisation of the paper's
last-call cache (Section III-B) that also serves cycling workloads (a
handful of problem shapes alternating back to back, the common pattern in
iterative solvers).  ``cache_capacity=1`` reproduces the paper's exact
last-call behaviour.

Batch prediction (:meth:`ThreadPredictor.predict_threads_batch`) evaluates
the model once over a ``(n_shapes * n_candidates)`` feature grid instead of
looping shape by shape, which is what keeps installation-time model
selection cheap (see :mod:`repro.core.selection`).

Cache misses ride the **compiled kernel** by default: the first evaluation
builds a :class:`~repro.core.compiled.CompiledPredictor` (call
:meth:`ThreadPredictor.compile` to pay that cost eagerly, e.g. at bundle
load) and every subsequent miss is a single fused
feature→preprocess→ensemble array pass, bit-identical to the object path.
``repro.core.compiled.reference_mode()`` forces the object path back on
for equivalence testing and benchmarking.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Sequence

import numpy as np

from repro.core import compiled as compiled_mod
from repro.core.compiled import CompiledPredictor
from repro.core.features import (
    feature_matrix_for_threads,
    feature_matrix_grid,
    feature_names,
)
from repro.ml import tree as tree_mod
from repro.ml.base import BaseRegressor
from repro.preprocessing.pipeline import PreprocessingPipeline

__all__ = ["PredictionPlan", "ThreadPredictor"]


@dataclass(frozen=True)
class PredictionPlan:
    """Result of one thread-count prediction."""

    routine: str
    dims: Dict[str, int]
    threads: int
    predicted_time: float
    from_cache: bool


class ThreadPredictor:
    """Predict the optimal thread count for one BLAS routine.

    Parameters
    ----------
    routine:
        Routine key, e.g. ``"dsyrk"``.
    pipeline:
        Fitted preprocessing pipeline (Yeo-Johnson + correlation filter).
    model:
        Fitted runtime-regression model.
    candidate_threads:
        Thread counts the predictor is allowed to choose between (usually
        ``platform.candidate_thread_counts()``).
    model_name:
        Name of the winning candidate (for reporting).
    cache_capacity:
        Maximum number of distinct problem shapes kept in the LRU
        prediction cache (1 = the paper's last-call cache).
    """

    def __init__(
        self,
        routine: str,
        pipeline: PreprocessingPipeline,
        model: BaseRegressor,
        candidate_threads: Sequence[int],
        model_name: str = "unknown",
        cache_capacity: int = 16,
    ):
        candidate_threads = sorted({int(t) for t in candidate_threads})
        if not candidate_threads:
            raise ValueError("candidate_threads must not be empty")
        if candidate_threads[0] < 1:
            raise ValueError("candidate thread counts must be positive")
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        self.routine = routine
        self.pipeline = pipeline
        self.model = model
        self.candidate_threads = candidate_threads
        self.model_name = model_name
        self.cache_capacity = int(cache_capacity)
        self.feature_names = feature_names(routine)
        self._cache: OrderedDict[tuple, PredictionPlan] = OrderedDict()
        self._compiled: CompiledPredictor | None = None
        self.n_model_evaluations = 0
        self.n_cache_hits = 0
        self.n_cache_misses = 0

    # -- compilation ------------------------------------------------------------
    def compile(self) -> CompiledPredictor:
        """Build (or return) the fused feature→preprocess→model kernel.

        Idempotent; the serving layer calls this at bundle load so the
        first request does not pay the one-off build cost.  Predictions
        through the compiled kernel are bit-identical to the object path.
        """
        if self._compiled is None:
            self._compiled = CompiledPredictor(
                self.routine, self.pipeline, self.model, self.candidate_threads
            )
        return self._compiled

    @staticmethod
    def cache_key(dims: Dict[str, int]) -> tuple:
        """Canonical LRU key for a dims dict (order-insensitive).

        Permuted dict literals (``{"m": 1, "n": 2}`` vs ``{"n": 2, "m": 1}``)
        map to the same entry; every cache probe in this class goes through
        this one helper.
        """
        return tuple(sorted(dims.items()))

    @staticmethod
    def _use_compiled() -> bool:
        """Whether evaluations should ride the fused kernel right now.

        Every lower-layer reference toggle opts out: the predictor-level
        ``repro.core.compiled.reference_mode``, the tree-level
        ``repro.ml.tree.reference_mode`` and ``unstacked_mode`` (the
        compiled kernel binds the stacked descent directly and would
        otherwise ignore them).
        """
        return (
            compiled_mod.active_impl() == "compiled"
            and tree_mod.stacking_active()
        )

    # -- prediction -------------------------------------------------------------
    def predict_runtimes(self, dims: Dict[str, int]) -> np.ndarray:
        """Predicted runtime for every candidate thread count (no caching)."""
        if self._use_compiled():
            runtimes = self.compile().predict_runtimes(dims)
            self.n_model_evaluations += 1
            return runtimes
        X = feature_matrix_for_threads(
            self.routine, dims, np.asarray(self.candidate_threads)
        )
        transformed = self.pipeline.transform(X)
        self.n_model_evaluations += 1
        return np.asarray(self.model.predict(transformed), dtype=float)

    def predict_runtimes_batch(
        self, dims_list: Sequence[Dict[str, int]]
    ) -> np.ndarray:
        """Predicted runtimes for many shapes in one model evaluation.

        Returns a ``(len(dims_list), n_candidates)`` array whose row ``i``
        matches ``predict_runtimes(dims_list[i])``; the feature grid,
        preprocessing and model evaluation each run exactly once.
        """
        if self._use_compiled():
            runtimes = self.compile().predict_runtimes_batch(dims_list)
            self.n_model_evaluations += 1
            return runtimes
        X = feature_matrix_grid(
            self.routine, dims_list, np.asarray(self.candidate_threads)
        )
        transformed = self.pipeline.transform(X)
        self.n_model_evaluations += 1
        predictions = np.asarray(self.model.predict(transformed), dtype=float)
        return predictions.reshape(len(dims_list), len(self.candidate_threads))

    def plan(self, dims: Dict[str, int], use_cache: bool = True) -> PredictionPlan:
        """Choose the thread count with the smallest predicted runtime.

        Calls whose dimensions are among the last ``cache_capacity`` distinct
        shapes are served from the LRU cache without re-evaluating the model;
        the cached ``from_cache=True`` plan is precomputed at store time, so
        a hit is a dictionary lookup and nothing more.
        """
        key = self.cache_key(dims)
        if use_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.n_cache_hits += 1
                return cached
            self.n_cache_misses += 1
        runtimes = self.predict_runtimes(dims)
        best_idx = int(np.argmin(runtimes))
        plan = PredictionPlan(
            routine=self.routine,
            dims=dict(dims),
            threads=self.candidate_threads[best_idx],
            predicted_time=float(runtimes[best_idx]),
            from_cache=False,
        )
        self._cache[key] = replace(plan, from_cache=True)
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return plan

    def predict_threads(self, dims: Dict[str, int], use_cache: bool = True) -> int:
        """Convenience wrapper returning only the chosen thread count."""
        return self.plan(dims, use_cache=use_cache).threads

    def predict_threads_batch(
        self, dims_list: Sequence[Dict[str, int]]
    ) -> np.ndarray:
        """Chosen thread count per shape, from one batched model evaluation.

        Bypasses the cache (the batch path is used at installation time on
        held-out shapes, where caching would only skew ``t_eval``).
        """
        runtimes = self.predict_runtimes_batch(dims_list)
        best = np.argmin(runtimes, axis=1)
        return np.asarray(self.candidate_threads, dtype=int)[best]

    def plan_batch(
        self, dims_list: Sequence[Dict[str, int]], use_cache: bool = True
    ) -> list:
        """Plan many shapes with one model evaluation, LRU cache included.

        The serving-engine counterpart of :meth:`plan`: plan ``i`` is
        identical to ``plan(dims_list[i], use_cache=use_cache)`` issued in
        sequence — same thread choices, same predicted times, same
        ``from_cache`` flags, same hit/miss counters and the same final
        cache contents (a simulated cache timeline reproduces sequential
        eviction exactly, even when the batch holds more unique shapes
        than ``cache_capacity``).  The only difference is cost: all misses
        share a single :meth:`predict_runtimes_batch` evaluation (duplicate
        shapes evaluated once), so ``n_model_evaluations`` grows by at most
        one instead of once per miss.
        """
        key_of = [self.cache_key(dims) for dims in dims_list]
        hit = [False] * len(dims_list)
        pending: "OrderedDict[tuple, Dict[str, int]]" = OrderedDict()
        if use_cache:
            # Pass 1 — replay the sequential hit/miss timeline against a
            # key-only simulation of the cache, so duplicates separated by
            # an eviction count as misses exactly like a plan() loop.
            simulated: "OrderedDict[tuple, None]" = OrderedDict.fromkeys(self._cache)
            for i, key in enumerate(key_of):
                if key in simulated:
                    self.n_cache_hits += 1
                    hit[i] = True
                else:
                    self.n_cache_misses += 1
                    pending.setdefault(key, dims_list[i])
                    simulated[key] = None
                    while len(simulated) > self.cache_capacity:
                        simulated.popitem(last=False)
                simulated.move_to_end(key)
        else:
            for i, key in enumerate(key_of):
                pending.setdefault(key, dims_list[i])

        # Pass 2 — one batched evaluation covers every distinct miss.
        fresh: Dict[tuple, PredictionPlan] = {}
        if pending:
            pending_dims = list(pending.values())
            runtimes = self.predict_runtimes_batch(pending_dims)
            best = np.argmin(runtimes, axis=1)
            routine = self.routine
            candidates = self.candidate_threads
            for slot, (key, dims) in enumerate(pending.items()):
                idx = int(best[slot])
                fresh[key] = PredictionPlan(
                    routine=routine,
                    dims=dict(dims),
                    threads=candidates[idx],
                    predicted_time=float(runtimes[slot, idx]),
                    from_cache=False,
                )

        # Pass 3 — assemble the plans and apply the store/touch/evict
        # operations to the real cache in sequential order (plan() stores
        # every computed result, cached or not requested via use_cache).
        plans: list = []
        cache = self._cache
        for i, key in enumerate(key_of):
            if hit[i]:
                plan = cache[key]
                cache.move_to_end(key)
            else:
                plan = fresh[key]
                cache[key] = PredictionPlan(
                    routine=plan.routine,
                    dims=plan.dims,
                    threads=plan.threads,
                    predicted_time=plan.predicted_time,
                    from_cache=True,
                )
                cache.move_to_end(key)
                while len(cache) > self.cache_capacity:
                    cache.popitem(last=False)
            plans.append(plan)
        return plans

    def clear_cache(self) -> None:
        self._cache.clear()

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters and current occupancy of the LRU cache."""
        return {
            "hits": self.n_cache_hits,
            "misses": self.n_cache_misses,
            "size": len(self._cache),
            "capacity": self.cache_capacity,
        }

    # -- evaluation-cost measurement ------------------------------------------------
    def measure_eval_time(
        self, dims: Dict[str, int] | None = None, repeats: int = 5
    ) -> float:
        """Average wall-clock seconds of one full prediction (paper's t_eval).

        The measurement includes feature construction, preprocessing and the
        model evaluation over all candidate thread counts, exactly what a
        runtime call pays before the BLAS kernel starts.
        """
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        if dims is None:
            # A mid-sized representative problem.
            from repro.blas.api import parse_routine

            _, _, spec = parse_routine(self.routine)
            dims = {name: 1024 for name in spec.dim_names}
        # One warm-up evaluation so one-off allocation / import costs do not
        # count against the model.
        self.predict_runtimes(dims)
        start = time.perf_counter()
        for _ in range(repeats):
            self.predict_runtimes(dims)
        return (time.perf_counter() - start) / repeats
