"""Runtime thread-count prediction (paper Fig. 1b, "Parameter Predictor").

For a given BLAS call the predictor evaluates the trained runtime model at
every admissible thread count and returns the argmin (paper Section IV-A).
Identical back-to-back calls skip the model evaluation entirely through the
last-call cache (Section III-B).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.features import feature_matrix_for_threads, feature_names
from repro.ml.base import BaseRegressor
from repro.preprocessing.pipeline import PreprocessingPipeline

__all__ = ["PredictionPlan", "ThreadPredictor"]


@dataclass(frozen=True)
class PredictionPlan:
    """Result of one thread-count prediction."""

    routine: str
    dims: Dict[str, int]
    threads: int
    predicted_time: float
    from_cache: bool


class ThreadPredictor:
    """Predict the optimal thread count for one BLAS routine.

    Parameters
    ----------
    routine:
        Routine key, e.g. ``"dsyrk"``.
    pipeline:
        Fitted preprocessing pipeline (Yeo-Johnson + correlation filter).
    model:
        Fitted runtime-regression model.
    candidate_threads:
        Thread counts the predictor is allowed to choose between (usually
        ``platform.candidate_thread_counts()``).
    model_name:
        Name of the winning candidate (for reporting).
    """

    def __init__(
        self,
        routine: str,
        pipeline: PreprocessingPipeline,
        model: BaseRegressor,
        candidate_threads: Sequence[int],
        model_name: str = "unknown",
    ):
        candidate_threads = sorted({int(t) for t in candidate_threads})
        if not candidate_threads:
            raise ValueError("candidate_threads must not be empty")
        if candidate_threads[0] < 1:
            raise ValueError("candidate thread counts must be positive")
        self.routine = routine
        self.pipeline = pipeline
        self.model = model
        self.candidate_threads = candidate_threads
        self.model_name = model_name
        self.feature_names = feature_names(routine)
        self._cache_key: tuple | None = None
        self._cache_plan: PredictionPlan | None = None
        self.n_model_evaluations = 0
        self.n_cache_hits = 0

    # -- prediction -------------------------------------------------------------
    def predict_runtimes(self, dims: Dict[str, int]) -> np.ndarray:
        """Predicted runtime for every candidate thread count (no caching)."""
        X = feature_matrix_for_threads(
            self.routine, dims, np.asarray(self.candidate_threads)
        )
        transformed = self.pipeline.transform(X)
        self.n_model_evaluations += 1
        return np.asarray(self.model.predict(transformed), dtype=float)

    def plan(self, dims: Dict[str, int], use_cache: bool = True) -> PredictionPlan:
        """Choose the thread count with the smallest predicted runtime.

        Consecutive calls with identical dimensions are served from the
        last-call cache without re-evaluating the model.
        """
        key = (tuple(sorted(dims.items())),)
        if use_cache and self._cache_key == key and self._cache_plan is not None:
            self.n_cache_hits += 1
            return PredictionPlan(
                routine=self._cache_plan.routine,
                dims=self._cache_plan.dims,
                threads=self._cache_plan.threads,
                predicted_time=self._cache_plan.predicted_time,
                from_cache=True,
            )
        runtimes = self.predict_runtimes(dims)
        best_idx = int(np.argmin(runtimes))
        plan = PredictionPlan(
            routine=self.routine,
            dims=dict(dims),
            threads=self.candidate_threads[best_idx],
            predicted_time=float(runtimes[best_idx]),
            from_cache=False,
        )
        self._cache_key = key
        self._cache_plan = plan
        return plan

    def predict_threads(self, dims: Dict[str, int], use_cache: bool = True) -> int:
        """Convenience wrapper returning only the chosen thread count."""
        return self.plan(dims, use_cache=use_cache).threads

    def clear_cache(self) -> None:
        self._cache_key = None
        self._cache_plan = None

    # -- evaluation-cost measurement ------------------------------------------------
    def measure_eval_time(
        self, dims: Dict[str, int] | None = None, repeats: int = 5
    ) -> float:
        """Average wall-clock seconds of one full prediction (paper's t_eval).

        The measurement includes feature construction, preprocessing and the
        model evaluation over all candidate thread counts, exactly what a
        runtime call pays before the BLAS kernel starts.
        """
        if repeats < 1:
            raise ValueError("repeats must be at least 1")
        if dims is None:
            # A mid-sized representative problem.
            from repro.blas.api import parse_routine

            _, _, spec = parse_routine(self.routine)
            dims = {name: 1024 for name in spec.dim_names}
        # One warm-up evaluation so one-off allocation / import costs do not
        # count against the model.
        self.predict_runtimes(dims)
        start = time.perf_counter()
        for _ in range(repeats):
            self.predict_runtimes(dims)
        return (time.perf_counter() - start) / repeats
