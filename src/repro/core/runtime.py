"""The ADSALA runtime library (paper Fig. 1b).

Two entry points:

* :class:`AdsalaRuntime` — thin planner: given a routine and its matrix
  dimensions it returns the predicted-optimal thread count (using the
  per-routine :class:`~repro.core.predictor.ThreadPredictor` with its
  last-call cache) and the simulator's estimate of the time saved.
* :class:`AdsalaBlas` — a drop-in BLAS front-end: ``gemm``/``symm``/...
  methods accept NumPy operands, plan the thread count from the operand
  shapes and execute the call with the blocked multi-threaded substrate,
  capping the worker count at the locally available cores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.blas.api import parse_routine
from repro.blas.threaded import ThreadedBlas
from repro.core.install import InstallationBundle
from repro.core.predictor import PredictionPlan

__all__ = ["ExecutionPlan", "AdsalaRuntime", "AdsalaBlas"]


@dataclass(frozen=True)
class ExecutionPlan:
    """A planned BLAS call: chosen thread count plus simulator estimates."""

    routine: str
    dims: Dict[str, int]
    threads: int
    predicted_time: float
    baseline_time: float
    from_cache: bool

    @property
    def estimated_speedup(self) -> float:
        if self.predicted_time <= 0:
            return float("inf")
        return self.baseline_time / self.predicted_time


class AdsalaRuntime:
    """Plan thread counts for BLAS calls using an installation bundle."""

    def __init__(self, bundle: InstallationBundle):
        self.bundle = bundle
        self.platform = bundle.platform
        self.simulator = bundle.simulator
        self.calls_planned = 0

    def plan(self, routine: str, use_cache: bool = True, **dims: int) -> ExecutionPlan:
        """Plan one call: predicted-optimal threads + estimated speedup.

        If the requested precision of a routine was not installed but the
        other precision was (e.g. ``sgemm`` requested, only ``dgemm``
        trained), the available predictor is used as a fallback — the
        runtime-vs-threads structure of the two precisions is close enough
        for a sensible plan, and refusing the call would be worse.
        """
        prefix, base, spec = parse_routine(routine)
        key = prefix + base
        dims = spec.dims_from_args(**dims)
        if key not in self.bundle.routines:
            fallback = ("d" if prefix == "s" else "s") + base
            if fallback in self.bundle.routines:
                key = fallback
        predictor = self.bundle.predictor(key)
        plan: PredictionPlan = predictor.plan(dims, use_cache=use_cache)
        predicted_time = self.simulator.time(key, dims, plan.threads)
        baseline_time = self.simulator.time_at_max_threads(key, dims)
        self.calls_planned += 1
        return ExecutionPlan(
            routine=key,
            dims=dims,
            threads=plan.threads,
            predicted_time=predicted_time,
            baseline_time=baseline_time,
            from_cache=plan.from_cache,
        )

    def cache_statistics(self) -> Dict[str, int]:
        """Aggregate model-evaluation / cache-hit counters across routines."""
        evaluations = 0
        hits = 0
        for installation in self.bundle.routines.values():
            evaluations += installation.predictor.n_model_evaluations
            hits += installation.predictor.n_cache_hits
        return {"model_evaluations": evaluations, "cache_hits": hits}


class AdsalaBlas:
    """BLAS Level 3 front-end with ML-selected thread counts.

    Parameters
    ----------
    bundle:
        The installation bundle for the target platform.
    execution_thread_cap:
        Maximum number of worker threads actually spawned when executing a
        call locally.  Defaults to the local CPU count: the *planned* thread
        count refers to the modelled platform (e.g. 96 threads on Gadi) and
        is reported in the plan, while local execution clamps to what the
        host can run.
    tile:
        Tile size for the blocked execution substrate.
    """

    def __init__(
        self,
        bundle: InstallationBundle,
        execution_thread_cap: int | None = None,
        tile: int = 256,
    ):
        self.runtime = AdsalaRuntime(bundle)
        if execution_thread_cap is None:
            execution_thread_cap = os.cpu_count() or 1
        if execution_thread_cap < 1:
            raise ValueError("execution_thread_cap must be at least 1")
        self.execution_thread_cap = execution_thread_cap
        self.tile = tile
        self.last_plan: ExecutionPlan | None = None

    # -- planning --------------------------------------------------------------
    def plan(self, routine: str, **dims: int) -> ExecutionPlan:
        plan = self.runtime.plan(routine, **dims)
        self.last_plan = plan
        return plan

    def _executor(self, plan: ExecutionPlan) -> ThreadedBlas:
        threads = min(plan.threads, self.execution_thread_cap)
        return ThreadedBlas(n_threads=max(1, threads), tile=self.tile)

    @staticmethod
    def _precision_of(*arrays: np.ndarray) -> str:
        return "s" if all(np.asarray(a).dtype == np.float32 for a in arrays) else "d"

    # -- BLAS front-end ------------------------------------------------------------
    def gemm(self, A, B, C=None, alpha=1.0, beta=0.0) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(
            precision + "gemm", m=A.shape[0], k=A.shape[1], n=B.shape[1]
        )
        return self._executor(plan).gemm(A, B, C=C, alpha=alpha, beta=beta)

    def symm(self, A, B, C=None, alpha=1.0, beta=0.0, lower=True) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(precision + "symm", m=A.shape[0], n=B.shape[1])
        return self._executor(plan).symm(A, B, C=C, alpha=alpha, beta=beta, lower=lower)

    def syrk(self, A, C=None, alpha=1.0, beta=0.0, trans=False, lower=True) -> np.ndarray:
        A = np.asarray(A)
        precision = self._precision_of(A)
        n, k = (A.shape[1], A.shape[0]) if trans else (A.shape[0], A.shape[1])
        plan = self.plan(precision + "syrk", n=n, k=k)
        return self._executor(plan).syrk(
            A, C=C, alpha=alpha, beta=beta, trans=trans, lower=lower
        )

    def syr2k(self, A, B, C=None, alpha=1.0, beta=0.0, trans=False, lower=True) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        n, k = (A.shape[1], A.shape[0]) if trans else (A.shape[0], A.shape[1])
        plan = self.plan(precision + "syr2k", n=n, k=k)
        return self._executor(plan).syr2k(
            A, B, C=C, alpha=alpha, beta=beta, trans=trans, lower=lower
        )

    def trmm(self, A, B, alpha=1.0, lower=True, transa=False, unit_diag=False) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(precision + "trmm", m=A.shape[0], n=B.shape[1])
        return self._executor(plan).trmm(
            A, B, alpha=alpha, lower=lower, transa=transa, unit_diag=unit_diag
        )

    def trsm(self, A, B, alpha=1.0, lower=True, transa=False, unit_diag=False) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(precision + "trsm", m=A.shape[0], n=B.shape[1])
        return self._executor(plan).trsm(
            A, B, alpha=alpha, lower=lower, transa=transa, unit_diag=unit_diag
        )
