"""The ADSALA runtime library (paper Fig. 1b) — facade over the serving engine.

Two stable entry points:

* :class:`AdsalaRuntime` — the planner: given a routine and its matrix
  dimensions it returns the predicted-optimal thread count and the
  simulator's estimate of the time saved.
* :class:`AdsalaBlas` — a drop-in BLAS front-end: ``gemm``/``symm``/...
  methods accept NumPy operands, plan the thread count from the operand
  shapes and execute the call with the blocked multi-threaded substrate,
  capping the worker count at the locally available cores.

Design: facade over engine
--------------------------
Since the serving refactor both classes are *thin facades* over a private
:class:`~repro.serving.engine.ServingEngine`.  A single ``plan()`` call is a
micro-batch of one: it flows through the same fallback-policy chain, batch
predictor evaluation and telemetry as high-throughput traffic, so per-call
and batched planning cannot drift apart.  The facade pins the
:func:`~repro.serving.fallback.default_runtime_chain` (installed precision →
cross precision) to preserve the historical contract that a routine with no
model at all raises ``KeyError``; pass a custom ``fallback`` chain (e.g.
:func:`~repro.serving.fallback.default_serving_chain`) to change that.
Batch entry points (:meth:`AdsalaRuntime.plan_many`) and engine telemetry
(:meth:`AdsalaRuntime.serving_stats`) are exposed directly.

Cross-precision substitutions are no longer silent: the returned
:class:`ExecutionPlan` records the originally requested routine in
``fallback_from`` and the resolving policy name in ``policy``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.blas.threaded import ThreadedBlas
from repro.core.install import InstallationBundle

__all__ = ["ExecutionPlan", "AdsalaRuntime", "AdsalaBlas"]


@dataclass(frozen=True)
class ExecutionPlan:
    """A planned BLAS call: chosen thread count plus simulator estimates.

    Attributes
    ----------
    routine:
        The routine key whose model produced the plan (the *served* key).
    fallback_from:
        The originally requested key when a fallback policy substituted a
        different model (e.g. ``"sgemm"`` served by the ``dgemm`` model),
        ``None`` when the request was served as-is.
    policy:
        Name of the fallback policy that resolved the request
        (``"installed"``, ``"cross-precision"``, ``"max-threads"``).
    """

    routine: str
    dims: Dict[str, int]
    threads: int
    predicted_time: float
    baseline_time: float
    from_cache: bool
    fallback_from: Optional[str] = None
    policy: str = "installed"

    #: Sentinel returned by :attr:`estimated_speedup` when the predicted
    #: time is non-positive and no meaningful ratio exists.
    SPEEDUP_UNDEFINED = 0.0

    @property
    def estimated_speedup(self) -> float:
        """``baseline_time / predicted_time``, or :data:`SPEEDUP_UNDEFINED`.

        A non-positive predicted time carries no speedup information (it
        would previously overflow to ``inf``); the finite sentinel ``0.0``
        keeps downstream aggregation (means, tables) well defined.
        """
        if self.predicted_time <= 0:
            return self.SPEEDUP_UNDEFINED
        return self.baseline_time / self.predicted_time


class AdsalaRuntime:
    """Plan thread counts for BLAS calls using an installation bundle.

    A thin facade over :class:`~repro.serving.engine.ServingEngine`: the
    public contract of the original one-shot planner is preserved (same
    ``plan()`` signature, ``KeyError`` for unknown routines, per-routine
    LRU caches), while every call runs through the engine's micro-batch
    pipeline.

    Parameters
    ----------
    bundle:
        The installation bundle (or a registry
        :class:`~repro.serving.registry.BundleHandle`) for the platform.
    fallback:
        Optional :class:`~repro.serving.fallback.FallbackChain` overriding
        the default installed-precision → cross-precision chain.
    """

    def __init__(self, bundle: InstallationBundle, fallback=None):
        # Imported here: repro.serving sits above repro.core in the layer
        # diagram, and the facade is the one place the layers meet.
        from repro.serving.engine import ServingEngine
        from repro.serving.fallback import default_runtime_chain

        self.bundle = bundle
        self.platform = bundle.platform
        self.simulator = bundle.simulator
        self.engine = ServingEngine(
            bundle, fallback=fallback if fallback is not None else default_runtime_chain()
        )

    def plan(self, routine: str, use_cache: bool = True, **dims: int) -> ExecutionPlan:
        """Plan one call: predicted-optimal threads + estimated speedup.

        Precision fallbacks (``sgemm`` served by the ``dgemm`` model when
        only the latter was installed) are applied by the engine's fallback
        chain and recorded on the plan's ``fallback_from`` field.
        """
        return self.engine.plan(routine, use_cache=use_cache, **dims)

    def plan_many(
        self, requests: Iterable[Tuple[str, Dict[str, int]]]
    ) -> List[ExecutionPlan]:
        """Plan many ``(routine, dims)`` calls in micro-batches (one pass)."""
        return self.engine.plan_many(requests)

    @property
    def calls_planned(self) -> int:
        """Total requests answered (kept from the pre-engine counter API)."""
        return self.engine.telemetry.n_requests

    def cache_statistics(self) -> Dict[str, int]:
        """Aggregate model-evaluation / cache-hit counters across routines."""
        evaluations = 0
        hits = 0
        for installation in self.bundle.routines.values():
            evaluations += installation.predictor.n_model_evaluations
            hits += installation.predictor.n_cache_hits
        return {"model_evaluations": evaluations, "cache_hits": hits}

    def serving_stats(self) -> Dict[str, object]:
        """The engine's telemetry snapshot (batches, drift, per-routine)."""
        return self.engine.stats()


class AdsalaBlas:
    """BLAS Level 3 front-end with ML-selected thread counts.

    A facade pairing the planning engine (via :class:`AdsalaRuntime`) with
    the blocked multi-threaded execution substrate.

    Parameters
    ----------
    bundle:
        The installation bundle for the target platform.
    execution_thread_cap:
        Maximum number of worker threads actually spawned when executing a
        call locally.  Defaults to the local CPU count: the *planned* thread
        count refers to the modelled platform (e.g. 96 threads on Gadi) and
        is reported in the plan, while local execution clamps to what the
        host can run.
    tile:
        Tile size for the blocked execution substrate.
    """

    def __init__(
        self,
        bundle: InstallationBundle,
        execution_thread_cap: int | None = None,
        tile: int = 256,
    ):
        self.runtime = AdsalaRuntime(bundle)
        if execution_thread_cap is None:
            execution_thread_cap = os.cpu_count() or 1
        if execution_thread_cap < 1:
            raise ValueError("execution_thread_cap must be at least 1")
        self.execution_thread_cap = execution_thread_cap
        self.tile = tile
        self.last_plan: ExecutionPlan | None = None

    # -- planning --------------------------------------------------------------
    def plan(self, routine: str, **dims: int) -> ExecutionPlan:
        plan = self.runtime.plan(routine, **dims)
        self.last_plan = plan
        return plan

    def _executor(self, plan: ExecutionPlan) -> ThreadedBlas:
        threads = min(plan.threads, self.execution_thread_cap)
        return ThreadedBlas(n_threads=max(1, threads), tile=self.tile)

    @staticmethod
    def _precision_of(*arrays: np.ndarray) -> str:
        return "s" if all(np.asarray(a).dtype == np.float32 for a in arrays) else "d"

    # -- BLAS front-end ------------------------------------------------------------
    def gemm(self, A, B, C=None, alpha=1.0, beta=0.0) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(
            precision + "gemm", m=A.shape[0], k=A.shape[1], n=B.shape[1]
        )
        return self._executor(plan).gemm(A, B, C=C, alpha=alpha, beta=beta)

    def symm(self, A, B, C=None, alpha=1.0, beta=0.0, lower=True) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(precision + "symm", m=A.shape[0], n=B.shape[1])
        return self._executor(plan).symm(A, B, C=C, alpha=alpha, beta=beta, lower=lower)

    def syrk(self, A, C=None, alpha=1.0, beta=0.0, trans=False, lower=True) -> np.ndarray:
        A = np.asarray(A)
        precision = self._precision_of(A)
        n, k = (A.shape[1], A.shape[0]) if trans else (A.shape[0], A.shape[1])
        plan = self.plan(precision + "syrk", n=n, k=k)
        return self._executor(plan).syrk(
            A, C=C, alpha=alpha, beta=beta, trans=trans, lower=lower
        )

    def syr2k(self, A, B, C=None, alpha=1.0, beta=0.0, trans=False, lower=True) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        n, k = (A.shape[1], A.shape[0]) if trans else (A.shape[0], A.shape[1])
        plan = self.plan(precision + "syr2k", n=n, k=k)
        return self._executor(plan).syr2k(
            A, B, C=C, alpha=alpha, beta=beta, trans=trans, lower=lower
        )

    def trmm(self, A, B, alpha=1.0, lower=True, transa=False, unit_diag=False) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(precision + "trmm", m=A.shape[0], n=B.shape[1])
        return self._executor(plan).trmm(
            A, B, alpha=alpha, lower=lower, transa=transa, unit_diag=unit_diag
        )

    def trsm(self, A, B, alpha=1.0, lower=True, transa=False, unit_diag=False) -> np.ndarray:
        A = np.asarray(A)
        B = np.asarray(B)
        precision = self._precision_of(A, B)
        plan = self.plan(precision + "trsm", m=A.shape[0], n=B.shape[1])
        return self._executor(plan).trsm(
            A, B, alpha=alpha, lower=lower, transa=transa, unit_diag=unit_diag
        )
