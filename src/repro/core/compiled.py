"""Compiled prediction hot path: one fused feature→preprocess→ensemble kernel.

The object-graph prediction path (``feature_matrix_grid`` →
``PreprocessingPipeline.transform`` → ``model.predict``) re-does structural
work on every ``plan()`` call: it stacks seventeen feature blocks into a
fresh matrix, loops the Yeo-Johnson transform column by column, slices the
correlation survivors, and walks the ensemble tree by tree.  None of that
structure changes after installation — only the dimension values do.

:class:`CompiledPredictor` therefore follows a **build-once / evaluate-many
contract**: everything shape-independent is resolved exactly once when the
predictor is built (at bundle load, or lazily on the first prediction), and
each subsequent evaluation is a short straight-line sequence of vectorised
array expressions over preallocated buffers:

* **build time** — parse the routine spec; bind the candidate thread
  counts; read the correlation filter's kept-column indices and restrict
  the Yeo-Johnson lambdas and the standardisation affine to them
  (:meth:`~repro.preprocessing.pipeline.PreprocessingPipeline.compile`);
  construct a :class:`~repro.core.features.FeatureGridWriter` that
  materialises *only the kept feature columns*; stack the model's trees
  into one struct-of-arrays (:class:`~repro.ml.tree.StackedTrees`) or bind
  a linear model's ``(coef, intercept)`` pair.
* **evaluate time** — fill the reusable feature grid from the dims arrays,
  apply the two fused preprocessing expressions (whole-matrix Yeo-Johnson,
  then one affine), and run the single stacked ensemble descent.  No Python
  feature dicts, no per-column loop, no per-tree loop.

Outputs are bit-identical to the object path (asserted in
``tests/core/test_compiled.py``): the kernel performs the exact same scalar
operations per element, just batched differently.  Wrap code in
:func:`reference_mode` to force :class:`~repro.core.predictor.ThreadPredictor`
back onto the object path — that is the pre-compilation baseline used by
the equivalence tests and ``benchmarks/bench_plan_latency.py``.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.features import FeatureGridWriter
from repro.ml import _native
from repro.ml.base import BaseRegressor
from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
    weighted_median,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor, StackedTrees
from repro.ml.tree import unstacked_mode as tree_unstacked_mode
from repro.preprocessing.pipeline import FusedTransform, PreprocessingPipeline

__all__ = [
    "CompiledPredictor",
    "ModelKernel",
    "compile_model_kernel",
    "compile_model_evaluator",
    "export_model_evaluator",
    "model_kernel_from_state",
    "evaluator_from_state",
    "reference_mode",
    "active_impl",
]


#: Active implementation: "compiled" (default) or "reference".
_IMPL = "compiled"


@contextmanager
def reference_mode():
    """Force the pre-compilation prediction path for the duration of the block.

    Affects every :class:`~repro.core.predictor.ThreadPredictor` (and, by
    extension, the serving engine): ``plan`` / ``plan_batch`` /
    ``predict_runtimes*`` fall back to ``feature_matrix_grid`` +
    ``PreprocessingPipeline.transform`` + ``model.predict``, with tree
    ensembles pinned to their per-tree flat-descent loop
    (:func:`repro.ml.tree.unstacked_mode`) — i.e. exactly the hot path as
    it existed before this compilation layer.  Results are bit-identical
    either way — the reference mode exists for equivalence tests and
    benchmark baselines, like :func:`repro.ml.tree.reference_mode` one
    layer down.
    """
    global _IMPL
    previous = _IMPL
    _IMPL = "reference"
    try:
        with tree_unstacked_mode():
            yield
    finally:
        _IMPL = previous


def active_impl() -> str:
    """The currently active implementation ("compiled" or "reference")."""
    return _IMPL


#: Ensemble types whose prediction compiles to one stacked descent.
_STACKED_ENSEMBLES = (
    RandomForestRegressor,
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)


@dataclass
class ModelKernel:
    """A compiled model evaluator plus the flat state the native path needs.

    ``evaluate`` is the bit-identical Python-side kernel (what
    :func:`compile_model_evaluator` used to return).  The extra fields let
    the native ``fused_evaluate`` call run the same model without any
    Python in the loop:

    * ``kind`` selects the descent mode and aggregation — ``"tree"`` /
      ``"forest-mean"`` / ``"weighted-median"`` run the per-tree descent
      (mode 0) and aggregate the leaf matrix, ``"fold"`` runs the boosted
      fold (mode 1) with ``base``/``scale``, and ``"linear"`` /
      ``"opaque"`` stop the native call after the transform (mode 2) and
      finish in Python on the natively transformed grid;
    * ``stack`` / ``weights`` carry the stacked trees and the AdaBoost
      estimator weights for the mode-0 aggregations.
    """

    kind: str
    evaluate: Callable[[np.ndarray], np.ndarray]
    stack: StackedTrees | None = None
    weights: np.ndarray | None = None
    base: float = 0.0
    scale: float = 0.0


def compile_model_kernel(model: BaseRegressor) -> ModelKernel:
    """Bind a fitted model to its fastest bit-identical evaluation kernel.

    * tree ensembles → the whole-ensemble stacked descent (built eagerly
      here so the first ``plan()`` does not pay the stacking cost);
    * a single decision tree → its flattened array form;
    * linear-family models (``coef_`` + ``intercept_``) → one mat-vec;
    * anything else (SVR, KNN, ...) → the model's own ``predict``.

    ``evaluate`` takes the *preprocessed* feature matrix and skips input
    re-validation — the compiled predictor constructs that matrix itself,
    so it is correct by construction.
    """
    if isinstance(model, DecisionTreeRegressor):
        # A one-tree "stack" still wins: it rides the packed-node native
        # descent kernel instead of the level-synchronous NumPy gathers.
        stack = StackedTrees([model.flat_tree_])

        def tree_evaluate(X: np.ndarray) -> np.ndarray:
            return stack._descend(X)[0].copy()

        return ModelKernel(kind="tree", evaluate=tree_evaluate, stack=stack)
    if isinstance(model, _STACKED_ENSEMBLES):
        stack = model.stacked()  # build and cache the stack at compile time
        if isinstance(model, RandomForestRegressor):
            return ModelKernel(
                kind="forest-mean",
                evaluate=model._predict_stacked,
                stack=stack,
            )
        if isinstance(model, AdaBoostRegressor):
            return ModelKernel(
                kind="weighted-median",
                evaluate=model._predict_stacked,
                stack=stack,
                weights=np.asarray(model.estimator_weights_),
            )
        return ModelKernel(
            kind="fold",
            evaluate=model._predict_stacked,
            stack=stack,
            base=float(model.base_prediction_),
            scale=float(model.learning_rate),
        )
    coef = getattr(model, "coef_", None)
    intercept = getattr(model, "intercept_", None)
    if coef is not None and intercept is not None:
        coef = np.asarray(coef, dtype=np.float64)

        def linear_evaluate(X: np.ndarray) -> np.ndarray:
            return X @ coef + intercept

        return ModelKernel(kind="linear", evaluate=linear_evaluate)
    return ModelKernel(kind="opaque", evaluate=model.predict)


def compile_model_evaluator(model: BaseRegressor) -> Callable[[np.ndarray], np.ndarray]:
    """The bare evaluation callable of :func:`compile_model_kernel`."""
    return compile_model_kernel(model).evaluate


def export_model_evaluator(model: BaseRegressor, registry) -> dict:
    """Flatten a fitted model's evaluation kernel into a shared-memory state.

    The returned dict is picklable (a few scalars plus
    :class:`~repro.shm.SharedArrayRef` entries); :func:`evaluator_from_state`
    rebuilds a kernel over the mapped segments in another process that is
    bit-identical to :func:`compile_model_evaluator` on the same model.
    Models without a flat form (SVR, KNN) ride the pickle whole — their
    state is small and they have no array hot path worth sharing.
    """
    if isinstance(model, DecisionTreeRegressor):
        stack = StackedTrees([model.flat_tree_])
        return {"kind": "tree", "stack": stack.to_shared(registry)}
    if isinstance(model, RandomForestRegressor):
        return {"kind": "forest-mean", "stack": model.stacked().to_shared(registry)}
    if isinstance(model, AdaBoostRegressor):
        weights = np.asarray(model.estimator_weights_, dtype=np.float64)
        return {
            "kind": "weighted-median",
            "stack": model.stacked().to_shared(registry),
            "weights": registry.export_array(weights),
        }
    if isinstance(model, (GradientBoostingRegressor, HistGradientBoostingRegressor)):
        return {
            "kind": "fold",
            "stack": model.stacked().to_shared(registry),
            "base": float(model.base_prediction_),
            "scale": float(model.learning_rate),
        }
    coef = getattr(model, "coef_", None)
    intercept = getattr(model, "intercept_", None)
    if coef is not None and intercept is not None:
        return {
            "kind": "linear",
            "coef": registry.export_array(np.asarray(coef, dtype=np.float64)),
            "intercept": intercept,
        }
    return {"kind": "pickled", "model": model}


def model_kernel_from_state(state: dict, registry) -> ModelKernel:
    """Rebuild a :class:`ModelKernel` from :func:`export_model_evaluator` state.

    Tree stacks map their arrays from shared segments (zero-copy); the
    aggregations reuse the exact code paths of the in-process kernels
    (:meth:`StackedTrees._descend`, :meth:`StackedTrees.fold`,
    :func:`~repro.ml.boosting.weighted_median`), so predictions stay
    bit-identical across backends — and the stack/weights/base/scale
    fields let the worker's predictor run the native fused evaluate just
    like the parent's.
    """
    kind = state["kind"]
    if kind == "tree":
        stack = StackedTrees.from_shared(state["stack"], registry)

        def tree_evaluate(X: np.ndarray) -> np.ndarray:
            return stack._descend(X)[0].copy()

        return ModelKernel(kind="tree", evaluate=tree_evaluate, stack=stack)
    if kind == "forest-mean":
        stack = StackedTrees.from_shared(state["stack"], registry)

        def forest_evaluate(X: np.ndarray) -> np.ndarray:
            return stack._descend(X).mean(axis=0)

        return ModelKernel(
            kind="forest-mean", evaluate=forest_evaluate, stack=stack
        )
    if kind == "weighted-median":
        stack = StackedTrees.from_shared(state["stack"], registry)
        weights = registry.map_array(state["weights"])

        def median_evaluate(X: np.ndarray) -> np.ndarray:
            return weighted_median(stack._descend(X).T, weights)

        return ModelKernel(
            kind="weighted-median",
            evaluate=median_evaluate,
            stack=stack,
            weights=weights,
        )
    if kind == "fold":
        stack = StackedTrees.from_shared(state["stack"], registry)
        base = state["base"]
        scale = state["scale"]

        def fold_evaluate(X: np.ndarray) -> np.ndarray:
            return stack.fold(X, base, scale)

        return ModelKernel(
            kind="fold",
            evaluate=fold_evaluate,
            stack=stack,
            base=float(base),
            scale=float(scale),
        )
    if kind == "linear":
        coef = registry.map_array(state["coef"])
        intercept = state["intercept"]

        def linear_evaluate(X: np.ndarray) -> np.ndarray:
            return X @ coef + intercept

        return ModelKernel(kind="linear", evaluate=linear_evaluate)
    if kind == "pickled":
        return ModelKernel(kind="opaque", evaluate=state["model"].predict)
    raise ValueError(f"Unknown evaluator state kind {kind!r}")


def evaluator_from_state(
    state: dict, registry
) -> Callable[[np.ndarray], np.ndarray]:
    """The bare evaluation callable of :func:`model_kernel_from_state`."""
    return model_kernel_from_state(state, registry).evaluate


class CompiledPredictor:
    """Build-once / evaluate-many kernel for one routine's runtime model.

    Parameters
    ----------
    routine:
        Routine key, e.g. ``"dsyrk"``.
    pipeline:
        Fitted preprocessing pipeline; collapsed to flat arrays at build
        time via :meth:`~repro.preprocessing.pipeline.PreprocessingPipeline.compile`.
    model:
        Fitted runtime-regression model; compiled via
        :func:`compile_model_evaluator`.
    candidate_threads:
        Thread counts evaluated per shape (one grid row each).

    The instance owns reusable buffers and is **not** thread-safe; each
    :class:`~repro.core.predictor.ThreadPredictor` builds its own.
    """

    def __init__(
        self,
        routine: str,
        pipeline: PreprocessingPipeline,
        model: BaseRegressor,
        candidate_threads: Sequence[int],
    ):
        self.routine = routine
        self.candidate_threads = np.asarray(candidate_threads, dtype=np.float64)
        self._fused = pipeline.compile()
        self._writer = FeatureGridWriter(
            routine, self.candidate_threads, columns=self._fused.kept_indices
        )
        self._model_kernel = compile_model_kernel(model)
        self._evaluate_model = self._model_kernel.evaluate
        self._configure_native()

    @classmethod
    def from_state(
        cls,
        routine: str,
        candidate_threads: Sequence[int],
        fused: FusedTransform,
        evaluate_model: "ModelKernel | Callable[[np.ndarray], np.ndarray]",
    ) -> "CompiledPredictor":
        """Assemble a predictor from already-flattened state.

        The process-shard worker builds predictors this way: ``fused`` views
        shared-memory segments (:meth:`FusedTransform.from_shared`) and
        ``evaluate_model`` comes from :func:`model_kernel_from_state`, so no
        pipeline or model object ever crosses the process boundary.  A bare
        callable is also accepted (wrapped as an opaque kernel, which still
        rides the native fill + transform stages, just not the descent).
        """
        predictor = cls.__new__(cls)
        predictor.routine = routine
        predictor.candidate_threads = np.asarray(candidate_threads, dtype=np.float64)
        predictor._fused = fused
        predictor._writer = FeatureGridWriter(
            routine, predictor.candidate_threads, columns=fused.kept_indices
        )
        if isinstance(evaluate_model, ModelKernel):
            predictor._model_kernel = evaluate_model
        else:
            predictor._model_kernel = ModelKernel(
                kind="opaque", evaluate=evaluate_model
            )
        predictor._evaluate_model = predictor._model_kernel.evaluate
        predictor._configure_native()
        return predictor

    #: Native descent mode per model kind (see ``fused_evaluate`` in
    #: :mod:`repro.ml._native`): 0 = per-tree leaf matrix, 1 = boosted
    #: fold, 2 = stop after the transform and finish in Python.
    _NATIVE_MODES = {
        "tree": 0,
        "forest-mean": 0,
        "weighted-median": 0,
        "fold": 1,
        "linear": 2,
        "opaque": 2,
    }

    def _configure_native(self) -> None:
        """Bind whatever native stages are available for this predictor.

        Establishes three independent accelerations, each falling back to
        the NumPy expression when missing (no compiler, kill switch, no
        column program, unverified transform):

        * ``_native_fill``  — C feature fill from the column program;
        * ``_native_transform`` — C fused Yeo-Johnson + affine;
        * ``_fused_call`` — the single GIL-free C call chaining
          fill → transform → descent (needs all stages plus a stacked or
          mode-2 model).  Guarded further by a first-call self-check
          against the NumPy path (``ADSALA_NATIVE_SELFCHECK=0`` skips).
        """
        self._program = None
        self._native_fill = None
        self._native_transform = None
        self._fused_call = None
        self._native_mode = None
        self._stack_arrays = None
        self._flat_state = None
        self._selfcheck_pending = False
        kernels = _native.load_kernels()
        if kernels is None:
            return
        program = self._writer.column_program()
        self._flat_state = self._fused.flat_arrays()
        if kernels.feature_fill is not None and program is not None:
            self._program = program
            self._native_fill = kernels.feature_fill
        if kernels.fused_transform is not None:
            self._native_transform = kernels.fused_transform
        kernel = self._model_kernel
        mode = self._NATIVE_MODES.get(kernel.kind)
        if (
            kernels.fused_evaluate is None
            or program is None
            or mode is None
            or (mode != 2 and kernel.stack is None)
        ):
            return
        self._program = program
        self._native_mode = mode
        self._fused_call = kernels.fused_evaluate
        if kernel.stack is not None:
            self._stack_arrays = (
                np.ascontiguousarray(kernel.stack.roots),
                np.ascontiguousarray(kernel.stack.depths),
                np.ascontiguousarray(kernel.stack.nodes_packed),
            )
        self._selfcheck_pending = (
            os.environ.get("ADSALA_NATIVE_SELFCHECK", "1") != "0"
        )

    @property
    def n_candidates(self) -> int:
        return int(self.candidate_threads.size)

    def predict_runtimes(self, dims: Dict[str, int]) -> np.ndarray:
        """Predicted runtime per candidate thread count for one shape.

        Bit-identical to the object path's
        ``ThreadPredictor.predict_runtimes`` output.
        """
        return self.predict_runtimes_batch([dims])[0]

    def predict_runtimes_batch(
        self, dims_list: Sequence[Dict[str, int]]
    ) -> np.ndarray:
        """Predicted runtimes for many shapes in one fused pass.

        Returns a ``(len(dims_list), n_candidates)`` array matching the
        object path's ``predict_runtimes_batch`` bit for bit.  With the
        full native bundle loaded this is **one C call** (fill → transform
        → descent) that releases the GIL end to end; otherwise each stage
        independently uses its native kernel or its NumPy expression.
        """
        if self._fused_call is not None:
            predictions = self._predict_fused(dims_list)
            if self._selfcheck_pending:
                predictions = self._run_selfcheck(dims_list, predictions)
            return predictions.reshape(len(dims_list), self.n_candidates)

        # Staged path: per-stage native kernels where available, NumPy
        # expressions elsewhere — always bit-identical.
        if self._native_fill is not None:
            dims = self._writer.load_dims(dims_list)
            grid = self._writer.grid_view(dims.shape[0])
            self._native_fill(self._program, dims, self._writer.nt, grid)
        else:
            grid = self._writer.write_dicts(dims_list)
        if self._native_transform is not None:
            lambdas, shift, scale = self._flat_state
            transformed = self._native_transform(grid, lambdas, shift, scale)
        else:
            transformed = self._fused.transform_kept(grid)
        predictions = np.asarray(
            self._evaluate_model(transformed), dtype=float
        )
        return predictions.reshape(len(dims_list), self.n_candidates)

    def _predict_fused(self, dims_list) -> np.ndarray:
        """One native call over the whole evaluate span."""
        writer = self._writer
        dims = writer.load_dims(dims_list)
        n_shapes = dims.shape[0]
        grid = writer.grid_view(n_shapes)
        rows = grid.shape[0]
        lambdas, shift, scale = self._flat_state
        kernel = self._model_kernel
        mode = self._native_mode
        if mode == 2:
            self._fused_call(
                self._program, dims, writer.nt, grid,
                lambdas, shift, scale,
                2, None, None, None, 0.0, 0.0, None,
            )
            return np.asarray(kernel.evaluate(grid), dtype=float)
        roots, depths, nodes = self._stack_arrays
        if mode == 1:
            out = np.empty(rows, dtype=np.float64)
            self._fused_call(
                self._program, dims, writer.nt, grid,
                lambdas, shift, scale,
                1, roots, depths, nodes, kernel.base, kernel.scale, out,
            )
            return out
        out = np.empty((roots.shape[0], rows), dtype=np.float64)
        self._fused_call(
            self._program, dims, writer.nt, grid,
            lambdas, shift, scale,
            0, roots, depths, nodes, 0.0, 0.0, out,
        )
        if kernel.kind == "tree":
            return out[0]
        if kernel.kind == "forest-mean":
            return out.mean(axis=0)
        return weighted_median(out.T, kernel.weights)

    def _run_selfcheck(
        self, dims_list, predictions: np.ndarray
    ) -> np.ndarray:
        """First-call guard: fused C result must equal the NumPy path bitwise.

        On mismatch the fused call and the per-stage fill/transform
        kernels are disabled for this predictor (the long-trusted descent
        kernel inside :class:`StackedTrees` stays), a warning is emitted
        once, and the NumPy result is returned.
        """
        self._selfcheck_pending = False
        grid = self._writer.write_dicts(dims_list)
        transformed = self._fused.transform_kept(grid)
        reference = np.asarray(self._evaluate_model(transformed), dtype=float)
        if np.array_equal(
            np.asarray(predictions, dtype=float).reshape(reference.shape),
            reference,
        ):
            return predictions
        warnings.warn(
            f"native fused evaluate diverged from the NumPy path for "
            f"routine {self.routine!r}; disabling the native fill/transform "
            f"stages for this predictor",
            RuntimeWarning,
            stacklevel=3,
        )
        self._fused_call = None
        self._native_fill = None
        self._native_transform = None
        return reference
