"""Compiled prediction hot path: one fused feature→preprocess→ensemble kernel.

The object-graph prediction path (``feature_matrix_grid`` →
``PreprocessingPipeline.transform`` → ``model.predict``) re-does structural
work on every ``plan()`` call: it stacks seventeen feature blocks into a
fresh matrix, loops the Yeo-Johnson transform column by column, slices the
correlation survivors, and walks the ensemble tree by tree.  None of that
structure changes after installation — only the dimension values do.

:class:`CompiledPredictor` therefore follows a **build-once / evaluate-many
contract**: everything shape-independent is resolved exactly once when the
predictor is built (at bundle load, or lazily on the first prediction), and
each subsequent evaluation is a short straight-line sequence of vectorised
array expressions over preallocated buffers:

* **build time** — parse the routine spec; bind the candidate thread
  counts; read the correlation filter's kept-column indices and restrict
  the Yeo-Johnson lambdas and the standardisation affine to them
  (:meth:`~repro.preprocessing.pipeline.PreprocessingPipeline.compile`);
  construct a :class:`~repro.core.features.FeatureGridWriter` that
  materialises *only the kept feature columns*; stack the model's trees
  into one struct-of-arrays (:class:`~repro.ml.tree.StackedTrees`) or bind
  a linear model's ``(coef, intercept)`` pair.
* **evaluate time** — fill the reusable feature grid from the dims arrays,
  apply the two fused preprocessing expressions (whole-matrix Yeo-Johnson,
  then one affine), and run the single stacked ensemble descent.  No Python
  feature dicts, no per-column loop, no per-tree loop.

Outputs are bit-identical to the object path (asserted in
``tests/core/test_compiled.py``): the kernel performs the exact same scalar
operations per element, just batched differently.  Wrap code in
:func:`reference_mode` to force :class:`~repro.core.predictor.ThreadPredictor`
back onto the object path — that is the pre-compilation baseline used by
the equivalence tests and ``benchmarks/bench_plan_latency.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.features import FeatureGridWriter
from repro.ml.base import BaseRegressor
from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
    weighted_median,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor, StackedTrees
from repro.ml.tree import unstacked_mode as tree_unstacked_mode
from repro.preprocessing.pipeline import FusedTransform, PreprocessingPipeline

__all__ = [
    "CompiledPredictor",
    "compile_model_evaluator",
    "export_model_evaluator",
    "evaluator_from_state",
    "reference_mode",
    "active_impl",
]


#: Active implementation: "compiled" (default) or "reference".
_IMPL = "compiled"


@contextmanager
def reference_mode():
    """Force the pre-compilation prediction path for the duration of the block.

    Affects every :class:`~repro.core.predictor.ThreadPredictor` (and, by
    extension, the serving engine): ``plan`` / ``plan_batch`` /
    ``predict_runtimes*`` fall back to ``feature_matrix_grid`` +
    ``PreprocessingPipeline.transform`` + ``model.predict``, with tree
    ensembles pinned to their per-tree flat-descent loop
    (:func:`repro.ml.tree.unstacked_mode`) — i.e. exactly the hot path as
    it existed before this compilation layer.  Results are bit-identical
    either way — the reference mode exists for equivalence tests and
    benchmark baselines, like :func:`repro.ml.tree.reference_mode` one
    layer down.
    """
    global _IMPL
    previous = _IMPL
    _IMPL = "reference"
    try:
        with tree_unstacked_mode():
            yield
    finally:
        _IMPL = previous


def active_impl() -> str:
    """The currently active implementation ("compiled" or "reference")."""
    return _IMPL


#: Ensemble types whose prediction compiles to one stacked descent.
_STACKED_ENSEMBLES = (
    RandomForestRegressor,
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)


def compile_model_evaluator(model: BaseRegressor) -> Callable[[np.ndarray], np.ndarray]:
    """Bind a fitted model to its fastest bit-identical evaluation kernel.

    * tree ensembles → the whole-ensemble stacked descent (built eagerly
      here so the first ``plan()`` does not pay the stacking cost);
    * a single decision tree → its flattened array form;
    * linear-family models (``coef_`` + ``intercept_``) → one mat-vec;
    * anything else (SVR, KNN, ...) → the model's own ``predict``.

    The returned callable takes the *preprocessed* feature matrix and skips
    input re-validation — the compiled predictor constructs that matrix
    itself, so it is correct by construction.
    """
    if isinstance(model, DecisionTreeRegressor):
        # A one-tree "stack" still wins: it rides the packed-node native
        # descent kernel instead of the level-synchronous NumPy gathers.
        stack = StackedTrees([model.flat_tree_])

        def tree_evaluate(X: np.ndarray) -> np.ndarray:
            return stack._descend(X)[0].copy()

        return tree_evaluate
    if isinstance(model, _STACKED_ENSEMBLES):
        model.stacked()  # build and cache the stack at compile time
        return model._predict_stacked
    coef = getattr(model, "coef_", None)
    intercept = getattr(model, "intercept_", None)
    if coef is not None and intercept is not None:
        coef = np.asarray(coef, dtype=np.float64)

        def linear_evaluate(X: np.ndarray) -> np.ndarray:
            return X @ coef + intercept

        return linear_evaluate
    return model.predict


def export_model_evaluator(model: BaseRegressor, registry) -> dict:
    """Flatten a fitted model's evaluation kernel into a shared-memory state.

    The returned dict is picklable (a few scalars plus
    :class:`~repro.shm.SharedArrayRef` entries); :func:`evaluator_from_state`
    rebuilds a kernel over the mapped segments in another process that is
    bit-identical to :func:`compile_model_evaluator` on the same model.
    Models without a flat form (SVR, KNN) ride the pickle whole — their
    state is small and they have no array hot path worth sharing.
    """
    if isinstance(model, DecisionTreeRegressor):
        stack = StackedTrees([model.flat_tree_])
        return {"kind": "tree", "stack": stack.to_shared(registry)}
    if isinstance(model, RandomForestRegressor):
        return {"kind": "forest-mean", "stack": model.stacked().to_shared(registry)}
    if isinstance(model, AdaBoostRegressor):
        weights = np.asarray(model.estimator_weights_, dtype=np.float64)
        return {
            "kind": "weighted-median",
            "stack": model.stacked().to_shared(registry),
            "weights": registry.export_array(weights),
        }
    if isinstance(model, (GradientBoostingRegressor, HistGradientBoostingRegressor)):
        return {
            "kind": "fold",
            "stack": model.stacked().to_shared(registry),
            "base": float(model.base_prediction_),
            "scale": float(model.learning_rate),
        }
    coef = getattr(model, "coef_", None)
    intercept = getattr(model, "intercept_", None)
    if coef is not None and intercept is not None:
        return {
            "kind": "linear",
            "coef": registry.export_array(np.asarray(coef, dtype=np.float64)),
            "intercept": intercept,
        }
    return {"kind": "pickled", "model": model}


def evaluator_from_state(
    state: dict, registry
) -> Callable[[np.ndarray], np.ndarray]:
    """Rebuild an evaluation kernel from :func:`export_model_evaluator` state.

    Tree stacks map their arrays from shared segments (zero-copy); the
    aggregations reuse the exact code paths of the in-process kernels
    (:meth:`StackedTrees._descend`, :meth:`StackedTrees.fold`,
    :func:`~repro.ml.boosting.weighted_median`), so predictions stay
    bit-identical across backends.
    """
    kind = state["kind"]
    if kind == "tree":
        stack = StackedTrees.from_shared(state["stack"], registry)

        def tree_evaluate(X: np.ndarray) -> np.ndarray:
            return stack._descend(X)[0].copy()

        return tree_evaluate
    if kind == "forest-mean":
        stack = StackedTrees.from_shared(state["stack"], registry)

        def forest_evaluate(X: np.ndarray) -> np.ndarray:
            return stack._descend(X).mean(axis=0)

        return forest_evaluate
    if kind == "weighted-median":
        stack = StackedTrees.from_shared(state["stack"], registry)
        weights = registry.map_array(state["weights"])

        def median_evaluate(X: np.ndarray) -> np.ndarray:
            return weighted_median(stack._descend(X).T, weights)

        return median_evaluate
    if kind == "fold":
        stack = StackedTrees.from_shared(state["stack"], registry)
        base = state["base"]
        scale = state["scale"]

        def fold_evaluate(X: np.ndarray) -> np.ndarray:
            return stack.fold(X, base, scale)

        return fold_evaluate
    if kind == "linear":
        coef = registry.map_array(state["coef"])
        intercept = state["intercept"]

        def linear_evaluate(X: np.ndarray) -> np.ndarray:
            return X @ coef + intercept

        return linear_evaluate
    if kind == "pickled":
        return state["model"].predict
    raise ValueError(f"Unknown evaluator state kind {kind!r}")


class CompiledPredictor:
    """Build-once / evaluate-many kernel for one routine's runtime model.

    Parameters
    ----------
    routine:
        Routine key, e.g. ``"dsyrk"``.
    pipeline:
        Fitted preprocessing pipeline; collapsed to flat arrays at build
        time via :meth:`~repro.preprocessing.pipeline.PreprocessingPipeline.compile`.
    model:
        Fitted runtime-regression model; compiled via
        :func:`compile_model_evaluator`.
    candidate_threads:
        Thread counts evaluated per shape (one grid row each).

    The instance owns reusable buffers and is **not** thread-safe; each
    :class:`~repro.core.predictor.ThreadPredictor` builds its own.
    """

    def __init__(
        self,
        routine: str,
        pipeline: PreprocessingPipeline,
        model: BaseRegressor,
        candidate_threads: Sequence[int],
    ):
        self.routine = routine
        self.candidate_threads = np.asarray(candidate_threads, dtype=np.float64)
        self._fused = pipeline.compile()
        self._writer = FeatureGridWriter(
            routine, self.candidate_threads, columns=self._fused.kept_indices
        )
        self._evaluate_model = compile_model_evaluator(model)

    @classmethod
    def from_state(
        cls,
        routine: str,
        candidate_threads: Sequence[int],
        fused: FusedTransform,
        evaluate_model: Callable[[np.ndarray], np.ndarray],
    ) -> "CompiledPredictor":
        """Assemble a predictor from already-flattened state.

        The process-shard worker builds predictors this way: ``fused`` views
        shared-memory segments (:meth:`FusedTransform.from_shared`) and
        ``evaluate_model`` comes from :func:`evaluator_from_state`, so no
        pipeline or model object ever crosses the process boundary.
        """
        predictor = cls.__new__(cls)
        predictor.routine = routine
        predictor.candidate_threads = np.asarray(candidate_threads, dtype=np.float64)
        predictor._fused = fused
        predictor._writer = FeatureGridWriter(
            routine, predictor.candidate_threads, columns=fused.kept_indices
        )
        predictor._evaluate_model = evaluate_model
        return predictor

    @property
    def n_candidates(self) -> int:
        return int(self.candidate_threads.size)

    def predict_runtimes(self, dims: Dict[str, int]) -> np.ndarray:
        """Predicted runtime per candidate thread count for one shape.

        Bit-identical to the object path's
        ``ThreadPredictor.predict_runtimes`` output.
        """
        return self.predict_runtimes_batch([dims])[0]

    def predict_runtimes_batch(
        self, dims_list: Sequence[Dict[str, int]]
    ) -> np.ndarray:
        """Predicted runtimes for many shapes in one fused pass.

        Returns a ``(len(dims_list), n_candidates)`` array matching the
        object path's ``predict_runtimes_batch`` bit for bit: the kept
        feature columns are written into the reusable grid, preprocessed by
        the two fused expressions, and evaluated by the compiled model
        kernel — one straight-line array program per batch.
        """
        grid = self._writer.write_dicts(dims_list)
        transformed = self._fused.transform_kept(grid)
        predictions = np.asarray(
            self._evaluate_model(transformed), dtype=float
        )
        return predictions.reshape(len(dims_list), self.n_candidates)
