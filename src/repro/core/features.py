"""Feature engineering for the runtime-prediction models (paper Table III).

The paper describes two feature sets, one for routines with three free
matrix dimensions (GEMM) and one for routines with two (SYMM, SYRK, SYR2K,
TRMM, TRSM).  Both are instances of one rule — raw dimensions, thread
count, all dimension products, memory footprint, and the per-thread variant
of every size term — which this module now derives from the routine's
:class:`~repro.routines.spec.RoutineSpec` via
:func:`repro.routines.spec.feature_layout`, so plugin routines with any
number of dimensions get a feature set for free.  For the builtin two- and
three-dimension routines the derived layout reproduces
:data:`TWO_DIM_FEATURES` / :data:`THREE_DIM_FEATURES` exactly, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.blas.api import parse_routine
from repro.blas.flops import memory_words
from repro.routines.spec import derive_footprint_terms, feature_layout

__all__ = [
    "THREE_DIM_FEATURES",
    "TWO_DIM_FEATURES",
    "feature_names",
    "compute_features",
    "feature_matrix_for_threads",
    "feature_matrix_grid",
    "build_feature_matrix",
    "ColumnProgram",
    "FeatureGridWriter",
]


#: Feature names for three-dimension routines (paper Table III, left column).
THREE_DIM_FEATURES: List[str] = [
    "m",
    "k",
    "n",
    "nt",
    "m*k",
    "m*n",
    "k*n",
    "m*k*n",
    "memory_footprint",
    "m/nt",
    "k/nt",
    "n/nt",
    "m*k/nt",
    "m*n/nt",
    "k*n/nt",
    "m*k*n/nt",
    "memory_footprint/nt",
]

#: Feature names for two-dimension routines (paper Table III, right column).
#: ``d1``/``d2`` stand for the routine's two free dimensions — (m, n) for
#: SYMM/TRMM/TRSM and (n, k) for SYRK/SYR2K.
TWO_DIM_FEATURES: List[str] = [
    "d1",
    "d2",
    "nt",
    "d1*d2",
    "memory_footprint",
    "d1/nt",
    "d2/nt",
    "d1*d2/nt",
    "memory_footprint/nt",
]


def feature_names(routine: str) -> List[str]:
    """Feature names for a routine key, derived from its spec."""
    _, _, spec = parse_routine(routine)
    return list(feature_layout(spec).names)


def compute_features(routine: str, dims: Dict[str, int], threads: int) -> np.ndarray:
    """Feature vector for one (problem shape, thread count) pair.

    Scalar reference implementation of the Table III features; the
    vectorised :func:`feature_matrix_grid` must stay element-for-element
    consistent with the values produced here.
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    _, _, spec = parse_routine(routine)
    dims = spec.dims_from_args(**dims)
    footprint = memory_words(routine, dims)
    nt = float(threads)

    layout = feature_layout(spec)
    raw = [float(dims[d]) for d in spec.dim_names]
    # Size bases in layout order: raw dims, then left-to-right products —
    # the exact association (e.g. ``(m * k) * n``) the legacy literal
    # expressions used — then the memory footprint.
    bases = []
    for subset in layout.subsets:
        value = raw[subset[0]]
        for index in subset[1:]:
            value = value * raw[index]
        bases.append(value)
    bases.append(footprint)
    values = []
    for kind, index in layout.ops:
        if kind == "nt":
            values.append(nt)
        elif kind == "base":
            values.append(bases[index])
        else:  # "pt": the per-thread variant of base ``index``
            values.append(bases[index] / nt)
    return np.asarray(values, dtype=np.float64)


def feature_matrix_for_threads(
    routine: str, dims: Dict[str, int], threads: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Vectorised feature matrix for one shape across many thread counts.

    This is the hot path of the runtime predictor (one row per candidate
    thread count).  It is the single-shape case of
    :func:`feature_matrix_grid`, which holds the one shared definition of
    the Table III feature blocks.
    """
    return feature_matrix_grid(routine, [dims], threads)


def feature_matrix_grid(
    routine: str,
    dims_list: Sequence[Dict[str, int]],
    threads: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Vectorised feature matrix for many shapes x many thread counts.

    Returns a ``(len(dims_list) * len(threads), n_features)`` matrix laid
    out shape-major: the first ``len(threads)`` rows belong to
    ``dims_list[0]``, the next block to ``dims_list[1]``, and so on — i.e.
    the vertical stack of :func:`feature_matrix_for_threads` over the
    shapes, built without any per-shape Python work.  This is the batch
    evaluation path of the runtime predictor and of model selection.
    """
    _, _, spec = parse_routine(routine)
    if len(dims_list) == 0:
        raise ValueError("dims_list must not be empty")
    normalized = [spec.dims_from_args(**dims) for dims in dims_list]
    nt = np.asarray(threads, dtype=np.float64)
    if nt.ndim != 1 or nt.size == 0:
        raise ValueError("threads must be a non-empty 1-D sequence")
    if np.any(nt < 1):
        raise ValueError("threads must be positive")

    n_shapes, n_threads = len(normalized), nt.size
    dim_cols = {
        name: np.asarray([dims[name] for dims in normalized], dtype=np.float64)[
            :, None
        ]
        for name in spec.dim_names
    }
    footprint = spec.memory_words(dim_cols)
    nt_row = nt[None, :]

    layout = feature_layout(spec)
    raw = [dim_cols[d] for d in spec.dim_names]
    bases = []
    for subset in layout.subsets:
        column = raw[subset[0]]
        for index in subset[1:]:
            column = column * raw[index]
        bases.append(column)
    bases.append(footprint)
    blocks = []
    for kind, index in layout.ops:
        if kind == "nt":
            blocks.append(nt_row)
        elif kind == "base":
            blocks.append(bases[index])
        else:
            blocks.append(bases[index] / nt_row)
    return np.column_stack(
        [np.broadcast_to(block, (n_shapes, n_threads)).ravel() for block in blocks]
    )


@dataclass(frozen=True)
class ColumnProgram:
    """Compact i64/f64 encoding of a writer's column recipe for the C kernel.

    Base ``b`` is the left-to-right sum of terms ``base_offsets[b] ..
    base_offsets[b+1]``; each term multiplies ``term_coef[t]`` by the dim
    values indexed by ``term_fac[t]`` (left to right, ``-1`` padded).
    Column ``c`` is the thread count (``col_kind == 0``), base
    ``col_base[c]`` (``1``), or that base divided by the thread count
    (``2``).  The native ``feature_fill`` kernel replays exactly these
    operations in this order, so the grid it fills is bit-identical to
    :meth:`FeatureGridWriter.write` — which
    :meth:`FeatureGridWriter.column_program` verifies numerically before
    ever handing a program out.
    """

    base_offsets: np.ndarray  # int64, (n_bases + 1,)
    term_coef: np.ndarray  # float64, (n_terms,)
    term_fac: np.ndarray  # int64, (n_terms, 3), -1 padded
    col_kind: np.ndarray  # int64, (n_columns,)
    col_base: np.ndarray  # int64, (n_columns,)

    @property
    def n_bases(self) -> int:
        return int(self.base_offsets.shape[0] - 1)

    @property
    def n_columns(self) -> int:
        return int(self.col_kind.shape[0])


#: Awkward float dimension values for the bitwise program probe — chosen so
#: any reassociation of the products or footprint terms changes rounding.
#: The first ``n_dims`` columns are used; specs with more dimensions than
#: probe columns get no native program (NumPy fallback).
_PROBE_VALUES = np.array(
    [
        [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        [3.0, 5.0, 7.0, 11.0, 13.0, 17.0, 19.0, 23.0],
        [12.7, 901.3, 64.1, 7.77, 513.9, 2.25, 99.01, 4.5],
        [8192.0, 1.0, 40000.0, 3.0, 17.0, 257.0, 6.0, 1025.0],
        [1e-3, 1e6, 3.1415, 2.718, 1e-2, 1e4, 0.577, 144.0],
        [641.0, 1283.0, 757.0, 389.0, 211.0, 97.0, 53.0, 29.0],
    ],
    dtype=np.float64,
)


class FeatureGridWriter:
    """Preallocated, reusable writer for the Table III feature grid.

    Built once per (routine, candidate thread counts) pair, the writer owns
    a ``(capacity_shapes, n_threads, n_columns)`` float64 buffer and fills
    it directly from dimension arrays — no per-call feature dicts, lists or
    column stacking.  Successive calls reuse (and geometrically grow) the
    same buffer, so a steady-state ``plan()`` allocates nothing beyond the
    handful of base-column temporaries.

    ``columns`` restricts the writer to a subset of the feature set (the
    compiled predictor passes the correlation filter's kept indices, so
    dropped features are never even computed).  Every written value is
    bit-identical to the corresponding entry of :func:`feature_matrix_grid`.
    """

    def __init__(
        self,
        routine: str,
        threads: Sequence[int] | np.ndarray,
        columns: Sequence[int] | np.ndarray | None = None,
    ):
        _, _, spec = parse_routine(routine)
        nt = np.asarray(threads, dtype=np.float64)
        if nt.ndim != 1 or nt.size == 0:
            raise ValueError("threads must be a non-empty 1-D sequence")
        if np.any(nt < 1):
            raise ValueError("threads must be positive")
        self.routine = routine
        self.spec = spec
        self.nt = nt
        self._layout = feature_layout(spec)
        ops = self._layout.ops
        if columns is None:
            columns = np.arange(len(ops), dtype=np.intp)
        else:
            columns = np.asarray(columns, dtype=np.intp)
            if columns.size and (
                columns.min() < 0 or columns.max() >= len(ops)
            ):
                raise ValueError(
                    f"columns out of range for the {len(ops)}-feature set"
                )
        self.columns = columns
        self._ops = [ops[c] for c in columns]
        self._capacity = 0
        self._buffer = None
        self._dims_scratch = None
        self._program_cache: object = "unset"
        self._reserve(1)

    @property
    def n_threads(self) -> int:
        return int(self.nt.size)

    @property
    def n_columns(self) -> int:
        return int(self.columns.size)

    def _reserve(self, n_shapes: int) -> None:
        if n_shapes <= self._capacity:
            return
        capacity = max(n_shapes, 2 * self._capacity, 1)
        self._buffer = np.empty(
            (capacity, self.nt.size, self.columns.size), dtype=np.float64
        )
        self._dims_scratch = np.empty(
            (capacity, self.spec.n_dims), dtype=np.float64
        )
        self._capacity = capacity

    def _bases(self, dim_values: np.ndarray) -> tuple:
        spec = self.spec
        raw = [dim_values[:, j] for j in range(spec.n_dims)]
        bases = []
        for subset in self._layout.subsets:
            column = raw[subset[0]]
            for index in subset[1:]:
                column = column * raw[index]
            bases.append(column)
        bases.append(spec.memory_words(dict(zip(spec.dim_names, raw))))
        return tuple(bases)

    def write(self, dim_values: np.ndarray) -> np.ndarray:
        """Fill the grid from a ``(n_shapes, n_dims)`` dimension array.

        Returns a ``(n_shapes * n_threads, n_columns)`` view of the internal
        buffer, laid out shape-major exactly like
        :func:`feature_matrix_grid`.  The view is only valid until the next
        ``write`` call.
        """
        dim_values = np.asarray(dim_values, dtype=np.float64)
        n_shapes = dim_values.shape[0]
        if n_shapes == 0:
            raise ValueError("dim_values must hold at least one shape")
        self._reserve(n_shapes)
        grid = self._buffer[:n_shapes]
        bases = self._bases(dim_values)
        nt = self.nt
        for j, (kind, index) in enumerate(self._ops):
            if kind == "nt":
                grid[:, :, j] = nt
            elif kind == "base":
                grid[:, :, j] = bases[index][:, None]
            else:  # "pt": the per-thread variant of base ``index``
                grid[:, :, j] = bases[index][:, None] / nt
        return grid.reshape(n_shapes * nt.size, self.columns.size)

    def load_dims(self, dims_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Validate dimension dicts into the scratch array and return it.

        Dimension validation matches :func:`feature_matrix_grid`
        (``spec.dims_from_args``), so invalid shapes raise the same errors.
        The returned ``(n_shapes, n_dims)`` float64 view (valid until the
        next call) feeds either :meth:`write` or the native fused kernel.
        """
        n_shapes = len(dims_list)
        if n_shapes == 0:
            raise ValueError("dims_list must not be empty")
        self._reserve(n_shapes)
        values = self._dims_scratch
        dim_names = self.spec.dim_names
        n_dims = len(dim_names)
        for i, dims in enumerate(dims_list):
            # Fast path for already-normalized dicts (exact keys, positive
            # ints) — the serving engine always sends these.  Anything else
            # takes the full dims_from_args validation for its exact errors.
            if len(dims) == n_dims:
                ok = True
                for j, name in enumerate(dim_names):
                    value = dims.get(name)
                    if type(value) is not int or value < 1:
                        ok = False
                        break
                    values[i, j] = value
                if ok:
                    continue
            normalized = self.spec.dims_from_args(**dims)
            for j, name in enumerate(dim_names):
                values[i, j] = normalized[name]
        return values[:n_shapes]

    def write_dicts(self, dims_list: Sequence[Dict[str, int]]) -> np.ndarray:
        """Validate dimension dicts and fill the grid from them."""
        return self.write(self.load_dims(dims_list))

    def grid_view(self, n_shapes: int) -> np.ndarray:
        """Flat ``(n_shapes * n_threads, n_columns)`` view of the buffer.

        For the native fused path, which fills the grid in C:
        :meth:`load_dims` (which reserves capacity) must have been called
        with at least ``n_shapes`` shapes first.  Same lifetime rules as
        the view returned by :meth:`write`.
        """
        if n_shapes > self._capacity:
            raise ValueError(
                f"grid_view({n_shapes}) exceeds reserved capacity "
                f"{self._capacity}; call load_dims first"
            )
        return self._buffer[:n_shapes].reshape(
            n_shapes * self.nt.size, self.columns.size
        )

    def column_program(self) -> ColumnProgram | None:
        """The writer's recipe as a :class:`ColumnProgram`, or ``None``.

        ``None`` means the native fill must not be used: either the
        routine's footprint has no term encoding, or the probe below found
        the encoded program not bit-identical to :meth:`write`'s NumPy
        expressions (e.g. a future ``memory_words`` whose operation order
        the table no longer mirrors).  Memoised per writer.
        """
        if self._program_cache == "unset":
            self._program_cache = self._build_program()
        return self._program_cache

    def _build_program(self) -> ColumnProgram | None:
        footprint_terms = derive_footprint_terms(self.spec)
        if footprint_terms is None:
            return None
        base_terms = [
            ((1.0, subset),) for subset in self._layout.subsets
        ]
        base_terms.append(footprint_terms)
        # The native kernel multiplies at most three dim factors per term;
        # wider products (4+-dimension plugins, higher-order footprints)
        # have no encoding and take the NumPy path.
        for terms in base_terms:
            for _, factors in terms:
                if len(factors) > 3:
                    return None
        offsets = [0]
        coefs: list[float] = []
        facs: list[tuple[int, int, int]] = []
        for terms in base_terms:
            for coef, factors in terms:
                coefs.append(coef)
                padded = tuple(factors) + (-1,) * (3 - len(factors))
                facs.append(padded)
            offsets.append(len(coefs))
        col_kind = []
        col_base = []
        for kind, index in self._ops:
            if kind == "nt":
                col_kind.append(0)
                col_base.append(0)
            elif kind == "base":
                col_kind.append(1)
                col_base.append(index)
            else:
                col_kind.append(2)
                col_base.append(index)
        program = ColumnProgram(
            base_offsets=np.ascontiguousarray(offsets, dtype=np.int64),
            term_coef=np.ascontiguousarray(coefs, dtype=np.float64),
            term_fac=np.ascontiguousarray(facs, dtype=np.int64).reshape(
                len(facs), 3
            ),
            col_kind=np.ascontiguousarray(col_kind, dtype=np.int64),
            col_base=np.ascontiguousarray(col_base, dtype=np.int64),
        )
        if not self._program_matches(program):
            return None
        return program

    def _program_matches(self, program: ColumnProgram) -> bool:
        """Bitwise-verify the program against :meth:`_bases`.

        Replays the term program scalar-by-scalar in the C kernel's exact
        evaluation order on awkward float dims (where any reassociation
        would change the rounding) and compares against the vectorised
        NumPy bases.
        """
        if self.spec.n_dims > _PROBE_VALUES.shape[1]:
            return False
        probe = _PROBE_VALUES[:, : self.spec.n_dims]
        expected = self._bases(probe)
        if len(expected) != program.n_bases:
            return False
        for s in range(probe.shape[0]):
            d = probe[s]
            for b in range(program.n_bases):
                acc = 0.0
                start = int(program.base_offsets[b])
                stop = int(program.base_offsets[b + 1])
                for t in range(start, stop):
                    v = float(program.term_coef[t])
                    for q in range(3):
                        fac = int(program.term_fac[t, q])
                        if fac < 0:
                            break
                        v = v * float(d[fac])
                    acc = v if t == start else acc + v
                reference = float(expected[b][s])
                if acc != reference and not (
                    np.isnan(acc) and np.isnan(reference)
                ):
                    return False
        return True


def build_feature_matrix(
    routine: str,
    dims_list: Sequence[Dict[str, int]],
    threads: Sequence[int],
) -> np.ndarray:
    """Feature matrix for aligned sequences of shapes and thread counts.

    ``threads`` may be a single integer (broadcast over all shapes) or a
    sequence aligned with ``dims_list``.
    """
    if isinstance(threads, (int, np.integer)):
        threads = [int(threads)] * len(dims_list)
    if len(threads) != len(dims_list):
        raise ValueError(
            f"dims_list and threads have different lengths: "
            f"{len(dims_list)} vs {len(threads)}"
        )
    if not dims_list:
        raise ValueError("dims_list must not be empty")
    rows = [
        compute_features(routine, dims, int(nt))
        for dims, nt in zip(dims_list, threads)
    ]
    return np.vstack(rows)
