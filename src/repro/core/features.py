"""Feature engineering for the runtime-prediction models (paper Table III).

Two feature sets exist, one for routines with three free matrix dimensions
(GEMM) and one for routines with two (SYMM, SYRK, SYR2K, TRMM, TRSM).  Both
combine the raw dimensions, pairwise/cubic products (operand sizes and FLOP
count), the memory footprint, the thread count and the per-thread variants
of each size term.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.blas.api import parse_routine
from repro.blas.flops import memory_words

__all__ = [
    "THREE_DIM_FEATURES",
    "TWO_DIM_FEATURES",
    "feature_names",
    "compute_features",
    "feature_matrix_for_threads",
    "feature_matrix_grid",
    "build_feature_matrix",
]


#: Feature names for three-dimension routines (paper Table III, left column).
THREE_DIM_FEATURES: List[str] = [
    "m",
    "k",
    "n",
    "nt",
    "m*k",
    "m*n",
    "k*n",
    "m*k*n",
    "memory_footprint",
    "m/nt",
    "k/nt",
    "n/nt",
    "m*k/nt",
    "m*n/nt",
    "k*n/nt",
    "m*k*n/nt",
    "memory_footprint/nt",
]

#: Feature names for two-dimension routines (paper Table III, right column).
#: ``d1``/``d2`` stand for the routine's two free dimensions — (m, n) for
#: SYMM/TRMM/TRSM and (n, k) for SYRK/SYR2K.
TWO_DIM_FEATURES: List[str] = [
    "d1",
    "d2",
    "nt",
    "d1*d2",
    "memory_footprint",
    "d1/nt",
    "d2/nt",
    "d1*d2/nt",
    "memory_footprint/nt",
]


def feature_names(routine: str) -> List[str]:
    """Feature names for a routine key (three- or two-dimension set)."""
    _, _, spec = parse_routine(routine)
    if spec.n_dims == 3:
        return list(THREE_DIM_FEATURES)
    return list(TWO_DIM_FEATURES)


def compute_features(routine: str, dims: Dict[str, int], threads: int) -> np.ndarray:
    """Feature vector for one (problem shape, thread count) pair.

    Scalar reference implementation of the Table III features; the
    vectorised :func:`feature_matrix_grid` must stay element-for-element
    consistent with the values produced here.
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    _, _, spec = parse_routine(routine)
    dims = spec.dims_from_args(**dims)
    footprint = memory_words(routine, dims)
    nt = float(threads)

    if spec.n_dims == 3:
        m, k, n = (float(dims[d]) for d in ("m", "k", "n"))
        values = [
            m,
            k,
            n,
            nt,
            m * k,
            m * n,
            k * n,
            m * k * n,
            footprint,
            m / nt,
            k / nt,
            n / nt,
            m * k / nt,
            m * n / nt,
            k * n / nt,
            m * k * n / nt,
            footprint / nt,
        ]
    else:
        d1, d2 = (float(dims[d]) for d in spec.dim_names)
        values = [
            d1,
            d2,
            nt,
            d1 * d2,
            footprint,
            d1 / nt,
            d2 / nt,
            d1 * d2 / nt,
            footprint / nt,
        ]
    return np.asarray(values, dtype=np.float64)


def feature_matrix_for_threads(
    routine: str, dims: Dict[str, int], threads: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Vectorised feature matrix for one shape across many thread counts.

    This is the hot path of the runtime predictor (one row per candidate
    thread count).  It is the single-shape case of
    :func:`feature_matrix_grid`, which holds the one shared definition of
    the Table III feature blocks.
    """
    return feature_matrix_grid(routine, [dims], threads)


def feature_matrix_grid(
    routine: str,
    dims_list: Sequence[Dict[str, int]],
    threads: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Vectorised feature matrix for many shapes x many thread counts.

    Returns a ``(len(dims_list) * len(threads), n_features)`` matrix laid
    out shape-major: the first ``len(threads)`` rows belong to
    ``dims_list[0]``, the next block to ``dims_list[1]``, and so on — i.e.
    the vertical stack of :func:`feature_matrix_for_threads` over the
    shapes, built without any per-shape Python work.  This is the batch
    evaluation path of the runtime predictor and of model selection.
    """
    _, _, spec = parse_routine(routine)
    if len(dims_list) == 0:
        raise ValueError("dims_list must not be empty")
    normalized = [spec.dims_from_args(**dims) for dims in dims_list]
    nt = np.asarray(threads, dtype=np.float64)
    if nt.ndim != 1 or nt.size == 0:
        raise ValueError("threads must be a non-empty 1-D sequence")
    if np.any(nt < 1):
        raise ValueError("threads must be positive")

    n_shapes, n_threads = len(normalized), nt.size
    dim_cols = {
        name: np.asarray([dims[name] for dims in normalized], dtype=np.float64)[
            :, None
        ]
        for name in spec.dim_names
    }
    footprint = spec.memory_words(dim_cols)
    nt_row = nt[None, :]

    if spec.n_dims == 3:
        m, k, n = (dim_cols[d] for d in ("m", "k", "n"))
        blocks = [
            m,
            k,
            n,
            nt_row,
            m * k,
            m * n,
            k * n,
            m * k * n,
            footprint,
            m / nt_row,
            k / nt_row,
            n / nt_row,
            m * k / nt_row,
            m * n / nt_row,
            k * n / nt_row,
            m * k * n / nt_row,
            footprint / nt_row,
        ]
    else:
        d1, d2 = (dim_cols[d] for d in spec.dim_names)
        blocks = [
            d1,
            d2,
            nt_row,
            d1 * d2,
            footprint,
            d1 / nt_row,
            d2 / nt_row,
            d1 * d2 / nt_row,
            footprint / nt_row,
        ]
    return np.column_stack(
        [np.broadcast_to(block, (n_shapes, n_threads)).ravel() for block in blocks]
    )


def build_feature_matrix(
    routine: str,
    dims_list: Sequence[Dict[str, int]],
    threads: Sequence[int],
) -> np.ndarray:
    """Feature matrix for aligned sequences of shapes and thread counts.

    ``threads`` may be a single integer (broadcast over all shapes) or a
    sequence aligned with ``dims_list``.
    """
    if isinstance(threads, (int, np.integer)):
        threads = [int(threads)] * len(dims_list)
    if len(threads) != len(dims_list):
        raise ValueError(
            f"dims_list and threads have different lengths: "
            f"{len(dims_list)} vs {len(threads)}"
        )
    if not dims_list:
        raise ValueError("dims_list must not be empty")
    rows = [
        compute_features(routine, dims, int(nt))
        for dims, nt in zip(dims_list, threads)
    ]
    return np.vstack(rows)
