"""The ADSALA installation workflow (paper Fig. 1a).

:func:`install_adsala` runs, for every requested BLAS L3 routine on the
requested platform:

1. domain sampling + timing-data gathering (:mod:`repro.core.gather`),
2. preprocessing, candidate fitting (optionally with hyper-parameter
   tuning) and model selection by estimated speedup
   (:mod:`repro.core.selection`),
3. construction of the production :class:`~repro.core.predictor.ThreadPredictor`
   for the winning model,

and returns an :class:`InstallationBundle` — the in-memory equivalent of the
"config file + trained model" pair the paper's installer writes to disk
(persistence to disk lives in :mod:`repro.core.persistence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.blas.api import ROUTINE_KEYS, parse_routine
from repro.core.dataset import TimingDataset
from repro.core.gather import DataGatherer
from repro.core.predictor import ThreadPredictor
from repro.core.selection import SelectionReport, evaluate_candidates
from repro.machine.simulator import TimingSimulator
from repro.machine.topology import MachineTopology

__all__ = ["RoutineInstallation", "InstallationBundle", "install_adsala"]


@dataclass
class RoutineInstallation:
    """Everything the runtime needs for one routine."""

    routine: str
    predictor: ThreadPredictor
    selection: SelectionReport
    dataset: TimingDataset
    test_shapes: List[Dict[str, int]] = field(default_factory=list)

    @property
    def best_model_name(self) -> str:
        return self.selection.best_model_name


@dataclass
class InstallationBundle:
    """Result of installing ADSALA on one platform."""

    platform: MachineTopology
    simulator: TimingSimulator
    routines: Dict[str, RoutineInstallation] = field(default_factory=dict)
    candidate_names: List[str] = field(default_factory=list)
    settings: Dict[str, object] = field(default_factory=dict)

    def predictor(self, routine: str) -> ThreadPredictor:
        key = routine.lower()
        if key not in self.routines:
            raise KeyError(
                f"Routine {routine!r} was not installed; available: "
                f"{sorted(self.routines)}"
            )
        return self.routines[key].predictor

    def best_models(self) -> Dict[str, str]:
        """Mapping routine -> winning model name (paper Tables IV/V)."""
        return {
            routine: installation.best_model_name
            for routine, installation in sorted(self.routines.items())
        }

    @property
    def installed_routines(self) -> List[str]:
        return sorted(self.routines)


def install_adsala(
    platform: MachineTopology,
    routines: Sequence[str] | None = None,
    n_samples: int = 80,
    threads_per_shape: int = 14,
    n_test_shapes: int = 30,
    candidate_models: Sequence[str] | None = None,
    tune_hyperparameters: bool = False,
    use_yeo_johnson: bool = True,
    eval_time_mode: str = "native",
    memory_cap_bytes: float = 500e6,
    max_dim: int | None = None,
    min_dim: int = 32,
    sampling_scale: str = "sqrt",
    scrambled_sampling: bool = True,
    noise_level: float = 0.04,
    seed: int = 0,
    simulator: TimingSimulator | None = None,
) -> InstallationBundle:
    """Install ADSALA for a set of routines on a (simulated) platform.

    Parameters mirror the knobs of the paper's installer; the defaults are a
    scaled-down campaign (80 shapes x 14 thread counts ~ 1100 rows per
    routine, matching the paper's 1000-1200) that completes in seconds per
    routine thanks to the analytic timing simulator.

    Returns
    -------
    InstallationBundle
        Per-routine predictors plus the selection reports backing the
        paper's Tables IV-VI.
    """
    if routines is None:
        routines = list(ROUTINE_KEYS)
    if not routines:
        raise ValueError("routines must not be empty")
    normalized_routines = []
    for routine in routines:
        prefix, base, _ = parse_routine(routine)
        normalized_routines.append(prefix + base)

    if simulator is None:
        simulator = TimingSimulator(platform, seed=seed, noise_level=noise_level)
    elif simulator.platform is not platform:
        raise ValueError("simulator platform does not match the requested platform")

    bundle = InstallationBundle(
        platform=platform,
        simulator=simulator,
        candidate_names=list(candidate_models) if candidate_models else [],
        settings={
            "n_samples": n_samples,
            "threads_per_shape": threads_per_shape,
            "n_test_shapes": n_test_shapes,
            "tune_hyperparameters": tune_hyperparameters,
            "use_yeo_johnson": use_yeo_johnson,
            "eval_time_mode": eval_time_mode,
            "memory_cap_bytes": memory_cap_bytes,
            "max_dim": max_dim,
            "min_dim": min_dim,
            "sampling_scale": sampling_scale,
            "scrambled_sampling": scrambled_sampling,
            "noise_level": noise_level,
            "seed": seed,
        },
    )

    for routine in normalized_routines:
        gatherer = DataGatherer(
            simulator=simulator,
            routine=routine,
            n_shapes=n_samples,
            threads_per_shape=threads_per_shape,
            memory_cap_bytes=memory_cap_bytes,
            min_dim=min_dim,
            max_dim=max_dim,
            scale=sampling_scale,
            scrambled=scrambled_sampling,
            seed=seed,
        )
        dataset = gatherer.gather()
        test_shapes = gatherer.gather_test_set(n_test_shapes)

        report = evaluate_candidates(
            dataset=dataset,
            simulator=simulator,
            test_shapes=test_shapes,
            candidate_names=candidate_models,
            tune_hyperparameters=tune_hyperparameters,
            use_yeo_johnson=use_yeo_johnson,
            eval_time_mode=eval_time_mode,
            seed=seed,
        )

        best_model = report._fitted_models[report.best_model_name]  # type: ignore[attr-defined]
        pipeline = report._pipeline  # type: ignore[attr-defined]
        predictor = ThreadPredictor(
            routine=routine,
            pipeline=pipeline,
            model=best_model,
            candidate_threads=platform.candidate_thread_counts(),
            model_name=report.best_model_name,
        )
        bundle.routines[routine] = RoutineInstallation(
            routine=routine,
            predictor=predictor,
            selection=report,
            dataset=dataset,
            test_shapes=test_shapes,
        )

    if not bundle.candidate_names:
        bundle.candidate_names = sorted(
            {e.model_name for r in bundle.routines.values() for e in r.selection.evaluations}
        )
    return bundle
