"""The ADSALA installation workflow (paper Fig. 1a).

:func:`install_adsala` runs, for every requested BLAS L3 routine on the
requested platform:

1. domain sampling + timing-data gathering (:mod:`repro.core.gather`),
2. preprocessing, candidate fitting (optionally with hyper-parameter
   tuning) and model selection by estimated speedup
   (:mod:`repro.core.selection`),
3. construction of the production :class:`~repro.core.predictor.ThreadPredictor`
   for the winning model,

and returns an :class:`InstallationBundle` — the in-memory equivalent of the
"config file + trained model" pair the paper's installer writes to disk
(persistence to disk lives in :mod:`repro.core.persistence`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.blas.api import ROUTINE_KEYS, parse_routine
from repro.core.dataset import TimingDataset
from repro.core.gather import DataGatherer
from repro.core.predictor import ThreadPredictor
from repro.core.selection import SelectionReport, evaluate_candidates
from repro.machine.simulator import TimingSimulator
from repro.machine.topology import MachineTopology
from repro.parallel import map_parallel, resolve_n_jobs

__all__ = [
    "RoutineInstallation",
    "InstallationBundle",
    "fit_routine_installation",
    "install_adsala",
]


@dataclass
class RoutineInstallation:
    """Everything the runtime needs for one routine."""

    routine: str
    predictor: ThreadPredictor
    selection: SelectionReport
    dataset: TimingDataset
    test_shapes: List[Dict[str, int]] = field(default_factory=list)

    @property
    def best_model_name(self) -> str:
        return self.selection.best_model_name


@dataclass
class InstallationBundle:
    """Result of installing ADSALA on one platform."""

    platform: MachineTopology
    simulator: TimingSimulator
    routines: Dict[str, RoutineInstallation] = field(default_factory=dict)
    candidate_names: List[str] = field(default_factory=list)
    settings: Dict[str, object] = field(default_factory=dict)

    def predictor(self, routine: str) -> ThreadPredictor:
        key = routine.lower()
        if key not in self.routines:
            raise KeyError(
                f"Routine {routine!r} was not installed; available: "
                f"{sorted(self.routines)}"
            )
        return self.routines[key].predictor

    def best_models(self) -> Dict[str, str]:
        """Mapping routine -> winning model name (paper Tables IV/V)."""
        return {
            routine: installation.best_model_name
            for routine, installation in sorted(self.routines.items())
        }

    @property
    def installed_routines(self) -> List[str]:
        return sorted(self.routines)


def fit_routine_installation(
    routine: str,
    dataset: TimingDataset,
    test_shapes: List[Dict[str, int]],
    simulator: TimingSimulator,
    candidate_models: Sequence[str] | None = None,
    tune_hyperparameters: bool = False,
    use_yeo_johnson: bool = True,
    eval_time_mode: str = "native",
    seed: int = 0,
    n_jobs: int | None = 1,
    parallel_backend: str = "process",
    use_batch_timing: bool = True,
) -> RoutineInstallation:
    """Model-select and fit one routine from an already-gathered dataset.

    The second half of an installation campaign (candidate evaluation,
    selection by estimated speedup, predictor construction), shared by
    :func:`install_adsala` and the adaptive layer's drift-triggered
    retraining, which gathers its dataset from observed traffic instead of
    the static training grid.
    """
    report = evaluate_candidates(
        dataset=dataset,
        simulator=simulator,
        test_shapes=test_shapes,
        candidate_names=candidate_models,
        tune_hyperparameters=tune_hyperparameters,
        use_yeo_johnson=use_yeo_johnson,
        eval_time_mode=eval_time_mode,
        seed=seed,
        n_jobs=n_jobs,
        parallel_backend=parallel_backend,
        use_batch_timing=use_batch_timing,
    )
    best_model = report._fitted_models[report.best_model_name]  # type: ignore[attr-defined]
    pipeline = report._pipeline  # type: ignore[attr-defined]
    predictor = ThreadPredictor(
        routine=routine,
        pipeline=pipeline,
        model=best_model,
        candidate_threads=simulator.platform.candidate_thread_counts(),
        model_name=report.best_model_name,
    )
    return RoutineInstallation(
        routine=routine,
        predictor=predictor,
        selection=report,
        dataset=dataset,
        test_shapes=test_shapes,
    )


def _install_one_routine(payload: dict) -> tuple[RoutineInstallation, int]:
    """Run the full campaign for one routine (a :func:`map_parallel` worker).

    Returns the installation plus the number of simulator evaluations it
    consumed, so a parallel caller can fold the worker simulator's counter
    back into the parent's.
    """
    routine = payload["routine"]
    simulator = payload["simulator"]
    seed = payload["seed"]
    use_batch_timing = payload["use_batch_timing"]
    evaluations_before = simulator.n_evaluations
    gatherer = DataGatherer(
        simulator=simulator,
        routine=routine,
        n_shapes=payload["n_samples"],
        threads_per_shape=payload["threads_per_shape"],
        memory_cap_bytes=payload["memory_cap_bytes"],
        min_dim=payload["min_dim"],
        max_dim=payload["max_dim"],
        scale=payload["sampling_scale"],
        scrambled=payload["scrambled_sampling"],
        seed=seed,
    )
    dataset = gatherer.gather(use_batch=use_batch_timing)
    test_shapes = gatherer.gather_test_set(payload["n_test_shapes"])

    installation = fit_routine_installation(
        routine=routine,
        dataset=dataset,
        test_shapes=test_shapes,
        simulator=simulator,
        candidate_models=payload["candidate_models"],
        tune_hyperparameters=payload["tune_hyperparameters"],
        use_yeo_johnson=payload["use_yeo_johnson"],
        eval_time_mode=payload["eval_time_mode"],
        seed=seed,
        n_jobs=payload["candidate_n_jobs"],
        parallel_backend=payload["parallel_backend"],
        use_batch_timing=use_batch_timing,
    )
    return installation, simulator.n_evaluations - evaluations_before


def install_adsala(
    platform: MachineTopology,
    routines: Sequence[str] | None = None,
    n_samples: int = 80,
    threads_per_shape: int = 14,
    n_test_shapes: int = 30,
    candidate_models: Sequence[str] | None = None,
    tune_hyperparameters: bool = False,
    use_yeo_johnson: bool = True,
    eval_time_mode: str = "native",
    memory_cap_bytes: float = 500e6,
    max_dim: int | None = None,
    min_dim: int = 32,
    sampling_scale: str = "sqrt",
    scrambled_sampling: bool = True,
    noise_level: float = 0.04,
    seed: int = 0,
    simulator: TimingSimulator | None = None,
    n_jobs: int | None = None,
    parallel_backend: str = "process",
    use_batch_timing: bool = True,
) -> InstallationBundle:
    """Install ADSALA for a set of routines on a (simulated) platform.

    Parameters mirror the knobs of the paper's installer; the defaults are a
    scaled-down campaign (80 shapes x 14 thread counts ~ 1100 rows per
    routine, matching the paper's 1000-1200) that completes in seconds per
    routine thanks to the analytic timing simulator.

    ``n_jobs`` fans the per-routine campaigns out over a worker pool
    (``None`` reads ``$ADSALA_JOBS``, default serial); when a single routine
    is requested the fan-out happens per candidate model instead.  Every
    seed flows through the payloads explicitly, so the resulting bundle is
    bit-identical to the serial one — the only observable difference is
    wall-clock time.  ``use_batch_timing=False`` selects the original
    scalar simulator/per-shape evaluation paths (kept as the reference for
    ``benchmarks/bench_install_scaling.py``).

    Returns
    -------
    InstallationBundle
        Per-routine predictors plus the selection reports backing the
        paper's Tables IV-VI.
    """
    if routines is None:
        routines = list(ROUTINE_KEYS)
    if not routines:
        raise ValueError("routines must not be empty")
    normalized_routines = []
    for routine in routines:
        prefix, base, _ = parse_routine(routine)
        normalized_routines.append(prefix + base)

    if simulator is None:
        simulator = TimingSimulator(platform, seed=seed, noise_level=noise_level)
    elif simulator.platform is not platform:
        raise ValueError("simulator platform does not match the requested platform")

    n_jobs = resolve_n_jobs(n_jobs)
    bundle = InstallationBundle(
        platform=platform,
        simulator=simulator,
        candidate_names=list(candidate_models) if candidate_models else [],
        settings={
            "n_samples": n_samples,
            "threads_per_shape": threads_per_shape,
            "n_test_shapes": n_test_shapes,
            "tune_hyperparameters": tune_hyperparameters,
            "use_yeo_johnson": use_yeo_johnson,
            "eval_time_mode": eval_time_mode,
            "memory_cap_bytes": memory_cap_bytes,
            "max_dim": max_dim,
            "min_dim": min_dim,
            "sampling_scale": sampling_scale,
            "scrambled_sampling": scrambled_sampling,
            "noise_level": noise_level,
            "seed": seed,
            "n_jobs": n_jobs,
            "use_batch_timing": use_batch_timing,
        },
    )

    # With several routines the fan-out happens per routine; with a single
    # routine the worker budget is passed down to the per-candidate fan-out
    # inside evaluate_candidates instead.
    candidate_n_jobs = n_jobs if len(normalized_routines) == 1 else 1
    n_workers = min(n_jobs, len(normalized_routines))
    pooled = n_workers > 1 and parallel_backend != "serial"
    payloads = [
        {
            "routine": routine,
            # Pooled workers get private simulator copies (the process
            # backend would fork its own; the thread backend would
            # otherwise race on the shared evaluation counter).
            "simulator": copy.deepcopy(simulator) if pooled else simulator,
            "n_samples": n_samples,
            "threads_per_shape": threads_per_shape,
            "n_test_shapes": n_test_shapes,
            "candidate_models": candidate_models,
            "tune_hyperparameters": tune_hyperparameters,
            "use_yeo_johnson": use_yeo_johnson,
            "eval_time_mode": eval_time_mode,
            "memory_cap_bytes": memory_cap_bytes,
            "max_dim": max_dim,
            "min_dim": min_dim,
            "sampling_scale": sampling_scale,
            "scrambled_sampling": scrambled_sampling,
            "seed": seed,
            "use_batch_timing": use_batch_timing,
            "candidate_n_jobs": candidate_n_jobs,
            "parallel_backend": parallel_backend,
        }
        for routine in normalized_routines
    ]
    if pooled:
        results = map_parallel(
            _install_one_routine, payloads, n_jobs=n_workers, backend=parallel_backend
        )
        # Worker simulators are private copies; fold their evaluation
        # counters back so the parallel bundle matches the serial one.
        simulator.n_evaluations += sum(delta for _, delta in results)
    else:
        results = [_install_one_routine(payload) for payload in payloads]

    for installation, _ in results:
        bundle.routines[installation.routine] = installation

    if not bundle.candidate_names:
        bundle.candidate_names = sorted(
            {e.model_name for r in bundle.routines.values() for e in r.selection.evaluations}
        )
    return bundle
