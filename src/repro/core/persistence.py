"""Persistence of installation bundles (paper Fig. 1: saved config + model).

The paper's installer writes two artefacts per routine: a preprocessing
configuration file and the trained, production-ready model.  Here the bundle
is written to a directory containing

* ``bundle.json`` — the *manifest*: schema version, bundle version, platform
  name, installer settings and per-routine metadata (winning model name,
  candidate thread counts, preprocessing config, selection summary, plus a
  SHA-256 checksum of the serialized model),
* ``<routine>.model.pkl`` — the pickled fitted model for each routine.

The split mirrors the paper's design: the JSON config is human-readable and
library-agnostic, the model file is opaque.

Manifest schema
---------------
``schema_version`` is the on-disk format revision (currently
:data:`SCHEMA_VERSION`); ``bundle_version`` is a user-chosen monotonically
increasing version of the *contents*, which the serving-layer
:class:`~repro.serving.registry.ModelRegistry` uses to keep several bundle
versions of one platform side by side.  Schema history:

* **1** — the original seed format (``format_version`` key, no checksums).
  Still loadable; missing optional keys (``selection``, ``dataset``,
  ``test_shapes``, ``settings``) fall back to empty defaults.
* **2** — adds ``schema_version``, ``bundle_version`` and a per-routine
  ``checksum`` over the model file, verified before unpickling.
* **3** — adds per-routine ``plugin`` provenance (name/version/source of the
  :class:`~repro.routines.plugin.RoutinePlugin` that provided the routine).
  Loading a bundle whose plugin is not registered in the current process
  fails with a :class:`BundleFormatError` naming the missing plugin; v1/v2
  bundles (builtin BLAS routines only) still load, and ``adsala bundle
  migrate`` stamps the provenance in place.

Structural problems (unknown schema, missing model file, checksum mismatch,
corrupt pickle) raise :class:`BundleFormatError` with a human-readable
message instead of surfacing a pickle traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict

from repro.core.install import InstallationBundle, RoutineInstallation
from repro.core.dataset import TimingDataset
from repro.core.predictor import ThreadPredictor
from repro.core.selection import CandidateEvaluation, SelectionReport
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator
from repro.machine.topology import MachineTopology, apply_calibration
from repro.routines.catalog import UnknownRoutineError, get_catalog

__all__ = [
    "SCHEMA_VERSION",
    "BundleFormatError",
    "save_bundle",
    "load_bundle",
    "read_manifest",
    "write_manifest",
    "write_routine_model",
    "load_routine",
    "verify_bundle",
    "migrate_manifest",
    "manifest_fingerprint",
    "simulator_from_settings",
]

_BUNDLE_FILE = "bundle.json"

#: Current on-disk manifest schema revision.
SCHEMA_VERSION = 3


class BundleFormatError(RuntimeError):
    """A bundle directory is structurally invalid (schema, checksum, pickle)."""


def write_manifest(directory: str | Path, manifest: dict) -> None:
    """Write ``bundle.json`` atomically (temp file + rename).

    A registry may hot-reload the directory at any moment; the rename
    guarantees readers see either the old or the new manifest, never a
    truncated intermediate.  The manifest file is the *switch point* of
    every bundle mutation: writers (installer, :class:`~repro.adaptive.promote.BundlePromoter`)
    stage new model files under fresh names first and only then swap the
    manifest, so a concurrent reload observes a fully consistent bundle on
    either side of the rename.
    """
    directory = Path(directory)
    target = directory / _BUNDLE_FILE
    tmp = target.with_suffix(".json.tmp")
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=2)
    os.replace(tmp, target)


_write_manifest = write_manifest  # internal alias kept for older call sites


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _selection_to_dict(report: SelectionReport) -> dict:
    return {
        "routine": report.routine,
        "platform": report.platform,
        "best_model_name": report.best_model_name,
        "evaluations": [
            {
                "model_name": e.model_name,
                "rmse": e.rmse,
                "normalised_rmse": e.normalised_rmse,
                "eval_time_us": e.eval_time_us,
                "ideal_mean_speedup": e.ideal_mean_speedup,
                "ideal_aggregate_speedup": e.ideal_aggregate_speedup,
                "estimated_mean_speedup": e.estimated_mean_speedup,
                "estimated_aggregate_speedup": e.estimated_aggregate_speedup,
            }
            for e in report.evaluations
        ],
    }


def _selection_from_dict(data: dict) -> SelectionReport:
    return SelectionReport(
        routine=data["routine"],
        platform=data["platform"],
        best_model_name=data["best_model_name"],
        evaluations=[CandidateEvaluation(**e) for e in data["evaluations"]],
    )


def write_routine_model(
    directory: str | Path,
    installation: RoutineInstallation,
    filename: str | None = None,
) -> dict:
    """Pickle one routine's model into ``directory`` and return its manifest meta.

    The model file is written atomically (temp file + rename) under
    ``filename`` (default ``<routine>.model.pkl``); the returned meta dict is
    exactly the per-routine entry :func:`save_bundle` stores in the manifest.
    Promotion writes retrained models under *version-suffixed* filenames so
    the live manifest keeps pointing at untouched files until the manifest
    itself is atomically swapped.
    """
    directory = Path(directory)
    predictor = installation.predictor
    routine = installation.routine
    model_path = directory / (filename or f"{routine}.model.pkl")
    tmp = model_path.with_suffix(model_path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(predictor.model, handle)
    os.replace(tmp, model_path)
    return {
        "plugin": _routine_provenance(routine),
        "model_file": model_path.name,
        "checksum": f"sha256:{_sha256_file(model_path)}",
        "model_name": predictor.model_name,
        "candidate_threads": list(predictor.candidate_threads),
        "preprocessing": predictor.pipeline.to_config().to_dict(),
        "selection": _selection_to_dict(installation.selection),
        "dataset": installation.dataset.to_dict(),
        "test_shapes": [dict(s) for s in installation.test_shapes],
    }


def _routine_provenance(routine: str) -> dict:
    """Identity of the catalog plugin providing ``routine`` (schema v3)."""
    return get_catalog().entry_for_key(routine).provenance()


def _require_resolvable(routine: str, meta: dict) -> None:
    """Fail with a clear error when a bundle routine has no plugin."""
    try:
        get_catalog().resolve(routine)
    except UnknownRoutineError as exc:
        plugin = meta.get("plugin") or {}
        if plugin.get("name"):
            raise BundleFormatError(
                f"Bundle routine {routine!r} was installed by plugin "
                f"{plugin['name']!r} (version {plugin.get('version', '?')}, "
                f"source {plugin.get('source', '?')}), which is not registered "
                f"in this process; point ADSALA_PLUGIN_PATH at the plugin "
                f"directory or install the plugin distribution, then reload"
            ) from exc
        raise BundleFormatError(
            f"Bundle routine {routine!r} is not provided by any registered "
            f"routine plugin; register the plugin (ADSALA_PLUGIN_PATH or an "
            f"'adsala.routines' entry point) before loading this bundle"
        ) from exc


def save_bundle(
    bundle: InstallationBundle,
    directory: str | Path,
    bundle_version: int = 1,
) -> Path:
    """Write an installation bundle to ``directory`` and return that path.

    The manifest is written at the current :data:`SCHEMA_VERSION` with a
    SHA-256 checksum per model file; ``bundle_version`` tags the contents so
    a registry can distinguish successive installs of the same platform.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    routines_meta: Dict[str, dict] = {
        routine: write_routine_model(directory, installation)
        for routine, installation in bundle.routines.items()
    }

    manifest = {
        "schema_version": SCHEMA_VERSION,
        "bundle_version": int(bundle_version),
        "platform": bundle.platform.name,
        "settings": bundle.settings,
        "candidate_names": list(bundle.candidate_names),
        "routines": routines_meta,
    }
    _write_manifest(directory, manifest)
    return directory


def manifest_schema_version(manifest: dict) -> int:
    """Schema revision of a parsed manifest (v1 used ``format_version``)."""
    return int(manifest.get("schema_version", manifest.get("format_version", 1)))


def read_manifest(directory: str | Path) -> dict:
    """Parse and validate ``bundle.json`` without touching any model file.

    Raises
    ------
    FileNotFoundError
        If the directory holds no manifest.
    BundleFormatError
        If the manifest is not valid JSON, lacks the required keys, or was
        written by a *newer* schema than this library understands.
    """
    directory = Path(directory)
    manifest_path = directory / _BUNDLE_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(f"No {_BUNDLE_FILE} found in {directory}")
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        raise BundleFormatError(f"{manifest_path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or "routines" not in manifest or "platform" not in manifest:
        raise BundleFormatError(
            f"{manifest_path} is missing required keys ('platform', 'routines')"
        )
    schema = manifest_schema_version(manifest)
    if schema > SCHEMA_VERSION:
        raise BundleFormatError(
            f"{manifest_path} uses schema version {schema}, but this library "
            f"only understands up to {SCHEMA_VERSION}; upgrade the library "
            f"(or re-install the bundle) instead of unpickling blindly"
        )
    return manifest


def manifest_fingerprint(directory: str | Path) -> str:
    """SHA-256 of the raw manifest bytes — cheap change detection.

    The serving registry polls this to hot-reload a bundle directory:
    any re-install rewrites ``bundle.json`` (checksums change with the
    models), so the fingerprint changes with the content.
    """
    return _sha256_file(Path(directory) / _BUNDLE_FILE)


def simulator_from_settings(
    platform: MachineTopology, settings: dict
) -> TimingSimulator:
    """Rebuild a bundle's timing simulator from its manifest settings.

    Shared by :func:`load_bundle` and the serving registry so the two ways
    of opening a bundle agree on the seed/noise defaults.

    When the settings carry a ``calibration`` mapping (stamped by the
    adaptive layer's :class:`~repro.adaptive.promote.BundlePromoter` after a
    drift-triggered promotion), the named platform is rescaled through
    :func:`repro.machine.topology.apply_calibration` before the simulator is
    built — the bundle then predicts with the machine as it measures *now*,
    not as it measured at install time.
    """
    calibrated = apply_calibration(platform, settings.get("calibration") or {})
    return TimingSimulator(
        calibrated,
        seed=int(settings.get("seed", 0)),
        noise_level=float(settings.get("noise_level", 0.04)),
    )


def load_routine(
    directory: str | Path,
    routine: str,
    meta: dict,
    platform: MachineTopology,
    verify_checksum: bool = True,
) -> RoutineInstallation:
    """Load one routine's model + metadata into a :class:`RoutineInstallation`.

    Verifies the manifest checksum over the model file *before* unpickling
    (when the manifest carries one) and converts low-level failures into
    :class:`BundleFormatError`.  Optional metadata keys missing from older
    (schema v1) bundles fall back to empty defaults.
    """
    from repro.preprocessing.pipeline import PreprocessingPipeline

    _require_resolvable(routine, meta)
    directory = Path(directory)
    model_file = meta.get("model_file", f"{routine}.model.pkl")
    model_path = directory / model_file
    if not model_path.exists():
        raise BundleFormatError(
            f"Bundle {directory} lists {model_file!r} for routine {routine!r} "
            f"but the file does not exist"
        )
    checksum = meta.get("checksum")
    if verify_checksum and checksum:
        algo, _, expected = str(checksum).partition(":")
        if algo != "sha256" or not expected:
            raise BundleFormatError(
                f"Unsupported checksum format {checksum!r} for routine {routine!r}"
            )
        actual = _sha256_file(model_path)
        if actual != expected:
            raise BundleFormatError(
                f"Checksum mismatch for {model_path}: manifest says "
                f"sha256:{expected[:12]}..., file is sha256:{actual[:12]}... "
                f"— the model file was modified after the bundle was written"
            )
    try:
        with open(model_path, "rb") as handle:
            model = pickle.load(handle)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise BundleFormatError(
            f"Could not unpickle model file {model_path}: {exc}"
        ) from exc

    try:
        pipeline = PreprocessingPipeline.from_config(meta["preprocessing"])
    except KeyError as exc:
        raise BundleFormatError(
            f"Routine {routine!r} metadata is missing required key {exc}"
        ) from exc
    predictor = ThreadPredictor(
        routine=routine,
        pipeline=pipeline,
        model=model,
        candidate_threads=meta.get(
            "candidate_threads", platform.candidate_thread_counts()
        ),
        model_name=meta.get("model_name", "unknown"),
    )
    if "selection" in meta:
        selection = _selection_from_dict(meta["selection"])
    else:
        selection = SelectionReport(
            routine=routine,
            platform=platform.name,
            best_model_name=predictor.model_name,
        )
    if "dataset" in meta:
        dataset = TimingDataset.from_dict(meta["dataset"])
    else:
        dataset = TimingDataset(
            routine=routine, platform=platform.name, dims=[], threads=[], times=[]
        )
    return RoutineInstallation(
        routine=routine,
        predictor=predictor,
        selection=selection,
        dataset=dataset,
        test_shapes=[dict(s) for s in meta.get("test_shapes", [])],
    )


def load_bundle(directory: str | Path, verify_checksums: bool = True) -> InstallationBundle:
    """Load a bundle previously written by :func:`save_bundle`.

    Accepts both the current schema and older revisions (see the module
    docstring); structural problems raise :class:`BundleFormatError`.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    platform = get_platform(manifest["platform"])
    settings = manifest.get("settings", {}) or {}
    bundle = InstallationBundle(
        platform=platform,
        simulator=simulator_from_settings(platform, settings),
        candidate_names=list(manifest.get("candidate_names", [])),
        settings=settings,
    )
    for routine, meta in manifest["routines"].items():
        bundle.routines[routine] = load_routine(
            directory, routine, meta, platform, verify_checksum=verify_checksums
        )
    return bundle


def verify_bundle(directory: str | Path) -> dict:
    """Check a bundle's manifest and model files without unpickling anything.

    Returns a report dict::

        {"directory": ..., "schema_version": int, "bundle_version": int,
         "platform": str, "ok": bool,
         "routines": {routine: "ok" | "missing file" | "no checksum"
                               | "checksum mismatch" | "unknown plugin"}}
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    statuses: Dict[str, str] = {}
    for routine, meta in manifest["routines"].items():
        try:
            get_catalog().resolve(routine)
        except UnknownRoutineError:
            statuses[routine] = "unknown plugin"
            continue
        model_path = directory / meta.get("model_file", f"{routine}.model.pkl")
        if not model_path.exists():
            statuses[routine] = "missing file"
            continue
        checksum = meta.get("checksum")
        if not checksum:
            statuses[routine] = "no checksum"
            continue
        algo, _, expected = str(checksum).partition(":")
        if algo != "sha256" or not expected:
            # load_routine would refuse this entry too; "ok" here would let
            # verification pass on a bundle that cannot be loaded.
            statuses[routine] = "unsupported checksum"
        elif _sha256_file(model_path) == expected:
            statuses[routine] = "ok"
        else:
            statuses[routine] = "checksum mismatch"
    return {
        "directory": str(directory),
        "schema_version": manifest_schema_version(manifest),
        "bundle_version": int(manifest.get("bundle_version", 1)),
        "platform": manifest["platform"],
        "ok": all(status == "ok" for status in statuses.values()),
        "routines": statuses,
    }


def migrate_manifest(directory: str | Path) -> dict:
    """Upgrade an on-disk manifest in place to the current schema.

    Computes the missing per-routine checksums from the model files, renames
    the legacy ``format_version`` key, stamps ``schema_version`` /
    ``bundle_version`` and records each routine's plugin provenance from
    the live catalog (schema v3).  A manifest already at the current schema
    is returned unchanged.  Returns the (possibly rewritten) manifest.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    if manifest_schema_version(manifest) == SCHEMA_VERSION and all(
        meta.get("checksum") and meta.get("plugin")
        for meta in manifest["routines"].values()
    ):
        return manifest
    manifest.pop("format_version", None)
    manifest["schema_version"] = SCHEMA_VERSION
    manifest.setdefault("bundle_version", 1)
    for routine, meta in manifest["routines"].items():
        model_path = directory / meta.get("model_file", f"{routine}.model.pkl")
        if not model_path.exists():
            raise BundleFormatError(
                f"Cannot migrate {directory}: model file for {routine!r} is missing"
            )
        _require_resolvable(routine, meta)
        meta["model_file"] = model_path.name
        meta["checksum"] = f"sha256:{_sha256_file(model_path)}"
        meta.setdefault("plugin", _routine_provenance(routine))
    _write_manifest(directory, manifest)
    return manifest
