"""Persistence of installation bundles (paper Fig. 1: saved config + model).

The paper's installer writes two artefacts per routine: a preprocessing
configuration file and the trained, production-ready model.  Here the bundle
is written to a directory containing

* ``bundle.json`` — platform name, installer settings, per-routine metadata
  (winning model name, candidate thread counts, preprocessing config,
  selection summary),
* ``<routine>.model.pkl`` — the pickled fitted model for each routine.

The split mirrors the paper's design: the JSON config is human-readable and
library-agnostic, the model file is opaque.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Dict

from repro.core.install import InstallationBundle, RoutineInstallation
from repro.core.dataset import TimingDataset
from repro.core.predictor import ThreadPredictor
from repro.core.selection import CandidateEvaluation, SelectionReport
from repro.machine.platforms import get_platform
from repro.machine.simulator import TimingSimulator
from repro.preprocessing.pipeline import PreprocessingPipeline

__all__ = ["save_bundle", "load_bundle"]

_BUNDLE_FILE = "bundle.json"


def _selection_to_dict(report: SelectionReport) -> dict:
    return {
        "routine": report.routine,
        "platform": report.platform,
        "best_model_name": report.best_model_name,
        "evaluations": [
            {
                "model_name": e.model_name,
                "rmse": e.rmse,
                "normalised_rmse": e.normalised_rmse,
                "eval_time_us": e.eval_time_us,
                "ideal_mean_speedup": e.ideal_mean_speedup,
                "ideal_aggregate_speedup": e.ideal_aggregate_speedup,
                "estimated_mean_speedup": e.estimated_mean_speedup,
                "estimated_aggregate_speedup": e.estimated_aggregate_speedup,
            }
            for e in report.evaluations
        ],
    }


def _selection_from_dict(data: dict) -> SelectionReport:
    return SelectionReport(
        routine=data["routine"],
        platform=data["platform"],
        best_model_name=data["best_model_name"],
        evaluations=[CandidateEvaluation(**e) for e in data["evaluations"]],
    )


def save_bundle(bundle: InstallationBundle, directory: str | Path) -> Path:
    """Write an installation bundle to ``directory`` and return that path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    routines_meta: Dict[str, dict] = {}
    for routine, installation in bundle.routines.items():
        predictor = installation.predictor
        model_path = directory / f"{routine}.model.pkl"
        with open(model_path, "wb") as handle:
            pickle.dump(predictor.model, handle)
        routines_meta[routine] = {
            "model_file": model_path.name,
            "model_name": predictor.model_name,
            "candidate_threads": list(predictor.candidate_threads),
            "preprocessing": predictor.pipeline.to_config().to_dict(),
            "selection": _selection_to_dict(installation.selection),
            "dataset": installation.dataset.to_dict(),
            "test_shapes": [dict(s) for s in installation.test_shapes],
        }

    manifest = {
        "format_version": 1,
        "platform": bundle.platform.name,
        "settings": bundle.settings,
        "candidate_names": list(bundle.candidate_names),
        "routines": routines_meta,
    }
    with open(directory / _BUNDLE_FILE, "w") as handle:
        json.dump(manifest, handle, indent=2)
    return directory


def load_bundle(directory: str | Path) -> InstallationBundle:
    """Load a bundle previously written by :func:`save_bundle`."""
    directory = Path(directory)
    manifest_path = directory / _BUNDLE_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(f"No {_BUNDLE_FILE} found in {directory}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)

    platform = get_platform(manifest["platform"])
    settings = manifest.get("settings", {})
    simulator = TimingSimulator(
        platform,
        seed=int(settings.get("seed", 0)),
        noise_level=float(settings.get("noise_level", 0.04)),
    )
    bundle = InstallationBundle(
        platform=platform,
        simulator=simulator,
        candidate_names=list(manifest.get("candidate_names", [])),
        settings=settings,
    )

    for routine, meta in manifest["routines"].items():
        with open(directory / meta["model_file"], "rb") as handle:
            model = pickle.load(handle)
        pipeline = PreprocessingPipeline.from_config(meta["preprocessing"])
        predictor = ThreadPredictor(
            routine=routine,
            pipeline=pipeline,
            model=model,
            candidate_threads=meta["candidate_threads"],
            model_name=meta["model_name"],
        )
        bundle.routines[routine] = RoutineInstallation(
            routine=routine,
            predictor=predictor,
            selection=_selection_from_dict(meta["selection"]),
            dataset=TimingDataset.from_dict(meta["dataset"]),
            test_shapes=[dict(s) for s in meta.get("test_shapes", [])],
        )
    return bundle
