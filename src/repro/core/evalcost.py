"""Model-evaluation cost estimation (the paper's ``t_eval``).

The paper measures ``t_eval`` on its compiled C++ runtime, where a linear
model costs ~5-15 µs, tree ensembles hundreds of µs and kNN several ms
(Table VI).  This reproduction's predictors run in interpreted Python, whose
per-call overhead (~100-500 µs even for a linear model) would distort the
accuracy-versus-latency trade-off that the paper's model selection is about.

Two cost notions are therefore exposed:

* :func:`measured_eval_time` — the honest wall-clock cost of this package's
  Python predictor (also available as
  :meth:`repro.core.predictor.ThreadPredictor.measure_eval_time`);
* :func:`estimate_native_eval_time` — an analytic estimate of what the same
  model costs in a compiled deployment, calibrated against the evaluation
  times the paper reports in Table VI.  Model selection uses this estimate
  by default so that the selection dynamics (cheap linear models beating
  slightly more accurate but slow kNN/forest models on latency-sensitive
  routines) match the paper; the substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from repro.ml.base import BaseRegressor
from repro.ml.bayes import BayesianRidge
from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import ElasticNet, LinearRegression, Ridge
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.svm import SVR
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["estimate_native_eval_time", "measured_eval_time"]


# Calibration constants (seconds), chosen so that the estimates land in the
# ranges of the paper's Table VI for ~100 candidate thread counts and ~10^3
# training rows: linear ~5-15 us, decision tree ~5-8 us, XGBoost ~300-1400 us,
# random forest ~550-2300 us, AdaBoost ~60-120 us, kNN ~1700-6500 us.
_DISPATCH_OVERHEAD = 3.0e-6
_LINEAR_PER_TERM = 6.0e-9
_TREE_PER_NODE_VISIT = 2.5e-8
_ENSEMBLE_CALL_OVERHEAD = 1.5e-4
_KNN_PER_DISTANCE_TERM = 4.0e-9
_SVR_PER_KERNEL_TERM = 2.0e-9


def _tree_depth(model: DecisionTreeRegressor) -> int:
    return getattr(model, "depth_", None) or 10


def estimate_native_eval_time(
    model: BaseRegressor, n_candidates: int, n_features: int
) -> float:
    """Estimated ``t_eval`` (seconds) of one prediction in a compiled runtime.

    ``n_candidates`` is the number of candidate thread counts evaluated per
    BLAS call (the predictor scores all of them), ``n_features`` the width of
    the preprocessed feature vector.
    """
    if n_candidates < 1:
        raise ValueError("n_candidates must be at least 1")
    if n_features < 1:
        raise ValueError("n_features must be at least 1")

    if isinstance(model, (LinearRegression, Ridge, ElasticNet, BayesianRidge)):
        return _DISPATCH_OVERHEAD + _LINEAR_PER_TERM * n_candidates * n_features

    if isinstance(model, DecisionTreeRegressor):
        return (
            _DISPATCH_OVERHEAD
            + _TREE_PER_NODE_VISIT * n_candidates * _tree_depth(model)
        )

    if isinstance(model, RandomForestRegressor):
        depth = max(_tree_depth(t) for t in model.estimators_)
        return (
            _ENSEMBLE_CALL_OVERHEAD * 2.0
            + _TREE_PER_NODE_VISIT * n_candidates * len(model.estimators_) * depth
        )

    if isinstance(model, AdaBoostRegressor):
        depth = max(_tree_depth(t) for t in model.estimators_)
        return (
            _ENSEMBLE_CALL_OVERHEAD * 0.2
            + _TREE_PER_NODE_VISIT * n_candidates * len(model.estimators_) * depth
        )

    if isinstance(model, GradientBoostingRegressor):
        return (
            _ENSEMBLE_CALL_OVERHEAD
            + _TREE_PER_NODE_VISIT
            * n_candidates
            * len(model.estimators_)
            * model.max_depth
        )

    if isinstance(model, HistGradientBoostingRegressor):
        return (
            _ENSEMBLE_CALL_OVERHEAD
            + _TREE_PER_NODE_VISIT
            * n_candidates
            * len(model.estimators_)
            * model.max_depth
        )

    if isinstance(model, KNeighborsRegressor):
        n_train = model.X_train_.shape[0]
        return (
            _ENSEMBLE_CALL_OVERHEAD * 3.0
            + _KNN_PER_DISTANCE_TERM * n_candidates * n_train * n_features
        )

    if isinstance(model, SVR):
        n_sv = max(1, model.support_.size)
        return (
            _ENSEMBLE_CALL_OVERHEAD * 0.5
            + _SVR_PER_KERNEL_TERM * n_candidates * n_sv * n_features
        )

    # Unknown estimator type: fall back to a conservative linear-like cost.
    return _DISPATCH_OVERHEAD + _LINEAR_PER_TERM * n_candidates * n_features


def measured_eval_time(predictor, repeats: int = 5) -> float:
    """Wall-clock ``t_eval`` of this package's Python predictor (seconds)."""
    return predictor.measure_eval_time(repeats=repeats)
