"""Timing datasets gathered at installation time.

A :class:`TimingDataset` holds, for one BLAS routine on one platform, the
sampled problem shapes, the thread counts that were timed, and the measured
runtimes.  It knows how to turn itself into a feature matrix / target vector
pair and how to perform the paper's stratified 85/15 train/test split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.features import build_feature_matrix, feature_names
from repro.ml.model_selection import stratified_train_test_split

__all__ = ["TimingDataset"]


@dataclass
class TimingDataset:
    """Timing samples for one routine on one platform.

    Attributes
    ----------
    routine:
        Routine key, e.g. ``"dsymm"``.
    platform:
        Platform name the samples were gathered on.
    dims:
        List of dimension dicts, one per sample row.
    threads:
        Thread count of each sample row.
    times:
        Measured runtime (seconds) of each sample row.
    """

    routine: str
    platform: str
    dims: List[Dict[str, int]] = field(default_factory=list)
    threads: List[int] = field(default_factory=list)
    times: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (len(self.dims) == len(self.threads) == len(self.times)):
            raise ValueError("dims, threads and times must have equal lengths")

    # -- construction ---------------------------------------------------------
    def append(self, dims: Dict[str, int], threads: int, time: float) -> None:
        if threads < 1:
            raise ValueError("threads must be at least 1")
        if time <= 0:
            raise ValueError("time must be positive")
        self.dims.append(dict(dims))
        self.threads.append(int(threads))
        self.times.append(float(time))

    def extend(self, other: "TimingDataset") -> None:
        if other.routine != self.routine:
            raise ValueError("Cannot merge datasets of different routines")
        self.dims.extend(other.dims)
        self.threads.extend(other.threads)
        self.times.extend(other.times)

    def __len__(self) -> int:
        return len(self.times)

    # -- views ------------------------------------------------------------------
    @property
    def feature_names(self) -> List[str]:
        return feature_names(self.routine)

    def feature_matrix(self) -> np.ndarray:
        if not self.dims:
            raise ValueError("dataset is empty")
        return build_feature_matrix(self.routine, self.dims, self.threads)

    def target(self) -> np.ndarray:
        return np.asarray(self.times, dtype=np.float64)

    def unique_shapes(self) -> List[Dict[str, int]]:
        """Distinct problem shapes in sampling order."""
        seen = set()
        shapes = []
        for dims in self.dims:
            key = tuple(sorted(dims.items()))
            if key not in seen:
                seen.add(key)
                shapes.append(dict(dims))
        return shapes

    # -- splitting ----------------------------------------------------------------
    def train_test_split(
        self, test_size: float = 0.15, random_state: int = 0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stratified split of the feature matrix / runtimes (paper: 15 % test)."""
        X = self.feature_matrix()
        y = self.target()
        return stratified_train_test_split(
            X, y, test_size=test_size, random_state=random_state
        )

    # -- summaries -----------------------------------------------------------------
    def describe(self) -> Dict[str, float]:
        """Simple summary statistics of the gathered runtimes."""
        times = self.target()
        threads = np.asarray(self.threads)
        return {
            "n_samples": float(len(self)),
            "n_shapes": float(len(self.unique_shapes())),
            "min_time": float(times.min()),
            "median_time": float(np.median(times)),
            "max_time": float(times.max()),
            "min_threads": float(threads.min()),
            "max_threads": float(threads.max()),
        }

    # -- serialisation ----------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "routine": self.routine,
            "platform": self.platform,
            "dims": [dict(d) for d in self.dims],
            "threads": list(self.threads),
            "times": list(self.times),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingDataset":
        return cls(
            routine=data["routine"],
            platform=data["platform"],
            dims=[dict(d) for d in data["dims"]],
            threads=[int(t) for t in data["threads"]],
            times=[float(t) for t in data["times"]],
        )
