"""Model evaluation and selection by estimated speedup (paper Section IV-D).

For every candidate model the selection stage records

* the normalised test RMSE of its runtime predictions,
* its evaluation time ``t_eval`` (measured, in microseconds),
* the *ideal* speedup — running each held-out problem with the model's
  chosen thread count instead of the maximum thread count,
* the *estimated* speedup — the same but charging ``t_eval`` to every call:
  ``s = t_original / (t_ADSALA + t_eval)``,

both as a mean over problems and as an aggregate (total original time over
total optimised time).  The candidate with the highest estimated mean
speedup wins, which is exactly the trade-off that lets a cheap linear model
beat a slightly more accurate ensemble on latency-sensitive routines
(paper Tables IV-VI).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.dataset import TimingDataset
from repro.core.evalcost import estimate_native_eval_time
from repro.core.predictor import ThreadPredictor
from repro.core.tuning import fit_candidate
from repro.machine.simulator import TimingSimulator
from repro.ml.metrics import root_mean_squared_error
from repro.ml.model_zoo import CANDIDATE_MODEL_NAMES
from repro.parallel import map_parallel, resolve_n_jobs
from repro.preprocessing.pipeline import PreprocessingPipeline

__all__ = [
    "CandidateEvaluation",
    "SelectionReport",
    "evaluate_candidates",
    "select_best_model",
]


@dataclass
class CandidateEvaluation:
    """Per-model statistics backing one row of the paper's Table VI."""

    model_name: str
    rmse: float
    normalised_rmse: float
    eval_time_us: float
    ideal_mean_speedup: float
    ideal_aggregate_speedup: float
    estimated_mean_speedup: float
    estimated_aggregate_speedup: float

    def as_row(self) -> Dict[str, float | str]:
        return {
            "model": self.model_name,
            "normalised_test_rmse": round(self.normalised_rmse, 2),
            "ideal_mean_speedup": round(self.ideal_mean_speedup, 2),
            "ideal_aggregate_speedup": round(self.ideal_aggregate_speedup, 2),
            "eval_time_us": round(self.eval_time_us, 2),
            "estimated_mean_speedup": round(self.estimated_mean_speedup, 2),
            "estimated_aggregate_speedup": round(self.estimated_aggregate_speedup, 2),
        }


@dataclass
class SelectionReport:
    """Outcome of model selection for one routine on one platform."""

    routine: str
    platform: str
    evaluations: List[CandidateEvaluation] = field(default_factory=list)
    best_model_name: str = ""

    @property
    def best_evaluation(self) -> CandidateEvaluation:
        for evaluation in self.evaluations:
            if evaluation.model_name == self.best_model_name:
                return evaluation
        raise LookupError(f"No evaluation recorded for {self.best_model_name!r}")

    def as_rows(self) -> List[Dict[str, float | str]]:
        return [evaluation.as_row() for evaluation in self.evaluations]


def _speedup_statistics(
    predictor: ThreadPredictor,
    simulator: TimingSimulator,
    test_shapes: Sequence[Dict[str, int]],
    eval_time_seconds: float,
    original_times: np.ndarray | None = None,
    use_batch: bool = True,
) -> tuple[float, float, float, float]:
    """(ideal_mean, ideal_aggregate, estimated_mean, estimated_aggregate).

    With ``use_batch`` (the default) the predictor chooses thread counts for
    all held-out shapes in one model evaluation and the simulator times them
    in one vectorised pass.  ``original_times`` carries the candidate-
    independent max-thread baselines hoisted out of the per-candidate loop
    by :func:`evaluate_candidates`; when ``None`` they are (re)computed
    here.  ``use_batch=False`` keeps the original per-shape loop as the
    reference path.
    """
    if use_batch:
        test_shapes = list(test_shapes)
        threads = predictor.predict_threads_batch(test_shapes)
        chosen = simulator.time_batch(predictor.routine, test_shapes, threads)
        if original_times is None:
            original_times = simulator.time_at_max_threads_batch(
                predictor.routine, test_shapes
            )
        original = np.asarray(original_times)
    else:
        original_list = []
        chosen_list = []
        for dims in test_shapes:
            threads = predictor.predict_threads(dims, use_cache=False)
            chosen_list.append(simulator.time(predictor.routine, dims, threads))
            original_list.append(
                simulator.time_at_max_threads(predictor.routine, dims)
            )
        original = np.asarray(original_list)
        chosen = np.asarray(chosen_list)

    ideal_ratios = original / chosen
    estimated_ratios = original / (chosen + eval_time_seconds)
    ideal_mean = float(ideal_ratios.mean())
    ideal_aggregate = float(original.sum() / chosen.sum())
    estimated_mean = float(estimated_ratios.mean())
    estimated_aggregate = float(
        original.sum() / (chosen.sum() + eval_time_seconds * len(test_shapes))
    )
    return ideal_mean, ideal_aggregate, estimated_mean, estimated_aggregate


def _evaluate_one_candidate(payload: dict) -> tuple[CandidateEvaluation, object, int]:
    """Fit and score one candidate model (a :func:`map_parallel` worker).

    Returns ``(evaluation, fitted_model, n_simulator_evaluations)`` so that
    a parallel caller can fold the child simulator's evaluation counter back
    into the parent's.
    """
    name = payload["name"]
    X_train = payload["X_train"]
    y_train = payload["y_train"]
    X_test = payload["X_test"]
    y_test = payload["y_test"]
    pipeline = payload["pipeline"]
    routine = payload["routine"]
    candidate_threads = payload["candidate_threads"]
    simulator = payload["simulator"]
    test_shapes = payload["test_shapes"]
    original_times = payload["original_times"]
    tune_hyperparameters = payload["tune_hyperparameters"]
    eval_time_mode = payload["eval_time_mode"]
    use_batch_timing = payload["use_batch_timing"]
    evaluations_before = simulator.n_evaluations
    result = fit_candidate(name, X_train, y_train, tune=tune_hyperparameters)
    model = result.model
    rmse = root_mean_squared_error(y_test, model.predict(X_test))

    predictor = ThreadPredictor(
        routine=routine,
        pipeline=pipeline,
        model=model,
        candidate_threads=candidate_threads,
        model_name=name,
    )
    if eval_time_mode == "native":
        eval_time = estimate_native_eval_time(
            model, n_candidates=len(candidate_threads), n_features=X_train.shape[1]
        )
    else:
        eval_time = predictor.measure_eval_time(repeats=3)
    ideal_mean, ideal_agg, est_mean, est_agg = _speedup_statistics(
        predictor,
        simulator,
        test_shapes,
        eval_time,
        original_times=original_times,
        use_batch=use_batch_timing,
    )
    evaluation = CandidateEvaluation(
        model_name=name,
        rmse=rmse,
        normalised_rmse=np.nan,  # filled in once the max is known
        eval_time_us=eval_time * 1e6,
        ideal_mean_speedup=ideal_mean,
        ideal_aggregate_speedup=ideal_agg,
        estimated_mean_speedup=est_mean,
        estimated_aggregate_speedup=est_agg,
    )
    return evaluation, model, simulator.n_evaluations - evaluations_before


def evaluate_candidates(
    dataset: TimingDataset,
    simulator: TimingSimulator,
    test_shapes: Sequence[Dict[str, int]],
    candidate_names: Sequence[str] | None = None,
    tune_hyperparameters: bool = False,
    use_yeo_johnson: bool = True,
    test_size: float = 0.15,
    eval_time_mode: str = "native",
    seed: int = 0,
    n_jobs: int | None = 1,
    parallel_backend: str = "process",
    use_batch_timing: bool = True,
) -> SelectionReport:
    """Fit, evaluate and rank every candidate model for one routine.

    Parameters
    ----------
    dataset:
        The gathered timing data for the routine.
    simulator:
        Timing source used to score the chosen thread counts on the held-out
        problem shapes.
    test_shapes:
        Separate quasi-randomly sampled problems used for the speedup
        estimate (the paper's 100-120 point test datasets).
    candidate_names:
        Candidate pool; defaults to the full Table II pool.
    tune_hyperparameters:
        Run the grid search of :mod:`repro.core.tuning` per candidate.
    use_yeo_johnson:
        Preprocessing variant (the ablation benchmark turns this off).
    test_size:
        Row-level holdout fraction used for the RMSE column (paper: 15 %).
    eval_time_mode:
        ``"native"`` (default) charges the analytic compiled-runtime cost of
        :func:`repro.core.evalcost.estimate_native_eval_time` as ``t_eval``,
        matching the paper's C++ measurements; ``"measured"`` charges the
        wall-clock cost of this package's Python predictor instead.
    n_jobs:
        Candidates are fitted and scored across this many workers (see
        :func:`repro.parallel.map_parallel`); results are bit-identical to
        the serial run for every value.
    parallel_backend:
        Backend for the candidate fan-out ("process", "thread" or "serial").
    use_batch_timing:
        Evaluate the speedup statistics through the vectorised batch
        simulator/predictor path (default) or the original per-shape loop.
    """
    if eval_time_mode not in ("native", "measured"):
        raise ValueError("eval_time_mode must be 'native' or 'measured'")
    if candidate_names is None:
        candidate_names = CANDIDATE_MODEL_NAMES
    if not candidate_names:
        raise ValueError("candidate_names must not be empty")
    if not test_shapes:
        raise ValueError("test_shapes must not be empty")

    X_train, X_test, y_train, y_test = dataset.train_test_split(
        test_size=test_size, random_state=seed
    )

    pipeline = PreprocessingPipeline(
        use_yeo_johnson=use_yeo_johnson,
        feature_names=dataset.feature_names,
    )
    X_train_t, y_train_f = pipeline.fit_transform(X_train, y_train)
    X_test_t = pipeline.transform(X_test)

    candidate_threads = simulator.platform.candidate_thread_counts()
    test_shapes = list(test_shapes)

    # The max-thread baseline of every held-out shape is candidate-
    # independent: compute it once (one batch call) instead of once per
    # candidate inside the scoring loop.
    original_times = (
        simulator.time_at_max_threads_batch(dataset.routine, test_shapes)
        if use_batch_timing
        else None
    )

    n_workers = min(resolve_n_jobs(n_jobs), len(candidate_names))
    pooled = n_workers > 1 and parallel_backend != "serial"
    payloads = [
        {
            "name": name,
            "X_train": X_train_t,
            "y_train": y_train_f,
            "X_test": X_test_t,
            "y_test": y_test,
            "pipeline": pipeline,
            "routine": dataset.routine,
            "candidate_threads": candidate_threads,
            # Pooled workers get private simulator copies (the process
            # backend would fork its own; the thread backend would
            # otherwise race on the shared evaluation counter).
            "simulator": copy.deepcopy(simulator) if pooled else simulator,
            "test_shapes": test_shapes,
            "original_times": original_times,
            "tune_hyperparameters": tune_hyperparameters,
            "eval_time_mode": eval_time_mode,
            "use_batch_timing": use_batch_timing,
        }
        for name in candidate_names
    ]
    if pooled:
        results = map_parallel(
            _evaluate_one_candidate, payloads, n_jobs=n_workers, backend=parallel_backend
        )
        # Worker simulators are private copies; fold their evaluation
        # counters back so the parallel run is indistinguishable from the
        # serial one.
        simulator.n_evaluations += sum(delta for _, _, delta in results)
    else:
        results = [_evaluate_one_candidate(payload) for payload in payloads]

    evaluations: List[CandidateEvaluation] = [r[0] for r in results]
    fitted_models = {
        name: model for name, (_, model, _) in zip(candidate_names, results)
    }

    max_rmse = max(evaluation.rmse for evaluation in evaluations)
    for evaluation in evaluations:
        evaluation.normalised_rmse = (
            evaluation.rmse / max_rmse if max_rmse > 0 else 0.0
        )

    best = max(evaluations, key=lambda e: e.estimated_mean_speedup)
    report = SelectionReport(
        routine=dataset.routine,
        platform=dataset.platform,
        evaluations=evaluations,
        best_model_name=best.model_name,
    )
    # Stash fitted models so callers (install) can reuse the winner without
    # refitting from scratch.
    report._fitted_models = fitted_models  # type: ignore[attr-defined]
    report._pipeline = pipeline  # type: ignore[attr-defined]
    return report


def select_best_model(reports: Sequence[SelectionReport]) -> str:
    """Model with the highest average estimated speedup across routines.

    This is the paper's library-wide criterion ("the ML model with the
    highest average estimated speedup s across all BLAS subroutines is
    selected").
    """
    if not reports:
        raise ValueError("reports must not be empty")
    totals: Dict[str, List[float]] = {}
    for report in reports:
        for evaluation in report.evaluations:
            totals.setdefault(evaluation.model_name, []).append(
                evaluation.estimated_mean_speedup
            )
    averages = {name: float(np.mean(values)) for name, values in totals.items()}
    return max(averages, key=averages.get)
