"""ADSALA core: the paper's primary contribution.

The subpackage implements the installation-time workflow (paper Fig. 1a) —
domain sampling, timing-data gathering, preprocessing, hyper-parameter
tuning and model selection by estimated speedup — and the runtime workflow
(Fig. 1b): a per-routine thread-count predictor with a last-call cache and a
BLAS front-end that dispatches every call with the predicted thread count.
"""

from repro.core.sampling import HaltonSequence, ScrambledHaltonSequence, DomainSampler
from repro.core.features import (
    feature_names,
    compute_features,
    build_feature_matrix,
    THREE_DIM_FEATURES,
    TWO_DIM_FEATURES,
)
from repro.core.dataset import TimingDataset
from repro.core.gather import DataGatherer
from repro.core.tuning import tune_model
from repro.core.selection import (
    CandidateEvaluation,
    SelectionReport,
    evaluate_candidates,
    select_best_model,
)
from repro.core.predictor import ThreadPredictor, PredictionPlan
from repro.core.runtime import AdsalaRuntime, AdsalaBlas
from repro.core.install import (
    install_adsala,
    fit_routine_installation,
    InstallationBundle,
    RoutineInstallation,
)
from repro.core.persistence import (
    SCHEMA_VERSION,
    BundleFormatError,
    load_bundle,
    migrate_manifest,
    read_manifest,
    save_bundle,
    verify_bundle,
    write_manifest,
    write_routine_model,
)

__all__ = [
    "HaltonSequence",
    "ScrambledHaltonSequence",
    "DomainSampler",
    "feature_names",
    "compute_features",
    "build_feature_matrix",
    "THREE_DIM_FEATURES",
    "TWO_DIM_FEATURES",
    "TimingDataset",
    "DataGatherer",
    "tune_model",
    "CandidateEvaluation",
    "SelectionReport",
    "evaluate_candidates",
    "select_best_model",
    "ThreadPredictor",
    "PredictionPlan",
    "AdsalaRuntime",
    "AdsalaBlas",
    "install_adsala",
    "fit_routine_installation",
    "InstallationBundle",
    "RoutineInstallation",
    "save_bundle",
    "load_bundle",
    "SCHEMA_VERSION",
    "BundleFormatError",
    "read_manifest",
    "write_manifest",
    "write_routine_model",
    "verify_bundle",
    "migrate_manifest",
]
