"""Quasi-random domain sampling (paper Section IV-B).

The installation workflow samples the matrix-dimension domain of every BLAS
routine with a *scrambled Halton sequence*: a low-discrepancy sequence whose
per-dimension digit permutations break the correlation artefacts of the
plain Halton sequence.  The paper uses bases (2, 3, 4) for the (m, k, n) of
three-dimensional routines and (2, 3) for two-dimensional routines, and caps
the summed operand size at 500 MB.

:class:`DomainSampler` maps the unit-cube sequence onto integer matrix
dimensions, sampling logarithmically between a minimum dimension and a
per-dimension maximum, and rejecting points that exceed the memory cap.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.blas.api import parse_routine
from repro.blas.flops import memory_bytes

__all__ = [
    "HaltonSequence",
    "ScrambledHaltonSequence",
    "DomainSampler",
    "DEFAULT_BASES_3D",
    "DEFAULT_BASES_2D",
    "van_der_corput",
]

#: Bases used by the paper for (m, k, n) and (m, n) / (n, k) sampling.
DEFAULT_BASES_3D = (2, 3, 4)
DEFAULT_BASES_2D = (2, 3)


def van_der_corput(index: int, base: int, permutation: Sequence[int] | None = None) -> float:
    """Radical-inverse of ``index`` in ``base`` with an optional digit permutation."""
    if index < 0:
        raise ValueError("index must be non-negative")
    if base < 2:
        raise ValueError("base must be at least 2")
    result = 0.0
    fraction = 1.0 / base
    i = index
    while i > 0:
        digit = i % base
        if permutation is not None:
            digit = permutation[digit]
        result += digit * fraction
        i //= base
        fraction /= base
    return result


class HaltonSequence:
    """Plain multi-dimensional Halton sequence on the unit cube."""

    def __init__(self, bases: Sequence[int]):
        if not bases:
            raise ValueError("bases must not be empty")
        for base in bases:
            if base < 2:
                raise ValueError("all bases must be at least 2")
        self.bases = tuple(int(b) for b in bases)
        self._index = 0

    @property
    def dimension(self) -> int:
        return len(self.bases)

    def _point(self, index: int) -> np.ndarray:
        return np.array(
            [van_der_corput(index, base) for base in self.bases], dtype=float
        )

    def take(self, n: int, skip: int = 0) -> np.ndarray:
        """Return the next ``n`` points as an (n, d) array.

        ``skip`` discards additional leading indices (a common Halton
        burn-in); the sequence position advances past both.
        """
        if n < 1:
            raise ValueError("n must be positive")
        start = self._index + skip + 1  # index 0 is the origin; skip it
        points = np.vstack([self._point(i) for i in range(start, start + n)])
        self._index = start + n - 1
        return points

    def reset(self) -> None:
        self._index = 0


class ScrambledHaltonSequence(HaltonSequence):
    """Halton sequence with per-dimension random digit permutations.

    Scrambling (Owen-style digit permutation, here one fixed permutation per
    base drawn from a seeded RNG) removes the strong correlation between
    high-base dimensions that the paper calls out as the reason to prefer
    the scrambled variant.
    """

    def __init__(self, bases: Sequence[int], seed: int = 0):
        super().__init__(bases)
        rng = np.random.default_rng(seed)
        self.permutations: List[np.ndarray] = []
        for base in self.bases:
            # Permute the non-zero digits only, keeping 0 -> 0 so that the
            # radical inverse remains unbiased near zero.  Base 2 admits only
            # the identity; for larger bases insist on a non-identity
            # permutation so that scrambling always has an effect.
            nonzero = rng.permutation(np.arange(1, base))
            while base > 2 and np.array_equal(nonzero, np.arange(1, base)):
                nonzero = rng.permutation(np.arange(1, base))
            permutation = np.concatenate(([0], nonzero))
            self.permutations.append(permutation)
        self.seed = seed

    def _point(self, index: int) -> np.ndarray:
        return np.array(
            [
                van_der_corput(index, base, permutation)
                for base, permutation in zip(self.bases, self.permutations)
            ],
            dtype=float,
        )


#: Halton bases for sampler dimensions beyond the paper's 3-D set — pairwise
#: coprime continuations keeping low discrepancy for plugin routines with
#: four or more free dimensions.
_EXTENDED_BASES = (2, 3, 4, 5, 7, 11, 13, 17)


def _sampler_bases(n_dims: int) -> tuple:
    """Halton bases for an ``n_dims``-dimension routine.

    Two and three dimensions use the paper's exact base tuples; plugin
    routines with more dimensions extend with coprime bases.
    """
    if n_dims == 3:
        return DEFAULT_BASES_3D
    if n_dims == 2:
        return DEFAULT_BASES_2D
    if n_dims <= len(_EXTENDED_BASES):
        return _EXTENDED_BASES[:n_dims]
    raise ValueError(
        f"DomainSampler supports at most {len(_EXTENDED_BASES)} dimensions, "
        f"got {n_dims}"
    )


class DomainSampler:
    """Sample matrix-dimension tuples for one BLAS routine.

    Parameters
    ----------
    routine:
        Routine key, e.g. ``"dgemm"`` — the precision prefix matters because
        the 500 MB cap is a byte limit.
    memory_cap_bytes:
        Upper bound on the summed operand size (paper: 500 MB).
    min_dim:
        Smallest admissible value of any matrix dimension.
    max_dim:
        Largest admissible value of any matrix dimension.  ``None`` (default)
        derives it from the memory cap: the edge of the largest *square*
        problem that fits the cap, stretched by ``skew`` so that slim
        rectangular shapes (small in one dimension, large in the other) are
        also covered — the paper explicitly samples "slim/square and
        big/small matrices".
    skew:
        Stretch factor applied when ``max_dim`` is derived automatically.
    scale:
        How unit-cube samples map to dimensions: ``"sqrt"`` (default —
        matches the paper's square-root-scale heatmap axes, giving a mild
        bias toward smaller problems), ``"linear"`` or ``"log"``.
    scrambled:
        Use the scrambled Halton sequence (paper default) or the plain one
        (exercised by the sampling ablation).
    seed:
        Seed of the scrambling permutations.
    """

    def __init__(
        self,
        routine: str,
        memory_cap_bytes: float = 500e6,
        min_dim: int = 32,
        max_dim: int | None = None,
        skew: float = 2.5,
        scale: str = "sqrt",
        scrambled: bool = True,
        seed: int = 0,
    ):
        prefix, base, spec = parse_routine(routine)
        self.routine = routine
        self.precision = prefix
        self.spec = spec
        if memory_cap_bytes <= 0:
            raise ValueError("memory_cap_bytes must be positive")
        if scale not in ("sqrt", "linear", "log"):
            raise ValueError("scale must be 'sqrt', 'linear' or 'log'")
        if skew < 1.0:
            raise ValueError("skew must be at least 1")
        self.memory_cap_bytes = memory_cap_bytes
        self.scale = scale
        self.skew = skew

        if max_dim is None:
            itemsize = 4 if prefix == "s" else 8
            cap_words = memory_cap_bytes / itemsize
            square_edge = math.sqrt(cap_words / max(1, len(spec.operands)))
            max_dim = int(square_edge * skew)
        if min_dim < 1 or max_dim <= min_dim:
            raise ValueError("require 1 <= min_dim < max_dim")
        self.min_dim = min_dim
        self.max_dim = max_dim
        # Per-dimension bounds: the spec's declared dim_ranges (the plugin's
        # dims schema) override the sampler-wide defaults dimension by
        # dimension.
        self._bounds = {}
        for name in spec.dim_names:
            declared = spec.dim_bounds(name)
            lo, hi = declared if declared is not None else (min_dim, max_dim)
            if lo < 1 or hi <= lo:
                raise ValueError(
                    f"dimension {name!r} of {routine} needs 1 <= min < max, "
                    f"got ({lo}, {hi})"
                )
            self._bounds[name] = (lo, hi)

        bases = _sampler_bases(spec.n_dims)
        sequence_cls = ScrambledHaltonSequence if scrambled else HaltonSequence
        if scrambled:
            self.sequence = sequence_cls(bases, seed=seed)
        else:
            self.sequence = sequence_cls(bases)

    def _point_to_dims(self, point: np.ndarray) -> Dict[str, int]:
        """Map a unit-cube point to integer dimensions on the chosen scale."""
        dims = {}
        for name, u in zip(self.spec.dim_names, point):
            lo, hi = self._bounds[name]
            if self.scale == "log":
                log_min = math.log2(lo)
                log_max = math.log2(hi)
                value = 2.0 ** (log_min + u * (log_max - log_min))
            elif self.scale == "sqrt":
                sqrt_min = math.sqrt(lo)
                sqrt_max = math.sqrt(hi)
                value = (sqrt_min + u * (sqrt_max - sqrt_min)) ** 2
            else:  # linear
                value = lo + u * (hi - lo)
            dims[name] = max(lo, min(hi, int(round(value))))
        return dims

    def _fits(self, dims: Dict[str, int]) -> bool:
        return (
            memory_bytes(self.routine, dims, self.precision) <= self.memory_cap_bytes
        )

    def sample(self, n: int, max_attempts_factor: int = 50) -> List[Dict[str, int]]:
        """Draw ``n`` admissible dimension tuples.

        Points whose operands exceed the memory cap are rejected; a
        ``RuntimeError`` is raised if the acceptance rate is pathologically
        low (which would indicate an inconsistent cap / max_dim pairing).
        """
        if n < 1:
            raise ValueError("n must be positive")
        samples: List[Dict[str, int]] = []
        attempts = 0
        max_attempts = max_attempts_factor * n
        while len(samples) < n:
            if attempts >= max_attempts:
                raise RuntimeError(
                    f"DomainSampler for {self.routine} accepted only "
                    f"{len(samples)}/{n} points after {attempts} attempts; "
                    "lower max_dim or raise memory_cap_bytes"
                )
            point = self.sequence.take(1)[0]
            attempts += 1
            dims = self._point_to_dims(point)
            if self._fits(dims):
                samples.append(dims)
        return samples

    def __iter__(self) -> Iterator[Dict[str, int]]:
        while True:
            yield self.sample(1)[0]
