"""Installation-time hyper-parameter tuning (paper Fig. 1a, "Hyper-Parameters Tuning").

Every candidate model can be tuned with a small grid search before the model
selection stage compares them.  Tuning is optional — the default grids in
:mod:`repro.ml.model_zoo` are already reasonable for the ~10^3-row datasets
the gatherer produces — and is therefore controlled by a flag on
:func:`repro.core.install.install_adsala`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.ml.base import BaseRegressor, clone
from repro.ml.model_selection import GridSearchCV
from repro.ml.model_zoo import default_param_grid, make_model

__all__ = ["TuningResult", "tune_model", "fit_candidate"]


@dataclass
class TuningResult:
    """Outcome of tuning one candidate model."""

    model_name: str
    best_params: Dict[str, object]
    cv_score: float
    model: BaseRegressor


def tune_model(
    model_name: str,
    X: np.ndarray,
    y: np.ndarray,
    cv: int = 3,
    param_grid: Dict[str, list] | None = None,
) -> TuningResult:
    """Grid-search the model's default (or supplied) hyper-parameter grid.

    Models with an empty grid (LinearRegression, BayesianRidge) are simply
    fitted once.
    """
    estimator = make_model(model_name)
    grid = default_param_grid(model_name) if param_grid is None else param_grid
    if not grid:
        fitted = clone(estimator)
        fitted.fit(X, y)
        return TuningResult(
            model_name=model_name, best_params={}, cv_score=float("nan"), model=fitted
        )
    search = GridSearchCV(estimator=estimator, param_grid=grid, cv=cv)
    search.fit(X, y)
    return TuningResult(
        model_name=model_name,
        best_params=search.best_params_,
        cv_score=search.best_score_,
        model=search.best_estimator_,
    )


def fit_candidate(
    model_name: str,
    X: np.ndarray,
    y: np.ndarray,
    tune: bool = False,
    cv: int = 3,
) -> TuningResult:
    """Fit one candidate, tuning it first when ``tune`` is requested."""
    if tune:
        return tune_model(model_name, X, y, cv=cv)
    model = make_model(model_name)
    model.fit(X, y)
    return TuningResult(
        model_name=model_name, best_params={}, cv_score=float("nan"), model=model
    )
