"""Installation-time timing-data gathering (paper Fig. 1a, "Data gathering part").

The :class:`DataGatherer` draws problem shapes from the scrambled-Halton
:class:`~repro.core.sampling.DomainSampler`, times each shape at a spread of
candidate thread counts with the platform's :class:`~repro.machine.simulator.TimingSimulator`
(the stand-in for the paper's timing program running MKL/BLIS), and stores
the results in a :class:`~repro.core.dataset.TimingDataset`.

The paper gathers 1000-1200 rows per routine; the default
``n_shapes * threads_per_shape`` here matches that scale, but both knobs are
configurable so that tests can run in milliseconds.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.dataset import TimingDataset
from repro.core.sampling import DomainSampler
from repro.machine.simulator import TimingSimulator

__all__ = ["DataGatherer", "spread_thread_counts"]


def spread_thread_counts(
    max_threads: int, count: int, rng: np.random.Generator | None = None
) -> List[int]:
    """Pick ``count`` thread counts spread log-uniformly over [1, max_threads].

    The endpoints (1 thread and the maximum) are always included so that the
    training data covers both the serial and the fully subscribed regimes;
    intermediate values are log-spaced with a small deterministic jitter so
    repeated shapes do not always sample the same counts.
    """
    if max_threads < 1:
        raise ValueError("max_threads must be at least 1")
    if count < 1:
        raise ValueError("count must be at least 1")
    count = min(count, max_threads)
    if count == 1:
        return [max_threads]
    if count == 2:
        return [1, max_threads]

    log_points = np.logspace(0, np.log2(max_threads), num=count, base=2.0)
    if rng is not None:
        jitter = rng.uniform(0.85, 1.15, size=count)
        log_points = log_points * jitter
    counts = np.unique(np.clip(np.round(log_points).astype(int), 1, max_threads))
    counts = set(counts.tolist())
    counts.add(1)
    counts.add(max_threads)
    # Top up with random distinct values if rounding collapsed some points.
    rng = rng or np.random.default_rng(0)
    while len(counts) < count:
        counts.add(int(rng.integers(1, max_threads + 1)))
    ordered = sorted(counts)
    # Forcing the endpoints may have pushed the set one past the requested
    # size; drop the most redundant interior value (smallest gap to its
    # predecessor) until the budget is met.
    while len(ordered) > count:
        gaps = [
            (ordered[i] - ordered[i - 1], i)
            for i in range(1, len(ordered) - 1)
        ]
        _, drop_index = min(gaps)
        ordered.pop(drop_index)
    return ordered


class DataGatherer:
    """Gather a timing dataset for one routine on one simulated platform.

    Parameters
    ----------
    simulator:
        The platform's timing source.
    routine:
        Routine key (``"dgemm"``, ``"ssyrk"``, ...).
    n_shapes:
        Number of problem shapes sampled from the routine's domain.
    threads_per_shape:
        Number of distinct thread counts timed per shape.
    memory_cap_bytes, min_dim, max_dim, scale, scrambled:
        Domain-sampler settings (see :class:`~repro.core.sampling.DomainSampler`).
    seed:
        Seed for the Halton scrambling and thread-count jitter.
    """

    def __init__(
        self,
        simulator: TimingSimulator,
        routine: str,
        n_shapes: int = 80,
        threads_per_shape: int = 14,
        memory_cap_bytes: float = 500e6,
        min_dim: int = 32,
        max_dim: int | None = None,
        scale: str = "sqrt",
        scrambled: bool = True,
        seed: int = 0,
    ):
        if n_shapes < 1:
            raise ValueError("n_shapes must be at least 1")
        if threads_per_shape < 1:
            raise ValueError("threads_per_shape must be at least 1")
        self.simulator = simulator
        self.routine = routine
        self.n_shapes = n_shapes
        self.threads_per_shape = threads_per_shape
        self.seed = seed
        self.sampler = DomainSampler(
            routine,
            memory_cap_bytes=memory_cap_bytes,
            min_dim=min_dim,
            max_dim=max_dim,
            scale=scale,
            scrambled=scrambled,
            seed=seed,
        )

    def gather(
        self,
        use_batch: bool = True,
        shapes: List[Dict[str, int]] | None = None,
    ) -> TimingDataset:
        """Run the sampling + timing campaign and return the dataset.

        With ``use_batch`` (the default) the whole campaign — every sampled
        shape at every spread thread count — is timed in a single
        :meth:`~repro.machine.simulator.TimingSimulator.time_batch` call,
        collapsing thousands of scalar simulator evaluations into a handful
        of array ops.  ``use_batch=False`` keeps the original per-call loop
        as a reference path; both produce bit-identical datasets
        (``benchmarks/bench_install_scaling.py`` tracks the speedup).

        ``shapes`` overrides the Halton-sampled problem shapes with an
        explicit list (the adaptive re-gather seeds the campaign from the
        observed-traffic shape distribution instead of the static training
        grid); timing and thread-count spreading are identical either way.
        """
        rng = np.random.default_rng(self.seed)
        dataset = TimingDataset(
            routine=self.routine, platform=self.simulator.platform.name
        )
        if shapes is None:
            shapes = self.sampler.sample(self.n_shapes)
        elif not shapes:
            raise ValueError("shapes must not be empty when provided")
        else:
            shapes = [dict(dims) for dims in shapes]
        max_threads = self.simulator.platform.max_threads
        per_shape_counts = [
            spread_thread_counts(max_threads, self.threads_per_shape, rng=rng)
            for _ in shapes
        ]
        if use_batch:
            dim_names = list(shapes[0])
            lengths = [len(counts) for counts in per_shape_counts]
            dim_arrays = {
                name: np.repeat([dims[name] for dims in shapes], lengths)
                for name in dim_names
            }
            threads = np.concatenate(
                [np.asarray(counts, dtype=np.int64) for counts in per_shape_counts]
            )
            times = self.simulator.time_batch(self.routine, dim_arrays, threads)
            row = 0
            for dims, thread_counts in zip(shapes, per_shape_counts):
                for threads_count in thread_counts:
                    dataset.append(dims, int(threads_count), float(times[row]))
                    row += 1
        else:
            for dims, thread_counts in zip(shapes, per_shape_counts):
                for threads_count in thread_counts:
                    elapsed = self.simulator.time(self.routine, dims, threads_count)
                    dataset.append(dims, threads_count, elapsed)
        return dataset

    def gather_test_set(self, n_shapes: int, skip: int = 9973) -> List[Dict[str, int]]:
        """Sample held-out problem shapes from the same domain.

        The paper evaluates its software on 100-120 *separate* Halton-sampled
        problems per routine; ``skip`` fast-forwards the quasi-random
        sequence so the evaluation shapes do not coincide with training
        shapes.
        """
        if n_shapes < 1:
            raise ValueError("n_shapes must be at least 1")
        self.sampler.sequence.take(1, skip=skip)
        return self.sampler.sample(n_shapes)
