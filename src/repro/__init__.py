"""repro — reproduction of the ADSALA BLAS Level 3 runtime optimiser.

This package reproduces "Machine-Learning-Driven Runtime Optimization of
BLAS Level 3 on Modern Multi-Core Systems" (Xia & Barca, 2024).  It contains

* :mod:`repro.ml` — a from-scratch machine-learning substrate (linear,
  Bayesian, tree, ensemble, kNN and SVR regressors plus model selection),
* :mod:`repro.preprocessing` — Yeo-Johnson, standardisation, LOF outlier
  removal and correlation-based feature pruning,
* :mod:`repro.machine` — analytic multi-core performance models and a timing
  simulator standing in for the Setonix / Gadi supercomputers,
* :mod:`repro.blas` — NumPy reference and blocked multi-threaded
  implementations of all six BLAS Level 3 routines,
* :mod:`repro.core` — the ADSALA contribution: domain sampling, feature
  engineering, data gathering, model selection by estimated speedup, and the
  runtime thread-count predictor,
* :mod:`repro.serving` — the production serving layer: a versioned model
  registry (lazy loading, hot reload), a micro-batching plan engine with a
  composable fallback-policy chain, and online drift telemetry,
* :mod:`repro.adaptive` — the closed adaptation loop on top of serving:
  drift-triggered, traffic-seeded re-gather and retraining, shadow
  evaluation against live traffic, canary promotion with an audit trail
  and byte-for-byte rollback,
* :mod:`repro.harness` — drivers that regenerate every table and figure of
  the paper's evaluation section.

Quickstart
----------
>>> from repro import install_adsala, AdsalaBlas
>>> from repro.machine import get_platform
>>> bundle = install_adsala(platform=get_platform("gadi"), routines=["dgemm"],
...                         n_samples=64, seed=0)
>>> blas = AdsalaBlas(bundle)
>>> plan = blas.plan("dgemm", m=256, k=2048, n=64)
>>> plan.threads <= bundle.platform.max_threads
True

Performance knobs
-----------------
The hot paths run batch/vectorised by default; every knob below changes
only wall-clock time, never results (same seeds -> same outputs):

* ``install_adsala(..., n_jobs=N)`` (or the ``ADSALA_JOBS`` environment
  variable, or ``adsala install --jobs N``) fans the per-routine campaigns
  out over ``N`` worker processes; a single-routine install fans out per
  candidate model instead.  ``-1`` uses every core.
* ``TimingSimulator.time_batch`` / ``breakdown_batch`` evaluate whole
  arrays of (shape, thread-count) configurations in one vectorised pass —
  the data gatherer and model selection use them automatically;
  ``install_adsala(..., use_batch_timing=False)`` restores the scalar
  reference path.
* ``ThreadPredictor(..., cache_capacity=K)`` bounds the LRU prediction
  cache (``K=1`` is the paper's last-call cache); cache misses run through
  the compiled fused feature→preprocess→ensemble kernel
  (:class:`repro.core.compiled.CompiledPredictor`, built once per routine
  at bundle load) whose ensembles descend as one struct-of-arrays stack
  (:class:`repro.ml.tree.StackedTrees`, optionally via a small C kernel
  compiled on the fly — ``ADSALA_NATIVE=0`` forces pure NumPy).
  :func:`repro.core.compiled.reference_mode` restores the object-graph
  path and :func:`repro.ml.tree.reference_mode` the recursive trees; all
  three tiers are bit-identical.
* ``benchmarks/bench_install_scaling.py`` and
  ``benchmarks/bench_plan_latency.py`` track the speedups of these paths
  (batch gathering, end-to-end install, per-call prediction).
"""

from repro.adaptive import AdaptationConfig, AdaptationController
from repro.core.compiled import CompiledPredictor
from repro.core.install import install_adsala, InstallationBundle
from repro.core.runtime import AdsalaBlas, AdsalaRuntime
from repro.core.predictor import ThreadPredictor
from repro.machine import get_platform, list_platforms
from repro.serving import ModelRegistry, ServingEngine, ShardedFrontend

__version__ = "1.6.0"

__all__ = [
    "install_adsala",
    "InstallationBundle",
    "AdsalaBlas",
    "AdsalaRuntime",
    "ThreadPredictor",
    "CompiledPredictor",
    "ModelRegistry",
    "ServingEngine",
    "ShardedFrontend",
    "AdaptationConfig",
    "AdaptationController",
    "get_platform",
    "list_platforms",
    "__version__",
]
