"""repro — reproduction of the ADSALA BLAS Level 3 runtime optimiser.

This package reproduces "Machine-Learning-Driven Runtime Optimization of
BLAS Level 3 on Modern Multi-Core Systems" (Xia & Barca, 2024).  It contains

* :mod:`repro.ml` — a from-scratch machine-learning substrate (linear,
  Bayesian, tree, ensemble, kNN and SVR regressors plus model selection),
* :mod:`repro.preprocessing` — Yeo-Johnson, standardisation, LOF outlier
  removal and correlation-based feature pruning,
* :mod:`repro.machine` — analytic multi-core performance models and a timing
  simulator standing in for the Setonix / Gadi supercomputers,
* :mod:`repro.blas` — NumPy reference and blocked multi-threaded
  implementations of all six BLAS Level 3 routines,
* :mod:`repro.core` — the ADSALA contribution: domain sampling, feature
  engineering, data gathering, model selection by estimated speedup, and the
  runtime thread-count predictor,
* :mod:`repro.harness` — drivers that regenerate every table and figure of
  the paper's evaluation section.

Quickstart
----------
>>> from repro import install_adsala, AdsalaBlas
>>> from repro.machine import get_platform
>>> bundle = install_adsala(platform=get_platform("gadi"), routines=["dgemm"],
...                         n_samples=64, seed=0)
>>> blas = AdsalaBlas(bundle)
>>> plan = blas.plan("dgemm", m=256, k=2048, n=64)
>>> plan.threads <= bundle.platform.max_threads
True
"""

from repro.core.install import install_adsala, InstallationBundle
from repro.core.runtime import AdsalaBlas, AdsalaRuntime
from repro.core.predictor import ThreadPredictor
from repro.machine import get_platform, list_platforms

__version__ = "1.0.0"

__all__ = [
    "install_adsala",
    "InstallationBundle",
    "AdsalaBlas",
    "AdsalaRuntime",
    "ThreadPredictor",
    "get_platform",
    "list_platforms",
    "__version__",
]
