"""Shadow evaluation: score a retrained model on real traffic before promoting it.

A candidate model must *prove* itself against the live one before it may
serve.  Executing every request twice (once per model) would double the
machine load, so the evaluator is counterfactual-free: it replays the
telemetry traffic log — the ``(dims, executed threads, observed runtime)``
triples of calls that already ran — through both predictors and compares
each model's *runtime prediction at the executed thread count* against the
measured runtime.  Nothing is executed; both models are scored on exactly
the same ground truth.

Promotion requires two things of the candidate:

* **accuracy** — its mean absolute relative replay error must undercut the
  live model's by at least ``min_error_improvement`` (a candidate that is
  merely different does not get promoted), and
* **latency** — its estimated per-plan evaluation cost (the same analytic
  ``t_eval`` the installer's selection criterion charges, so the check is
  deterministic) must not exceed the live model's by more than
  ``max_latency_regression``.  The measured wall-clock latency of both
  models' *compiled* batch path over the replayed shapes is reported
  alongside for operators, but deliberately kept out of the promotion
  decision so shadow verdicts are reproducible on loaded CI machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.adaptive.config import AdaptationConfig
from repro.core.evalcost import estimate_native_eval_time
from repro.core.predictor import ThreadPredictor
from repro.serving.telemetry import TrafficRecord

__all__ = ["ShadowReport", "ShadowEvaluator"]


@dataclass
class ShadowReport:
    """Verdict of one live-vs-candidate shadow comparison."""

    routine: str
    n_records: int
    live_error: float
    candidate_error: float
    live_eval_us: float
    candidate_eval_us: float
    live_plan_wall_us: float
    candidate_plan_wall_us: float
    accepted: bool
    reasons: List[str] = field(default_factory=list)
    live_model: str = ""
    candidate_model: str = ""

    @property
    def error_improvement(self) -> float:
        """Fractional error reduction of the candidate (negative = worse)."""
        if self.live_error <= 0:
            return 0.0
        return (self.live_error - self.candidate_error) / self.live_error

    @property
    def latency_regression(self) -> float:
        """Fractional estimated-eval-time increase (negative = faster)."""
        if self.live_eval_us <= 0:
            return 0.0
        return (self.candidate_eval_us - self.live_eval_us) / self.live_eval_us

    def to_details(self) -> Dict[str, object]:
        """JSON-serialisable summary for the adaptation audit log."""
        return {
            "records": self.n_records,
            "live_model": self.live_model,
            "candidate_model": self.candidate_model,
            "live_error": round(self.live_error, 6),
            "candidate_error": round(self.candidate_error, 6),
            "error_improvement": round(self.error_improvement, 6),
            "live_eval_us": round(self.live_eval_us, 3),
            "candidate_eval_us": round(self.candidate_eval_us, 3),
            "latency_regression": round(self.latency_regression, 6),
            "accepted": self.accepted,
            "reasons": list(self.reasons),
        }


def _replay_error(
    predictor: ThreadPredictor, records: Sequence[TrafficRecord]
) -> float:
    """Mean |predicted - observed| / observed over the traffic log.

    One batched model evaluation covers every record; each record is scored
    at the thread count that actually executed.
    """
    dims_list = [record.dims for record in records]
    runtimes = predictor.predict_runtimes_batch(dims_list)
    index_of = {threads: i for i, threads in enumerate(predictor.candidate_threads)}
    errors = np.empty(len(records))
    for row, record in enumerate(records):
        predicted = runtimes[row, index_of[record.threads]]
        errors[row] = abs(predicted - record.observed) / record.observed
    return float(errors.mean())


def _estimated_eval_us(predictor: ThreadPredictor) -> float:
    """Analytic per-plan evaluation cost (microseconds) of one predictor."""
    return (
        estimate_native_eval_time(
            predictor.model,
            n_candidates=len(predictor.candidate_threads),
            n_features=int(predictor.pipeline.n_features_out_),
        )
        * 1e6
    )


def _compiled_plan_wall_us(
    predictor: ThreadPredictor, dims_list: Sequence[Dict[str, int]], repeats: int = 3
) -> float:
    """Measured wall-clock of one compiled batched plan pass (per shape, µs)."""
    predictor.compile()
    predictor.predict_runtimes_batch(dims_list)  # warm-up outside the clock
    start = time.perf_counter()
    for _ in range(repeats):
        predictor.predict_runtimes_batch(dims_list)
    elapsed = (time.perf_counter() - start) / repeats
    return elapsed / max(1, len(dims_list)) * 1e6


class ShadowEvaluator:
    """Replay recent traffic through live and candidate models and decide."""

    def __init__(self, config: Optional[AdaptationConfig] = None):
        self.config = config if config is not None else AdaptationConfig()

    def usable_records(
        self, candidate: ThreadPredictor, traffic: Sequence[TrafficRecord]
    ) -> List[TrafficRecord]:
        """Records scoreable by the candidate (executed threads it can rank)."""
        admissible = set(candidate.candidate_threads)
        return [
            record
            for record in traffic
            if record.threads in admissible and record.observed > 0
        ]

    def evaluate(
        self,
        routine: str,
        live: ThreadPredictor,
        candidate: ThreadPredictor,
        traffic: Sequence[TrafficRecord],
    ) -> ShadowReport:
        """Compare the two models on the traffic log and render a verdict."""
        config = self.config
        records = self.usable_records(candidate, traffic)
        records = [r for r in records if r.threads in set(live.candidate_threads)]
        if len(records) < config.shadow_min_records:
            return ShadowReport(
                routine=routine,
                n_records=len(records),
                live_error=0.0,
                candidate_error=0.0,
                live_eval_us=0.0,
                candidate_eval_us=0.0,
                live_plan_wall_us=0.0,
                candidate_plan_wall_us=0.0,
                accepted=False,
                reasons=[
                    f"insufficient traffic: {len(records)} usable records "
                    f"< {config.shadow_min_records} required"
                ],
                live_model=live.model_name,
                candidate_model=candidate.model_name,
            )

        live_error = _replay_error(live, records)
        candidate_error = _replay_error(candidate, records)
        live_eval_us = _estimated_eval_us(live)
        candidate_eval_us = _estimated_eval_us(candidate)
        dims_list = [record.dims for record in records]
        live_wall = _compiled_plan_wall_us(live, dims_list)
        candidate_wall = _compiled_plan_wall_us(candidate, dims_list)

        reasons: List[str] = []
        required_error = live_error * (1.0 - config.min_error_improvement)
        if not candidate_error <= required_error:
            reasons.append(
                f"error not improved: candidate {candidate_error:.4f} > "
                f"required {required_error:.4f} (live {live_error:.4f})"
            )
        allowed_eval = live_eval_us * (1.0 + config.max_latency_regression)
        if candidate_eval_us > allowed_eval:
            reasons.append(
                f"plan latency regressed: candidate {candidate_eval_us:.1f}us > "
                f"allowed {allowed_eval:.1f}us (live {live_eval_us:.1f}us)"
            )
        return ShadowReport(
            routine=routine,
            n_records=len(records),
            live_error=live_error,
            candidate_error=candidate_error,
            live_eval_us=live_eval_us,
            candidate_eval_us=candidate_eval_us,
            live_plan_wall_us=live_wall,
            candidate_plan_wall_us=candidate_wall,
            accepted=not reasons,
            reasons=reasons,
            live_model=live.model_name,
            candidate_model=candidate.model_name,
        )
