"""Synthetic hardware drift for exercising the adaptation loop.

A fitted runtime model drifts when the machine underneath it changes: a
BIOS update caps the clock, a DIMM is replaced and the memory bandwidth
moves, a new kernel changes the scheduler's wake-up latency.  On real
hardware this happens *to* you; in the reproduction environment the
:class:`DriftInjector` does it on purpose, by rescaling the continuous
fields of a :class:`~repro.machine.topology.MachineTopology` (through
:func:`~repro.machine.topology.apply_calibration`) and handing out timing
simulators that measure the *drifted* machine.

The same calibration mapping plays both roles of the loop:

* the **measurement** side — observed runtimes and re-gathered training
  data come from a drifted simulator, and
* the **bookkeeping** side — on promotion the calibration is stamped into
  the bundle manifest's settings, so a reloaded bundle rebuilds its own
  simulator on the drifted machine and the engine's predicted times match
  the new reality (that is what lets the rolling drift error recover).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.simulator import TimingSimulator
from repro.machine.topology import MachineTopology, apply_calibration

__all__ = ["make_calibration", "uniform_time_calibration", "DriftInjector"]

#: Friendly knob name -> topology field scaled by it.
_KNOB_FIELDS = {
    "clock": "clock_ghz",
    "flops": "flops_per_cycle",
    "bandwidth": "memory_bandwidth_gbs_per_socket",
    "copy_bandwidth": "copy_bandwidth_gbs_per_core",
    "sync": "sync_cost_per_thread",
    "fork": "fork_cost_per_thread",
    "cache": "l3_cache_mb_per_group",
}


def make_calibration(**scales: float) -> Dict[str, float]:
    """Build a calibration mapping from friendly knob names.

    ``make_calibration(clock=0.7, sync=3.0)`` describes a machine whose
    clock dropped 30 % and whose synchronisation cost tripled.  Knobs left
    at 1.0 are omitted from the mapping (an empty mapping means "no
    drift").  Knob names: ``clock``, ``flops``, ``bandwidth``,
    ``copy_bandwidth``, ``sync``, ``fork``, ``cache``.
    """
    calibration: Dict[str, float] = {}
    for knob, scale in scales.items():
        if knob not in _KNOB_FIELDS:
            raise ValueError(
                f"Unknown drift knob {knob!r}; available: {sorted(_KNOB_FIELDS)}"
            )
        scale = float(scale)
        if not scale > 0:
            raise ValueError(f"Drift scale for {knob!r} must be positive")
        if scale != 1.0:
            calibration[_KNOB_FIELDS[knob]] = scale
    return calibration


def uniform_time_calibration(scale: float) -> Dict[str, float]:
    """A calibration that rescales *every* cost component by ``scale``.

    The analytic performance model is linear in the calibratable rate/cost
    fields (kernel time ∝ 1/clock, copy time ∝ 1/bandwidth, sync/fork time
    ∝ their per-thread costs), so scaling them jointly multiplies every
    simulated runtime by ``scale``.  This is the first-order correction the
    adaptation controller estimates from telemetry when no explicit
    calibration is known: if observed runtimes run ``r`` times the
    predicted ones, ``uniform_time_calibration(r)`` re-aligns the bundle's
    simulator with the machine as measured.
    """
    scale = float(scale)
    if not scale > 0:
        raise ValueError("scale must be positive")
    if scale == 1.0:
        return {}
    return {
        "clock_ghz": 1.0 / scale,
        "memory_bandwidth_gbs_per_socket": 1.0 / scale,
        "copy_bandwidth_gbs_per_core": 1.0 / scale,
        "sync_cost_per_thread": scale,
        "fork_cost_per_thread": scale,
    }


class DriftInjector:
    """A perturbed view of one platform plus the calibration describing it.

    Parameters
    ----------
    platform:
        The machine as the bundle knows it (uncalibrated).
    calibration:
        Field-name -> scale mapping (see
        :func:`~repro.machine.topology.apply_calibration`), typically built
        with :func:`make_calibration`.
    """

    def __init__(
        self, platform: MachineTopology, calibration: Optional[Dict[str, float]] = None
    ):
        self.base_platform = platform
        self.calibration = dict(calibration or {})
        self.platform = apply_calibration(platform, self.calibration)

    @property
    def drifted(self) -> bool:
        return bool(self.calibration)

    def simulator(self, seed: int = 0, noise_level: float = 0.04) -> TimingSimulator:
        """A timing source measuring the drifted machine.

        Use distinct seeds for distinct roles (the serving observer vs the
        re-gather campaign) so "measured" runtimes carry independent noise,
        exactly as repeated real executions would.
        """
        return TimingSimulator(self.platform, seed=seed, noise_level=noise_level)

    def describe(self) -> Dict[str, object]:
        return {
            "platform": self.base_platform.name,
            "drifted": self.drifted,
            "calibration": dict(self.calibration),
        }
