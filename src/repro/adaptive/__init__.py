"""Closed-loop online adaptation on top of the serving layer.

The paper's premise is that a fitted runtime model is only as good as its
match to the machine and workload it serves.  The serving layer (PR 2)
*detects* the mismatch — rolling observed-vs-predicted error per routine
and a drift flag.  This subpackage *acts* on it:

* :mod:`repro.adaptive.config` — :class:`AdaptationConfig`, every knob of
  the loop in one frozen, reproducible policy object.
* :mod:`repro.adaptive.drift` — :class:`DriftInjector`: synthetic hardware
  drift (rescaled machine parameters) plus the serializable calibration
  mapping that later re-aligns the bundle's own simulator.
* :mod:`repro.adaptive.regather` — budgeted re-gather + retrain for
  drifting routines, seeded from the observed-traffic
  :class:`~repro.serving.telemetry.ShapeHistogram` instead of the static
  training grid, fanned out over :func:`repro.parallel.map_parallel`.
* :mod:`repro.adaptive.shadow` — :class:`ShadowEvaluator`: replay the
  telemetry traffic log through live and candidate models (no double
  execution) and apply explicit promotion criteria (error improvement, no
  plan-latency regression).
* :mod:`repro.adaptive.promote` — :class:`BundlePromoter`: atomic
  versioned promotion through :mod:`repro.core.persistence`, the
  ``adaptation_log.jsonl`` audit trail, and byte-for-byte rollback.
* :mod:`repro.adaptive.controller` — :class:`AdaptationController`, the
  per-routine lifecycle state machine (HEALTHY → DRIFTING → REGATHERING →
  SHADOW → PROMOTED / ROLLED_BACK) tying it all together, exposed on the
  command line as ``adsala adapt`` and ``adsala bundle rollback``.
"""

from repro.adaptive.config import AdaptationConfig
from repro.adaptive.controller import (
    AdaptationController,
    AdaptationReport,
    RoutineLifecycle,
)
from repro.adaptive.drift import DriftInjector, make_calibration
from repro.adaptive.promote import (
    ADAPTATION_LOG_FILE,
    AdaptationLog,
    BundlePromoter,
)
from repro.adaptive.regather import (
    RetrainResult,
    plan_regather_shapes,
    retrain_drifting_routines,
    sampler_settings_from_bundle,
)
from repro.adaptive.shadow import ShadowEvaluator, ShadowReport

__all__ = [
    "AdaptationConfig",
    "AdaptationController",
    "AdaptationReport",
    "RoutineLifecycle",
    "DriftInjector",
    "make_calibration",
    "ADAPTATION_LOG_FILE",
    "AdaptationLog",
    "BundlePromoter",
    "RetrainResult",
    "plan_regather_shapes",
    "retrain_drifting_routines",
    "sampler_settings_from_bundle",
    "ShadowEvaluator",
    "ShadowReport",
]
