"""Budgeted, traffic-seeded re-gather and retrain for drifting routines.

A full installation campaign samples ~80 shapes x 14 thread counts per
routine from a static quasi-random grid.  When a *served* routine drifts,
two things are different: the measurement budget is tighter (the machine is
being timed while it serves traffic), and — unlike at install time — we now
know which shapes the workload actually asks for.  The re-gather therefore

1. seeds a configurable fraction of its (much smaller) shape budget from
   the telemetry :class:`~repro.serving.telemetry.ShapeHistogram`,
   frequency-weighted and jittered so hot shapes seed a neighbourhood, and
2. fills the remainder from the routine's scrambled-Halton
   :class:`~repro.core.sampling.DomainSampler` (same bases, same memory
   cap as the install) so coverage does not collapse onto the recent mix,

then times everything through the existing batched
:class:`~repro.core.gather.DataGatherer` path and refits/model-selects via
:func:`~repro.core.install.fit_routine_installation`.  Several drifting
routines fan out over :func:`repro.parallel.map_parallel` exactly like the
installer, with the same determinism contract: results are bit-identical
for every ``n_jobs``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.adaptive.config import AdaptationConfig
from repro.core.dataset import TimingDataset
from repro.core.gather import DataGatherer
from repro.core.install import RoutineInstallation, fit_routine_installation
from repro.core.sampling import DomainSampler
from repro.machine.simulator import TimingSimulator
from repro.parallel import map_parallel, resolve_n_jobs
from repro.serving.telemetry import ShapeHistogram

__all__ = [
    "RetrainResult",
    "sampler_settings_from_bundle",
    "plan_regather_shapes",
    "retrain_drifting_routines",
]

#: Bundle-manifest settings keys forwarded to the re-gather domain sampler,
#: mapped to the :class:`~repro.core.gather.DataGatherer` parameter names.
_SAMPLER_SETTING_KEYS = {
    "memory_cap_bytes": "memory_cap_bytes",
    "min_dim": "min_dim",
    "max_dim": "max_dim",
    "sampling_scale": "scale",
    "scrambled_sampling": "scrambled",
}


def sampler_settings_from_bundle(settings: Mapping[str, object]) -> Dict[str, object]:
    """Extract the domain-sampler knobs a bundle's install campaign used.

    The re-gather samples the *same* domain the original install did (same
    memory cap, same scale), so retrained and original models are trained
    over comparable supports.
    """
    extracted: Dict[str, object] = {}
    for key, param in _SAMPLER_SETTING_KEYS.items():
        if key in settings and settings[key] is not None:
            extracted[param] = settings[key]
    return extracted


@dataclass
class RetrainResult:
    """Outcome of one routine's re-gather + retrain campaign."""

    routine: str
    installation: RoutineInstallation
    dataset: TimingDataset
    test_shapes: List[Dict[str, int]]
    n_traffic_shapes: int
    n_fresh_shapes: int

    @property
    def model_name(self) -> str:
        return self.installation.best_model_name


def _routine_rng(seed: int, routine: str) -> np.random.Generator:
    """Deterministic per-routine generator (seed + routine bytes)."""
    return np.random.default_rng([int(seed) & 0xFFFFFFFF, *routine.encode()])


def plan_regather_shapes(
    sampler: DomainSampler,
    histogram: ShapeHistogram | None,
    n_shapes: int,
    traffic_fraction: float,
    traffic_jitter: float,
    rng: np.random.Generator,
) -> tuple[List[Dict[str, int]], int, int]:
    """Choose the re-gather problem shapes: traffic-seeded + fresh Halton.

    Returns ``(shapes, n_traffic, n_fresh)``.  Traffic-seeded shapes are
    drawn frequency-weighted from the histogram and jittered per dimension;
    a jittered shape that leaves the admissible domain (memory cap) is
    replaced by a fresh Halton sample instead of being silently dropped, so
    the budget is always spent in full.
    """
    if n_shapes < 1:
        raise ValueError("n_shapes must be positive")
    n_traffic = int(round(traffic_fraction * n_shapes))
    if histogram is None or len(histogram) == 0:
        n_traffic = 0
    shapes: List[Dict[str, int]] = []
    n_seeded = 0
    if n_traffic:
        for dims in histogram.sample(n_traffic, rng):
            jittered = {}
            for name, value in dims.items():
                factor = (
                    rng.uniform(1.0 - traffic_jitter, 1.0 + traffic_jitter)
                    if traffic_jitter > 0
                    else 1.0
                )
                jittered[name] = int(
                    np.clip(round(value * factor), sampler.min_dim, sampler.max_dim)
                )
            if sampler._fits(jittered):
                shapes.append(jittered)
                n_seeded += 1
            else:
                shapes.extend(sampler.sample(1))
    n_fresh = n_shapes - len(shapes)
    if n_fresh > 0:
        shapes.extend(sampler.sample(n_fresh))
    return shapes, n_seeded, n_shapes - n_seeded


def _retrain_one_routine(payload: dict) -> tuple[RetrainResult, int]:
    """Re-gather + retrain one routine (a :func:`map_parallel` worker).

    Returns the result plus the number of simulator evaluations consumed,
    so a pooled caller can fold worker counters back into the parent's.
    """
    routine: str = payload["routine"]
    simulator: TimingSimulator = payload["simulator"]
    config: AdaptationConfig = payload["config"]
    histogram: ShapeHistogram | None = payload["histogram"]
    sampler_settings: Dict[str, object] = payload["sampler_settings"]
    use_yeo_johnson: bool = payload["use_yeo_johnson"]
    evaluations_before = simulator.n_evaluations

    gatherer = DataGatherer(
        simulator=simulator,
        routine=routine,
        n_shapes=config.regather_shapes,
        threads_per_shape=config.regather_threads_per_shape,
        seed=config.seed,
        **sampler_settings,
    )
    rng = _routine_rng(config.seed, routine)
    shapes, n_traffic, n_fresh = plan_regather_shapes(
        gatherer.sampler,
        histogram,
        config.regather_shapes,
        config.traffic_fraction,
        config.traffic_jitter,
        rng,
    )
    dataset = gatherer.gather(shapes=shapes)
    test_shapes = gatherer.gather_test_set(config.regather_test_shapes)

    installation = fit_routine_installation(
        routine=routine,
        dataset=dataset,
        test_shapes=test_shapes,
        simulator=simulator,
        candidate_models=(
            list(config.candidate_models) if config.candidate_models else None
        ),
        tune_hyperparameters=config.tune_hyperparameters,
        use_yeo_johnson=use_yeo_johnson,
        eval_time_mode=config.eval_time_mode,
        seed=config.seed,
        n_jobs=1,
        parallel_backend=config.parallel_backend,
    )
    result = RetrainResult(
        routine=routine,
        installation=installation,
        dataset=dataset,
        test_shapes=test_shapes,
        n_traffic_shapes=n_traffic,
        n_fresh_shapes=n_fresh,
    )
    return result, simulator.n_evaluations - evaluations_before


def retrain_drifting_routines(
    simulator: TimingSimulator,
    routines: Sequence[str],
    histograms: Mapping[str, ShapeHistogram],
    config: AdaptationConfig,
    sampler_settings: Mapping[str, object] | None = None,
    use_yeo_johnson: bool = True,
) -> Dict[str, RetrainResult]:
    """Run the budgeted campaign for every drifting routine.

    ``simulator`` is the *measurement* source — the machine as it behaves
    now (for injected drift, a :class:`~repro.adaptive.drift.DriftInjector`
    simulator), not the bundle's install-time simulator.
    ``use_yeo_johnson`` follows the bundle's recorded install setting, so
    retrained candidates share the preprocessing policy of every other
    model in the bundle.  Campaigns fan out over ``config.n_jobs`` workers;
    the result dict is bit-identical for every worker count.
    """
    if not routines:
        return {}
    n_workers = min(resolve_n_jobs(config.n_jobs), len(routines))
    pooled = n_workers > 1 and config.parallel_backend != "serial"
    payloads = [
        {
            "routine": routine,
            # Pooled workers get private simulator copies (the process
            # backend would fork its own; the thread backend would
            # otherwise race on the shared evaluation counter).
            "simulator": copy.deepcopy(simulator) if pooled else simulator,
            "config": config,
            "histogram": histograms.get(routine),
            "sampler_settings": dict(sampler_settings or {}),
            "use_yeo_johnson": bool(use_yeo_johnson),
        }
        for routine in routines
    ]
    if pooled:
        results = map_parallel(
            _retrain_one_routine,
            payloads,
            n_jobs=n_workers,
            backend=config.parallel_backend,
        )
        simulator.n_evaluations += sum(delta for _, delta in results)
    else:
        results = [_retrain_one_routine(payload) for payload in payloads]
    return {result.routine: result for result, _ in results}
