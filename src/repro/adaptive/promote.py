"""Bundle promotion, audit trail and rollback for the adaptation loop.

Promotion turns an accepted shadow candidate into the *live* model without
restarting the serving engine.  The write protocol is designed around the
registry's hot-reload semantics (a reload may happen at any instant):

1. the current bundle (manifest + every referenced model file) is archived
   byte-for-byte under ``history/v<version>/`` inside the bundle directory,
2. retrained models are staged under **version-suffixed filenames**
   (``dgemm.model.v3.pkl``) the live manifest does not reference, then
3. the manifest — now pointing at the staged files, with ``bundle_version``
   bumped and optionally a new machine ``calibration`` in its settings — is
   swapped in atomically (temp file + ``os.replace``).

A reader therefore sees either the old bundle or the new one, never a
half-promoted state.  Every transition is appended to
``adaptation_log.jsonl`` (read back with the same tolerant JSONL reader the
workload layer uses), and :meth:`BundlePromoter.rollback` restores any
archived version byte-for-byte — the one-command escape hatch when a
promotion turns out to be wrong in production.
"""

from __future__ import annotations

import re
import shutil
import time
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.install import RoutineInstallation
from repro.core.persistence import (
    BundleFormatError,
    read_manifest,
    write_manifest,
    write_routine_model,
)
from repro.obs.journal import append_jsonl, read_jsonl

__all__ = ["ADAPTATION_LOG_FILE", "HISTORY_DIR", "AdaptationLog", "BundlePromoter"]

ADAPTATION_LOG_FILE = "adaptation_log.jsonl"
HISTORY_DIR = "history"


class AdaptationLog:
    """Append-only JSONL audit trail of adaptation events for one bundle.

    Events carry ``event`` (``drift_detected``, ``regathered``, ``shadow``,
    ``promoted``, ``rejected``, ``rolled_back``), usually a ``routine``, the
    lifecycle ``state`` the routine entered, and free-form ``details``.  The
    reader is tolerant: a line corrupted by a crash mid-append is skipped
    with a warning instead of taking the whole trail down.
    """

    def __init__(self, path: str | Path, clock: Callable[[], float] = time.time):
        self.path = Path(path)
        self.clock = clock

    def append(
        self,
        event: str,
        routine: Optional[str] = None,
        state: Optional[str] = None,
        **details: object,
    ) -> Dict[str, object]:
        row: Dict[str, object] = {"event": event, "ts": round(self.clock(), 6)}
        if routine is not None:
            row["routine"] = routine
        if state is not None:
            row["state"] = state
        if details:
            row["details"] = details
        append_jsonl(self.path, row)
        return row

    def events(self) -> List[Dict[str, object]]:
        if not self.path.exists():
            return []
        return [row for _, row in read_jsonl(self.path)]

    def last_event(
        self, routine: Optional[str] = None, event: Optional[str] = None
    ) -> Optional[Dict[str, object]]:
        """Most recent event, optionally filtered by routine and/or type."""
        for row in reversed(self.events()):
            if routine is not None and row.get("routine") != routine:
                continue
            if event is not None and row.get("event") != event:
                continue
            return row
        return None

    def per_routine_state(self) -> Dict[str, Dict[str, object]]:
        """Latest event per routine (what ``adsala serve --observe`` shows)."""
        states: Dict[str, Dict[str, object]] = {}
        for row in self.events():
            routine = row.get("routine")
            if isinstance(routine, str):
                states[routine] = row
        return states


class BundlePromoter:
    """Versioned promotion and rollback over one on-disk bundle directory."""

    def __init__(
        self, directory: str | Path, clock: Callable[[], float] = time.time
    ):
        self.directory = Path(directory)
        self.log = AdaptationLog(self.directory / ADAPTATION_LOG_FILE, clock=clock)

    # -- introspection -----------------------------------------------------------
    def manifest(self) -> dict:
        return read_manifest(self.directory)

    def current_version(self) -> int:
        return int(self.manifest().get("bundle_version", 1))

    def archived_versions(self) -> List[int]:
        """Bundle versions available for rollback, oldest first."""
        history = self.directory / HISTORY_DIR
        if not history.is_dir():
            return []
        versions = []
        for child in history.iterdir():
            if child.is_dir() and child.name.startswith("v"):
                try:
                    versions.append(int(child.name[1:]))
                except ValueError:
                    continue
        return sorted(versions)

    # -- archival ----------------------------------------------------------------
    def _archive_dir(self, version: int) -> Path:
        return self.directory / HISTORY_DIR / f"v{int(version)}"

    def snapshot_current(self) -> Path:
        """Archive the live manifest + referenced model files byte-for-byte.

        Idempotent per version: an existing archive of the current version is
        the authoritative copy of those bytes and is left untouched.
        """
        manifest = self.manifest()
        version = int(manifest.get("bundle_version", 1))
        target = self._archive_dir(version)
        if target.exists():
            return target
        staging = target.with_name(target.name + ".tmp")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        shutil.copy2(self.directory / "bundle.json", staging / "bundle.json")
        for routine, meta in manifest["routines"].items():
            model_file = meta.get("model_file", f"{routine}.model.pkl")
            source = self.directory / model_file
            if not source.exists():
                shutil.rmtree(staging)
                raise BundleFormatError(
                    f"Cannot archive bundle v{version}: model file "
                    f"{model_file!r} for routine {routine!r} is missing"
                )
            shutil.copy2(source, staging / model_file)
        staging.rename(target)
        return target

    # -- promotion ---------------------------------------------------------------
    def promote(
        self,
        installations: Mapping[str, RoutineInstallation],
        settings_update: Optional[Mapping[str, object]] = None,
        details: Optional[Mapping[str, Mapping[str, object]]] = None,
        reason: str = "drift adaptation",
    ) -> int:
        """Write retrained routines as the next ``bundle_version`` and log it.

        ``installations`` maps routine keys to their retrained
        :class:`~repro.core.install.RoutineInstallation`; unlisted routines
        keep their current model files untouched.  ``settings_update`` is
        merged into the manifest settings (the adaptation controller stamps
        the machine ``calibration`` here so the reloaded bundle's simulator
        predicts on the drifted machine).  Returns the new version.
        """
        if not installations:
            raise ValueError("installations must not be empty")
        manifest = self.manifest()
        installed = manifest["routines"]
        unknown = sorted(set(installations) - set(installed))
        if unknown:
            raise KeyError(
                f"Cannot promote routines not in the bundle: {unknown}; "
                f"installed: {sorted(installed)}"
            )
        from_version = int(manifest.get("bundle_version", 1))
        # Never reuse a version number: after a rollback the current version
        # is lower than the newest archive, and reusing e.g. "v2" for new
        # content would collide with the archived v2 bytes (breaking the
        # byte-for-byte rollback guarantee for whichever v2 loses).
        new_version = max([from_version, *self.archived_versions()]) + 1
        self.snapshot_current()
        for routine, installation in sorted(installations.items()):
            meta = write_routine_model(
                self.directory,
                installation,
                filename=f"{routine}.model.v{new_version}.pkl",
            )
            installed[routine] = meta
        manifest["bundle_version"] = new_version
        if settings_update:
            settings = dict(manifest.get("settings") or {})
            settings.update(settings_update)
            manifest["settings"] = settings
        write_manifest(self.directory, manifest)
        self._prune_staged_models(manifest, keep_versions={new_version, from_version})
        for routine in sorted(installations):
            routine_details: Dict[str, object] = {
                "from_version": from_version,
                "to_version": new_version,
                "model": installations[routine].best_model_name,
                "reason": reason,
            }
            if details and routine in details:
                routine_details.update(details[routine])
            self.log.append(
                "promoted", routine=routine, state="promoted", **routine_details
            )
        return new_version

    _STAGED_MODEL_RE = re.compile(r"\.model\.v(\d+)\.pkl$")

    def _prune_staged_models(self, manifest: dict, keep_versions: set) -> None:
        """Drop live-dir staged model files superseded at least two swaps ago.

        Every staged file was referenced by the manifest current at its
        creation and archived (byte-for-byte) before that manifest was
        replaced, so deleting it loses nothing — rollback restores from
        ``history/``.  Files from the *immediately previous* version are
        kept: a reader that loaded the pre-swap manifest may still lazily
        open them until its next refresh.  Without this, a long-running
        watch loop would accumulate one model file per routine per
        promotion in the live directory forever.
        """
        referenced = {
            meta.get("model_file") for meta in manifest["routines"].values()
        }
        for path in self.directory.glob("*.model.v*.pkl"):
            match = self._STAGED_MODEL_RE.search(path.name)
            if match is None or path.name in referenced:
                continue
            if int(match.group(1)) not in keep_versions:
                path.unlink(missing_ok=True)

    # -- rollback ----------------------------------------------------------------
    def rollback(self, to_version: Optional[int] = None) -> int:
        """Restore an archived bundle version byte-for-byte and log it.

        Defaults to the most recent archived version below the current one.
        The current version is archived first, so a rollback can itself be
        rolled forward.  The restored manifest is swapped in atomically
        *after* its model files are back in place, preserving the
        reload-at-any-instant guarantee.
        """
        current = self.current_version()
        available = [v for v in self.archived_versions() if v != current]
        if to_version is None:
            candidates = [v for v in available if v < current]
            if not candidates:
                raise ValueError(
                    f"No archived version below the current v{current}; "
                    f"archived: {self.archived_versions()}"
                )
            to_version = max(candidates)
        to_version = int(to_version)
        if to_version == current:
            raise ValueError(f"Bundle is already at version v{to_version}")
        source = self._archive_dir(to_version)
        if not source.is_dir():
            raise ValueError(
                f"Bundle version v{to_version} is not archived; "
                f"archived: {self.archived_versions()}"
            )
        self.snapshot_current()
        archived_manifest = read_manifest(source)
        for routine, meta in archived_manifest["routines"].items():
            model_file = meta.get("model_file", f"{routine}.model.pkl")
            shutil.copy2(source / model_file, self.directory / model_file)
        # Byte-for-byte: copy the archived manifest via a temp file + rename
        # rather than re-serialising it.
        tmp = self.directory / "bundle.json.tmp"
        shutil.copy2(source / "bundle.json", tmp)
        tmp.replace(self.directory / "bundle.json")
        self.log.append(
            "rolled_back",
            state="rolled_back",
            from_version=current,
            to_version=to_version,
            routines=sorted(archived_manifest["routines"]),
        )
        return to_version
