"""Tunables of the closed adaptation loop.

One frozen dataclass carries every knob the loop needs, so a controller, a
CLI invocation and a test can share an identical, hashable description of an
adaptation policy.  The defaults describe a *budgeted* loop: a re-gather
campaign an order of magnitude smaller than a full install (the drifted
machine is being measured while it serves traffic), a conservative promotion
bar (the candidate must be clearly better, not merely different) and a
deterministic seed so any adaptation run can be replayed bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["AdaptationConfig"]


@dataclass(frozen=True)
class AdaptationConfig:
    """Policy knobs for one :class:`~repro.adaptive.controller.AdaptationController`.

    Parameters
    ----------
    seed:
        Flows into every stochastic step (traffic-shape sampling and jitter,
        train/test splits, model fits), making adaptation runs reproducible:
        two runs over identical telemetry produce bit-identical retrained
        bundles.
    regather_shapes:
        Problem-shape budget of the incremental re-gather campaign (a full
        install uses ~80; the adaptive loop measures the live machine, so it
        stays an order of magnitude cheaper).
    regather_threads_per_shape:
        Thread counts timed per re-gathered shape.
    regather_test_shapes:
        Held-out shapes for the retrain's model selection.
    traffic_fraction:
        Fraction of the shape budget seeded from the observed-traffic
        :class:`~repro.serving.telemetry.ShapeHistogram` (frequency-weighted,
        with multiplicative jitter); the remainder comes fresh from the
        routine's scrambled-Halton domain sampler so the model does not
        overfit the recent workload.
    traffic_jitter:
        Half-width of the uniform multiplicative jitter applied per dimension
        to traffic-seeded shapes (0.1 = each dimension scaled by a factor in
        [0.9, 1.1]), so a hot shape seeds a neighbourhood rather than one
        duplicated row.
    candidate_models:
        Candidate pool for the retrain (``None`` = the full Table II pool).
    tune_hyperparameters, eval_time_mode:
        Passed through to :func:`repro.core.install.fit_routine_installation`.
        The default ``"native"`` eval-time mode keeps retraining fully
        deterministic (no wall-clock measurement feeds model selection).
    min_error_improvement:
        Shadow-promotion bar: the candidate's mean replay error must be at
        least this fraction below the live model's
        (``candidate <= live * (1 - min_error_improvement)``).
    max_latency_regression:
        The candidate's estimated per-plan evaluation time may exceed the
        live model's by at most this fraction (a more accurate but much
        slower model is not a win on the serving hot path).
    shadow_min_records:
        Minimum usable traffic records required before a shadow verdict is
        trusted; with fewer, the candidate is rejected (better to keep a
        known model than to promote on anecdote).
    auto_calibrate:
        When no explicit machine calibration is known, estimate a
        first-order uniform one from telemetry (the median observed/
        predicted runtime ratio of the promoted routines' traffic) and
        stamp it on promotion, so the reloaded bundle's simulator — the
        engine's predicted-time source — tracks the machine as measured.
        Without it, promotions driven by real (un-modelled) drift would
        improve thread choices but leave the rolling drift error lit.
    auto_calibrate_tolerance:
        Dead-band around 1.0: estimated ratios within it are treated as
        noise and stamp no calibration.
    max_routines_per_step:
        Upper bound on drifting routines re-gathered in one controller step
        (bounds the measurement budget a single step may spend).
    n_jobs, parallel_backend:
        Fan the per-routine re-gather/retrain campaigns out over
        :func:`repro.parallel.map_parallel`, exactly like the installer.
    """

    seed: int = 0
    regather_shapes: int = 24
    regather_threads_per_shape: int = 6
    regather_test_shapes: int = 10
    traffic_fraction: float = 0.5
    traffic_jitter: float = 0.1
    candidate_models: Optional[Tuple[str, ...]] = None
    tune_hyperparameters: bool = False
    eval_time_mode: str = "native"
    min_error_improvement: float = 0.05
    max_latency_regression: float = 0.5
    shadow_min_records: int = 8
    auto_calibrate: bool = True
    auto_calibrate_tolerance: float = 0.05
    max_routines_per_step: int = 4
    n_jobs: Optional[int] = 1
    parallel_backend: str = "process"

    def __post_init__(self):
        if self.regather_shapes < 2:
            raise ValueError("regather_shapes must be at least 2")
        if self.regather_threads_per_shape < 1:
            raise ValueError("regather_threads_per_shape must be at least 1")
        if self.regather_test_shapes < 1:
            raise ValueError("regather_test_shapes must be at least 1")
        if not 0.0 <= self.traffic_fraction <= 1.0:
            raise ValueError("traffic_fraction must be in [0, 1]")
        if not 0.0 <= self.traffic_jitter < 1.0:
            raise ValueError("traffic_jitter must be in [0, 1)")
        if self.eval_time_mode not in ("native", "measured"):
            raise ValueError("eval_time_mode must be 'native' or 'measured'")
        if not 0.0 <= self.min_error_improvement < 1.0:
            raise ValueError("min_error_improvement must be in [0, 1)")
        if self.max_latency_regression < 0:
            raise ValueError("max_latency_regression must be non-negative")
        if self.shadow_min_records < 1:
            raise ValueError("shadow_min_records must be at least 1")
        if self.auto_calibrate_tolerance < 0:
            raise ValueError("auto_calibrate_tolerance must be non-negative")
        if self.max_routines_per_step < 1:
            raise ValueError("max_routines_per_step must be at least 1")
        if self.candidate_models is not None:
            object.__setattr__(
                self, "candidate_models", tuple(self.candidate_models)
            )
