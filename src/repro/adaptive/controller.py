"""The closed-loop adaptation controller (drift → re-gather → shadow → promote).

PR 2 gave the serving engine *eyes*: rolling observed-vs-predicted error per
routine and a drift flag (:meth:`~repro.serving.engine.ServingEngine.reinstall_candidates`).
This module gives it *hands*.  The :class:`AdaptationController` drives a
per-routine lifecycle state machine::

    HEALTHY ──drift flag──▶ DRIFTING ──▶ REGATHERING ──▶ SHADOW ──▶ PROMOTED
       ▲                                                   │            │
       └────────── error window recovers ◀─────────────────┴─▶ ROLLED_BACK

One :meth:`AdaptationController.step` runs the whole cycle for every
currently drifting routine: a budgeted, traffic-seeded re-gather on the
*measured* (possibly drifted) machine, a retrain with the installer's own
model-selection criterion, a counterfactual-free shadow comparison against
the live model, and — when the candidate clears the promotion bar — an
atomic bundle promotion followed by an engine hot-reload, telemetry window
reset and audit-log entry.  Candidates that fail shadow are discarded
(``ROLLED_BACK``) and the routine stays eligible for the next cycle; a
promoted bundle can later be restored byte-for-byte with
:meth:`AdaptationController.rollback`.

The controller is deliberately synchronous and single-threaded: it runs
*between* serving flushes (or in a sidecar process watching the same bundle
directory), mirroring the engine's own lock-free design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.adaptive.config import AdaptationConfig
from repro.adaptive.drift import uniform_time_calibration
from repro.adaptive.promote import BundlePromoter
from repro.adaptive.regather import (
    RetrainResult,
    retrain_drifting_routines,
    sampler_settings_from_bundle,
)
from repro.adaptive.shadow import ShadowEvaluator, ShadowReport
from repro.machine.simulator import TimingSimulator
from repro.serving.engine import ServingEngine

__all__ = ["RoutineLifecycle", "AdaptationReport", "AdaptationController"]


class RoutineLifecycle(str, Enum):
    """Adaptation lifecycle of one served routine."""

    HEALTHY = "healthy"
    DRIFTING = "drifting"
    REGATHERING = "regathering"
    SHADOW = "shadow"
    PROMOTED = "promoted"
    ROLLED_BACK = "rolled_back"


@dataclass
class AdaptationReport:
    """What one controller step did, routine by routine."""

    drifting: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    retrained: Dict[str, RetrainResult] = field(default_factory=dict)
    shadow: Dict[str, ShadowReport] = field(default_factory=dict)
    promoted: List[str] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)
    recovered: List[str] = field(default_factory=list)
    new_version: Optional[int] = None
    reloaded: bool = False
    calibration: Dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def acted(self) -> bool:
        return bool(self.drifting or self.skipped or self.promoted or self.rejected)

    def summary(self) -> str:
        if not self.acted:
            return "no routine drifting; nothing to do"
        parts = [f"drifting: {', '.join(self.drifting) or '-'}"]
        if self.skipped:
            parts.append(
                f"skipped (no installed model, full install required): "
                f"{', '.join(self.skipped)}"
            )
        if self.promoted:
            parts.append(
                f"promoted: {', '.join(self.promoted)} -> bundle v{self.new_version}"
            )
        if self.rejected:
            parts.append(f"rejected in shadow: {', '.join(self.rejected)}")
        if self.recovered:
            parts.append(f"recovered: {', '.join(self.recovered)}")
        return "; ".join(parts)


class AdaptationController:
    """Close the loop between a serving engine's telemetry and its bundle.

    Parameters
    ----------
    engine:
        The live :class:`~repro.serving.engine.ServingEngine`.  For
        promotion the engine must serve a directory-backed
        :class:`~repro.serving.registry.BundleHandle` (hot reload needs a
        manifest on disk); purely in-memory bundles can still be *watched*
        but ``step()`` raises when a promotion would be required.
    config:
        The :class:`~repro.adaptive.config.AdaptationConfig` policy.
    measurement_simulator:
        Timing source for the re-gather — the machine as it behaves *now*.
        Defaults to the engine's own simulator (no drift); tests and the
        CLI inject a :class:`~repro.adaptive.drift.DriftInjector` simulator
        here.
    calibration:
        Machine-calibration mapping describing the measured drift (see
        :func:`repro.machine.topology.apply_calibration`).  Stamped into
        the bundle settings on promotion, so the reloaded bundle's own
        simulator predicts on the drifted machine.
    promoter:
        Override the :class:`~repro.adaptive.promote.BundlePromoter`
        (defaults to one over the engine source's directory).
    clock:
        Injectable time source for the audit log (tests pin it for
        reproducible trails).
    """

    def __init__(
        self,
        engine: ServingEngine,
        config: Optional[AdaptationConfig] = None,
        measurement_simulator: Optional[TimingSimulator] = None,
        calibration: Optional[Mapping[str, float]] = None,
        promoter: Optional[BundlePromoter] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.engine = engine
        self.config = config if config is not None else AdaptationConfig()
        self._measurement_simulator = measurement_simulator
        self.calibration = dict(calibration or {})
        if promoter is None:
            directory = getattr(engine.source, "directory", None)
            promoter = (
                BundlePromoter(directory, clock=clock)
                if directory is not None
                else None
            )
        self.promoter = promoter
        self.shadow_evaluator = ShadowEvaluator(self.config)
        self._states: Dict[str, RoutineLifecycle] = {}
        # Routines already logged as unadaptable (no installed model) — an
        # in-memory dedup so a watch loop does not re-parse the growing
        # audit log, nor re-log the same fact, every step.
        self._unadaptable_logged: set[str] = set()

    @property
    def measurement_simulator(self) -> TimingSimulator:
        """The re-gather timing source.

        When none was injected, this is the engine source's *current*
        simulator — read at use time, not captured at construction, so a
        promotion that stamps a calibration immediately re-aims subsequent
        re-gathers at the calibrated machine view.
        """
        if self._measurement_simulator is not None:
            return self._measurement_simulator
        return self.engine.source.simulator

    # -- state access ------------------------------------------------------------
    def state(self, routine: str) -> RoutineLifecycle:
        return self._states.get(routine, RoutineLifecycle.HEALTHY)

    def states(self) -> Dict[str, str]:
        """Lifecycle per routine the engine's telemetry has seen."""
        return {
            routine: self.state(routine).value
            for routine in self.engine.telemetry.routines
        }

    def _transition(self, routine: str, state: RoutineLifecycle) -> None:
        self._states[routine] = state

    # -- the loop ----------------------------------------------------------------
    def _mark_recovered(self, report: AdaptationReport) -> None:
        """PROMOTED/ROLLED_BACK routines whose error window healed go HEALTHY."""
        telemetry = self.engine.telemetry
        for routine, state in list(self._states.items()):
            if state not in (RoutineLifecycle.PROMOTED, RoutineLifecycle.ROLLED_BACK):
                continue
            routine_telemetry = telemetry.routines.get(routine)
            if routine_telemetry is None:
                continue
            if len(
                routine_telemetry.errors
            ) >= telemetry.min_observations and not routine_telemetry.drifting(
                telemetry.drift_threshold, telemetry.min_observations
            ):
                self._transition(routine, RoutineLifecycle.HEALTHY)
                report.recovered.append(routine)

    def _promotion_calibration(self, routines: List[str]) -> Dict[str, float]:
        """The machine calibration to stamp alongside a promotion.

        An explicitly injected calibration (the operator measured the drift)
        wins.  Otherwise, with ``config.auto_calibrate``, a first-order
        uniform correction is estimated from telemetry: the engine's
        predicted times come from the bundle simulator, so the median
        observed/predicted ratio over the promoted routines' traffic says
        how far that simulator runs from the machine as measured.  Without
        *some* calibration a promotion can improve thread choices but never
        move the rolling drift error, and the loop would retrain forever.
        """
        if self.calibration:
            return dict(self.calibration)
        if not self.config.auto_calibrate:
            return {}
        ratios = [
            record.observed / record.predicted
            for routine in routines
            for record in self.engine.telemetry.routines[routine].traffic
            if record.predicted > 0 and record.observed > 0
        ]
        if not ratios:
            return {}
        ratio = float(np.median(ratios))
        if abs(ratio - 1.0) <= self.config.auto_calibrate_tolerance:
            return {}
        # Compound with any calibration the bundle already carries, so a
        # second drift episode corrects relative to the *current* settings.
        existing = dict(
            (getattr(self.engine.source, "settings", None) or {}).get("calibration")
            or {}
        )
        estimated = uniform_time_calibration(ratio)
        for field_name, scale in estimated.items():
            estimated[field_name] = scale * existing.pop(field_name, 1.0)
        estimated.update(existing)
        return estimated

    def step(self) -> AdaptationReport:
        """Run one full adaptation cycle over the current drift flags."""
        start = time.perf_counter()
        report = AdaptationReport()
        config = self.config
        log = self.promoter.log if self.promoter is not None else None

        self._mark_recovered(report)

        drifting = self.engine.reinstall_candidates()
        # The serving fallback chain answers *uninstalled* routines with the
        # max-threads heuristic, so they accumulate drift error too — but
        # there is no live model to shadow against or replace; adapting
        # them means a full install, which is out of this loop's budget.
        installed = getattr(self.engine.source, "routines", {})
        report.skipped = [
            routine for routine in drifting if routine not in installed
        ]
        drifting = [routine for routine in drifting if routine in installed]
        if log is not None:
            for routine in report.skipped:
                if routine not in self._unadaptable_logged:
                    self._unadaptable_logged.add(routine)
                    log.append(
                        "drift_unadaptable",
                        routine=routine,
                        state=self.state(routine).value,
                        reason="no installed model; run a full install",
                    )
        for routine in drifting:
            # Any non-DRIFTING state re-enters DRIFTING: a routine left in
            # REGATHERING/SHADOW by a step that died mid-cycle must not be
            # stranded there forever.
            if self.state(routine) is not RoutineLifecycle.DRIFTING:
                self._transition(routine, RoutineLifecycle.DRIFTING)
                if log is not None:
                    snapshot = self.engine.telemetry.drift_report(routine) or {}
                    log.append(
                        "drift_detected",
                        routine=routine,
                        state=RoutineLifecycle.DRIFTING.value,
                        rolling_error=round(
                            float(snapshot.get("mean_abs_rel_error", 0.0)), 6
                        ),
                        threshold=self.engine.telemetry.drift_threshold,
                    )
        report.drifting = [
            routine
            for routine in drifting
            if self.state(routine) is RoutineLifecycle.DRIFTING
        ]
        work = report.drifting[: config.max_routines_per_step]
        if not work:
            report.wall_time_s = time.perf_counter() - start
            return report

        # -- re-gather + retrain (fans out per routine) -----------------------
        for routine in work:
            self._transition(routine, RoutineLifecycle.REGATHERING)
        histograms = {
            routine: self.engine.telemetry.routines[routine].shapes
            for routine in work
            if routine in self.engine.telemetry.routines
        }
        settings = dict(getattr(self.engine.source, "settings", None) or {})
        results = retrain_drifting_routines(
            self.measurement_simulator,
            work,
            histograms,
            config,
            sampler_settings=sampler_settings_from_bundle(settings),
            use_yeo_johnson=bool(settings.get("use_yeo_johnson", True)),
        )
        report.retrained = results
        if log is not None:
            for routine, result in results.items():
                log.append(
                    "regathered",
                    routine=routine,
                    state=RoutineLifecycle.REGATHERING.value,
                    rows=len(result.dataset),
                    traffic_shapes=result.n_traffic_shapes,
                    fresh_shapes=result.n_fresh_shapes,
                    model=result.model_name,
                )

        # -- shadow evaluation -------------------------------------------------
        to_promote: Dict[str, RetrainResult] = {}
        for routine, result in results.items():
            self._transition(routine, RoutineLifecycle.SHADOW)
            live = self.engine.source.predictor(routine)
            traffic = self.engine.telemetry.routines[routine].traffic
            verdict = self.shadow_evaluator.evaluate(
                routine, live, result.installation.predictor, traffic
            )
            report.shadow[routine] = verdict
            if log is not None:
                log.append(
                    "shadow",
                    routine=routine,
                    state=RoutineLifecycle.SHADOW.value,
                    **verdict.to_details(),
                )
            if verdict.accepted:
                to_promote[routine] = result
            else:
                self._transition(routine, RoutineLifecycle.ROLLED_BACK)
                report.rejected.append(routine)
                if log is not None:
                    log.append(
                        "rejected",
                        routine=routine,
                        state=RoutineLifecycle.ROLLED_BACK.value,
                        reasons=verdict.reasons,
                    )

        # -- promotion + hot reload -------------------------------------------
        if to_promote:
            if self.promoter is None:
                raise RuntimeError(
                    "Promotion requires a directory-backed bundle source "
                    "(a serving BundleHandle) or an explicit promoter"
                )
            promotion_calibration = self._promotion_calibration(list(to_promote))
            report.calibration = dict(promotion_calibration)
            settings_update = (
                {"calibration": promotion_calibration}
                if promotion_calibration
                else None
            )
            report.new_version = self.promoter.promote(
                {
                    routine: result.installation
                    for routine, result in to_promote.items()
                },
                settings_update=settings_update,
                details={
                    routine: report.shadow[routine].to_details()
                    for routine in to_promote
                },
            )
            report.reloaded = self.engine.reload_source()
            for routine in to_promote:
                self.engine.telemetry.reset_routine(routine)
                self._transition(routine, RoutineLifecycle.PROMOTED)
                report.promoted.append(routine)
        report.promoted.sort()
        report.wall_time_s = time.perf_counter() - start
        return report

    # -- rollback ----------------------------------------------------------------
    def rollback(self, to_version: Optional[int] = None) -> int:
        """Restore an archived bundle version and hot-reload the engine."""
        if self.promoter is None:
            raise RuntimeError("Rollback requires a directory-backed bundle source")
        restored = self.promoter.rollback(to_version)
        self.engine.reload_source()
        for routine in list(self.engine.telemetry.routines):
            self.engine.telemetry.reset_routine(routine)
            self._transition(routine, RoutineLifecycle.ROLLED_BACK)
        return restored
