"""Process/thread fan-out helpers for the installation pipeline.

The ADSALA installer is embarrassingly parallel at three levels: routines
(each routine's campaign is independent), candidate models (each candidate
is fitted and scored independently) and cross-validation folds / grid-search
parameter combinations.  :func:`map_parallel` is the single primitive behind
all three fan-outs (:func:`repro.core.install.install_adsala`,
:func:`repro.core.selection.evaluate_candidates`,
:func:`repro.ml.model_selection.cross_val_score` and
:class:`repro.ml.model_selection.GridSearchCV`).

Determinism contract
--------------------
Workers receive explicit seeds through their payloads and never consult
global random state, so the result list is **bit-identical** for every
``n_jobs`` value and backend — parallelism changes only the wall-clock time.
Results are always returned in the order of ``items``.

Job-count resolution
--------------------
``n_jobs=None`` falls back to the ``ADSALA_JOBS`` environment variable
(default 1, i.e. serial); ``n_jobs=-1`` uses every available core.  The
``"process"`` backend (default) sidesteps the GIL for the CPU-bound model
fitting; ``"thread"`` suits workloads dominated by NumPy calls that release
the GIL; ``"serial"`` forces in-process execution regardless of ``n_jobs``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, TypeVar

__all__ = [
    "ADSALA_JOBS_ENV",
    "ADSALA_MP_START_ENV",
    "resolve_n_jobs",
    "map_parallel",
    "worker_context",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``n_jobs`` is ``None``.
ADSALA_JOBS_ENV = "ADSALA_JOBS"

#: Environment variable overriding the worker-process start method.
ADSALA_MP_START_ENV = "ADSALA_MP_START"

_BACKENDS = ("process", "thread", "serial")


def worker_context(start_method: str | None = None) -> multiprocessing.context.BaseContext:
    """The multiprocessing context for long-lived serving workers.

    Defaults to ``spawn``: the serving frontend launches shard workers
    lazily, *after* its drain threads exist, and forking a multi-threaded
    parent is undefined behaviour waiting to happen (locks held by threads
    that do not exist in the child).  Spawn also keeps the process backend
    honest — nothing reaches a worker except what is pickled explicitly or
    mapped from shared memory.  Override with ``start_method=`` or the
    ``$ADSALA_MP_START`` environment variable (e.g. ``fork`` to trade
    safety for startup latency on platforms where that is acceptable).
    """
    if start_method is None:
        start_method = os.environ.get(ADSALA_MP_START_ENV, "").strip() or "spawn"
    try:
        return multiprocessing.get_context(start_method)
    except ValueError:
        raise ValueError(
            f"Unknown multiprocessing start method {start_method!r}; "
            f"available: {multiprocessing.get_all_start_methods()}"
        ) from None


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` request to a concrete positive worker count.

    ``None`` reads ``$ADSALA_JOBS`` (default 1); any negative value means
    "all cores".  Zero is rejected.
    """
    if n_jobs is None:
        raw = os.environ.get(ADSALA_JOBS_ENV, "").strip()
        if raw:
            try:
                n_jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"${ADSALA_JOBS_ENV} must be an integer worker count "
                    f"(e.g. 4 or -1 for all cores), got {raw!r}"
                ) from None
        else:
            n_jobs = 1
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    if n_jobs == 0:
        raise ValueError("n_jobs must be a non-zero integer (or None)")
    return n_jobs


def map_parallel(
    func: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int | None = None,
    backend: str = "process",
) -> List[R]:
    """Apply ``func`` to every item, optionally across a worker pool.

    Parameters
    ----------
    func:
        A picklable (module-level) callable for the process backend; any
        callable for the thread/serial backends.
    items:
        Work items; each must be picklable under the process backend.
    n_jobs:
        Worker count (see :func:`resolve_n_jobs`).  The pool is never larger
        than ``len(items)``; ``n_jobs=1`` short-circuits to a plain loop with
        no pool, no pickling and no subprocess.
    backend:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.

    Returns
    -------
    list
        ``[func(item) for item in items]`` — same order, same values,
        whatever the backend.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"Unknown backend {backend!r}; expected one of {_BACKENDS}")
    items = list(items)
    n_workers = min(resolve_n_jobs(n_jobs), len(items))
    if backend == "serial" or n_workers <= 1:
        return [func(item) for item in items]
    executor_cls = ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
    with executor_cls(max_workers=n_workers) as executor:
        return list(executor.map(func, items))
