"""Process-wide metrics registry with Prometheus-text and JSON export.

The registry holds metric *families* (one name + help + type + label
names), each of which owns one child series per distinct label-value
tuple.  Three primitives cover the serving stack's needs:

* :class:`Counter` — monotone float.  ``inc()`` for in-process
  instrumentation; ``set_total()`` for *collected* counters that mirror a
  monotone upstream counter (the serving stack's ``stats()`` snapshots);
  a collected value below the current one is treated as a Prometheus
  counter reset (e.g. a restarted shard), not an error.
* :class:`Gauge` — a float that can go anywhere (queue depth, in-flight).
* :class:`Histogram` — fixed cumulative buckets over
  :class:`BucketHistogram` state, exposed Prometheus-style
  (``_bucket{le=...}`` / ``_sum`` / ``_count``) with interpolated
  :meth:`~BucketHistogram.quantile` for p50/p99 readouts.

Exposition: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text format (version 0.0.4); :meth:`MetricsRegistry.snapshot`
the equivalent JSON document.  :class:`MetricsServer` serves both from a
stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon thread
(``/metrics``, ``/metrics.json``, ``/healthz``), invoking an optional
``collector`` callable before each scrape so the registry reflects the
live serving stack at scrape time.

Thread-safety model
-------------------
One re-entrant lock per :class:`MetricsRegistry` serialises family
registration, every child mutation made through the family accessors, and
both exports — a scrape observes a consistent point-in-time view.
Individual :class:`BucketHistogram` instances embedded in other owners
(e.g. per-routine telemetry) carry **no** lock of their own and inherit
their owner's discipline, exactly like the rest of
:mod:`repro.serving.telemetry` (mutated only under the engine lock).
"""

from __future__ import annotations

import bisect
import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "BucketHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "merge_histogram_snapshots",
]

#: Fixed plan-latency buckets (seconds): 10 µs .. 1 s, log-ish spaced.
#: Wide enough for a cold compiled plan (~150 µs) and a full re-simulated
#: micro-batch; fine enough that p50/p99 interpolation stays meaningful.
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
)


class BucketHistogram:
    """Fixed-bucket histogram state: counts per upper bound, sum, count.

    Buckets are *cumulative only at exposition time*; internally each slot
    counts the observations that fell into ``(previous_le, le]`` with one
    extra overflow slot for ``+Inf``, so merging across shards is a plain
    element-wise sum.  Carries no lock — the owner serialises access (see
    the module docstring).
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative counts, one per bound plus ``+Inf``."""
        total = 0
        out = []
        for count in self.counts:
            total += count
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Interpolated quantile from bucket counts (Prometheus-style).

        Linear interpolation inside the bucket the target rank falls into;
        the first bucket interpolates from 0 and an overflow rank returns
        the highest finite bound (the histogram cannot resolve beyond it).
        Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                fraction = (rank - seen) / count
                return lower + (upper - lower) * fraction
            seen += count
        return self.bounds[-1]

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one."""
        bounds = tuple(float(b) for b in snapshot["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{bounds} vs {self.bounds}"
            )
        counts = snapshot["counts"]
        if len(counts) != len(self.counts):
            raise ValueError("histogram snapshot has the wrong bucket count")
        for slot, count in enumerate(counts):
            self.counts[slot] += int(count)
        self.sum += float(snapshot["sum"])
        self.count += int(snapshot["count"])

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def merge_histogram_snapshots(
    snapshots: Iterable[Mapping[str, object]],
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> Dict[str, object]:
    """Sum per-shard histogram snapshots into one (same fixed buckets)."""
    merged = BucketHistogram(buckets)
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


# ---------------------------------------------------------------------------
# Child series
# ---------------------------------------------------------------------------
class Counter:
    """A monotone counter child (one label-value combination)."""

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror an upstream monotone counter (collected metrics).

        The value is taken as-is, including one *below* the current value:
        that is a Prometheus counter reset (a restarted shard rebuilds its
        engine telemetry from zero) and scrapers' ``rate()`` handles it —
        refusing would make a chaos run's scrapes fail exactly when they
        matter most.
        """
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A set-anywhere float child."""

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram child wrapping :class:`BucketHistogram`."""

    def __init__(self, buckets: Sequence[float]):
        self.state = BucketHistogram(buckets)

    def observe(self, value: float) -> None:
        self.state.observe(value)

    def load_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Replace this child's state with a collected snapshot."""
        fresh = BucketHistogram(tuple(float(b) for b in snapshot["bounds"]))
        fresh.merge_snapshot(snapshot)
        self.state = fresh

    def quantile(self, q: float) -> float:
        return self.state.quantile(q)


class _Family:
    """One metric family: name, help, type, label names, child per labels."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        child_factory: Callable[[], object],
    ):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self._child_factory = child_factory
        self.children: "Dict[Tuple[str, ...], object]" = {}

    def labels(self, **labels: str) -> object:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self.children.get(key)
        if child is None:
            child = self._child_factory()
            self.children[key] = child
        return child


_NAME_RE_HELP = (
    "metric and label names must match [a-zA-Z_:][a-zA-Z0-9_:]* "
    "(Prometheus exposition rules)"
)


def _valid_name(name: str) -> bool:
    if not name:
        return False
    head, tail = name[0], name[1:]
    if not (head.isascii() and (head.isalpha() or head in "_:")):
        return False
    return all(c.isascii() and (c.isalnum() or c in "_:") for c in tail)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Thread-safe collection of metric families (see module docstring).

    All accessors are get-or-create and idempotent: asking twice for the
    same family returns the same object, but re-using a name with a
    different type, help text or label set raises — silent redefinition is
    how two subsystems end up writing into each other's series.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._families: "Dict[str, _Family]" = {}

    # -- registration ---------------------------------------------------------------
    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Sequence[str],
        child_factory: Callable[[], object],
    ) -> _Family:
        if not _valid_name(name):
            raise ValueError(f"invalid metric name {name!r}; {_NAME_RE_HELP}")
        label_names = tuple(label_names)
        for label in label_names:
            if not _valid_name(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}; {_NAME_RE_HELP}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}; cannot re-register "
                        f"as {kind} with labels {label_names}"
                    )
                return family
            family = _Family(name, help_text, kind, label_names, child_factory)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "counter", labels, Counter)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, help_text, "gauge", labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        return self._family(
            name, help_text, "histogram", labels, lambda: Histogram(buckets)
        )

    # -- convenience single-child setters --------------------------------------------
    def set_gauge(self, name: str, value: float, help_text: str = "", **labels) -> None:
        with self._lock:
            self.gauge(name, help_text, tuple(sorted(labels))).labels(**labels).set(value)

    def set_counter(self, name: str, value: float, help_text: str = "", **labels) -> None:
        with self._lock:
            self.counter(name, help_text, tuple(sorted(labels))).labels(
                **labels
            ).set_total(value)

    # -- exposition -------------------------------------------------------------------
    @staticmethod
    def _labels_text(
        label_names: Sequence[str], key: Sequence[str], extra: str = ""
    ) -> str:
        parts = [
            f'{label}="{_escape_label_value(value)}"'
            for label, value in zip(label_names, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                if family.help:
                    lines.append(f"# HELP {name} {family.help}")
                lines.append(f"# TYPE {name} {family.kind}")
                for key in sorted(family.children):
                    child = family.children[key]
                    if family.kind == "histogram":
                        state = child.state
                        cumulative = state.cumulative()
                        for bound, count in zip(state.bounds, cumulative):
                            labels = self._labels_text(
                                family.label_names, key,
                                f'le="{_format_value(bound)}"',
                            )
                            lines.append(f"{name}_bucket{labels} {count}")
                        labels = self._labels_text(
                            family.label_names, key, 'le="+Inf"'
                        )
                        lines.append(f"{name}_bucket{labels} {state.count}")
                        labels = self._labels_text(family.label_names, key)
                        lines.append(f"{name}_sum{labels} {_format_value(state.sum)}")
                        lines.append(f"{name}_count{labels} {state.count}")
                    else:
                        labels = self._labels_text(family.label_names, key)
                        lines.append(f"{name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable view: family metadata plus every child series."""
        out: Dict[str, object] = {}
        with self._lock:
            for name, family in self._families.items():
                series = []
                for key in sorted(family.children):
                    child = family.children[key]
                    labels = dict(zip(family.label_names, key))
                    if family.kind == "histogram":
                        series.append({"labels": labels, **child.state.snapshot()})
                    else:
                        series.append({"labels": labels, "value": child.value})
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "series": series,
                }
        return out

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


# ---------------------------------------------------------------------------
# Exposition endpoint
# ---------------------------------------------------------------------------
class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "adsala-metrics"

    def do_GET(self):  # noqa: N802 (stdlib handler contract)
        server: "_Server" = self.server  # type: ignore[assignment]
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body, content_type = server.render("prometheus")
        elif path == "/metrics.json":
            body, content_type = server.render("json")
        elif path == "/healthz":
            body, content_type = b"ok\n", "text/plain; charset=utf-8"
        else:
            self.send_error(404, "unknown path (try /metrics, /metrics.json)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass  # scrapes are routine; stay quiet


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, registry: MetricsRegistry, collector):
        super().__init__(address, _MetricsHandler)
        self.registry = registry
        self.collector = collector
        # One collect at a time: concurrent scrapes would double-read the
        # serving stats for no benefit.
        self._collect_lock = threading.Lock()

    def render(self, fmt: str) -> Tuple[bytes, str]:
        if self.collector is not None:
            with self._collect_lock:
                self.collector()
        if fmt == "json":
            body = json.dumps(self.registry.snapshot(), indent=2).encode("utf-8")
            return body, "application/json"
        body = self.registry.render_prometheus().encode("utf-8")
        return body, "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Tiny stdlib HTTP exposition endpoint on a daemon thread.

    ``collector`` (optional, zero-argument) runs before every scrape so
    the registry mirrors the live serving stack at scrape time; pass e.g.
    a :class:`repro.obs.collectors.StatsCollector`.  ``port=0`` binds an
    ephemeral port (read it back from :attr:`port` — the test-friendly
    default).  Start/stop are idempotent and the object is a context
    manager.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        collector: Optional[Callable[[], None]] = None,
    ):
        self.registry = registry
        self.host = host
        self.requested_port = int(port)
        self.collector = collector
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    @property
    def port(self) -> Optional[int]:
        """The bound port (None until :meth:`start`)."""
        with self._lock:
            return None if self._server is None else self._server.server_address[1]

    @property
    def url(self) -> Optional[str]:
        port = self.port
        return None if port is None else f"http://{self.host}:{port}/metrics"

    def start(self) -> "MetricsServer":
        with self._lock:
            if self._server is None:
                server = _Server(
                    (self.host, self.requested_port), self.registry, self.collector
                )
                thread = threading.Thread(
                    target=server.serve_forever,
                    name="adsala-metrics",
                    daemon=True,
                )
                self._server = server
                self._thread = thread
                thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            server, thread = self._server, self._thread
            self._server = None
            self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def now_timestamps() -> Dict[str, float]:
    """``{"wall_time", "monotonic_time"}`` stamped from one instant.

    ``wall_time`` orders snapshots across processes and machines;
    ``monotonic_time`` orders them within one process immune to clock
    steps.  Shared by ``stats()`` snapshots and journal rows so the two
    evidence streams line up.
    """
    return {"wall_time": time.time(), "monotonic_time": time.monotonic()}
