"""Production observability: metrics export, run journals, offline analytics.

Everything the serving stack measures today dies with the process — the
``stats()`` snapshots are in-memory dicts.  This package is the evidence
layer that outlives a run:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` with
  counter / gauge / histogram primitives, a Prometheus-text exposition
  endpoint and a JSON snapshot, served by a tiny stdlib HTTP thread
  (:class:`MetricsServer`, wired up by ``adsala serve --metrics-port``).
* :mod:`repro.obs.collectors` — translate the serving stack's existing
  ``stats()`` snapshots (single engine, sharded frontend on either
  backend, supervisor, adaptation audit trail) into registry series at
  scrape time, so per-shard metrics merge through the same plumbing the
  stats already use — no cross-process shared state.
* :mod:`repro.obs.journal` — persistent append-only JSONL run journals
  (:class:`RunJournal`) recording every served plan with bounded-size
  rotation and a crash-tolerant reader; also the canonical home of the
  ``append_jsonl`` / ``read_jsonl`` helpers the workload layer and the
  adaptation audit trail share.
* :mod:`repro.obs.analytics` — composable aggregators over journal rows
  (group-by routine / shard / version / time window) answering the
  what-if questions behind the paper's claims: realized speedup vs the
  max-threads baseline, error trends across promotions, capacity
  headroom.  Surfaced by the ``adsala analyze`` CLI subcommand.
"""

from repro.obs.analytics import (
    Count,
    Max,
    Mean,
    Min,
    Quantile,
    Ratio,
    Sum,
    aggregate,
    capacity_report,
    error_trend,
    speedup_by_routine,
    supervision_summary,
    time_window,
)
from repro.obs.collectors import StatsCollector, collect_adaptation, collect_serving_stats
from repro.obs.journal import (
    RunJournal,
    append_jsonl,
    read_journal,
    read_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    merge_histogram_snapshots,
)

__all__ = [
    "BucketHistogram",
    "Count",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "Max",
    "Mean",
    "MetricsRegistry",
    "MetricsServer",
    "Min",
    "Quantile",
    "Ratio",
    "RunJournal",
    "StatsCollector",
    "Sum",
    "aggregate",
    "append_jsonl",
    "capacity_report",
    "collect_adaptation",
    "collect_serving_stats",
    "error_trend",
    "merge_histogram_snapshots",
    "read_journal",
    "read_jsonl",
    "speedup_by_routine",
    "supervision_summary",
    "time_window",
]
