"""Composable offline aggregators over run-journal rows.

The journal (:mod:`repro.obs.journal`) is the raw evidence; this module
turns it into the claims the paper cares about.  The building block is
:func:`aggregate`: group rows by any key function (routine, shard,
bundle version, :func:`time_window` buckets, or tuples thereof) and
reduce each group with named aggregator instances (:class:`Count`,
:class:`Sum`, :class:`Mean`, :class:`Min`, :class:`Max`,
:class:`Quantile`, :class:`Ratio`).  Aggregators see whole rows and pull
their own fields, so one pass over the journal computes every metric for
every group.

On top sit the canned reports surfaced by ``adsala analyze``:

* :func:`speedup_by_routine` — realized speedup vs the max-threads
  baseline.  Prefers measured executions (``observation`` rows:
  ``sum(baseline_time) / sum(observed_time)``); falls back to the
  model's own predictions from ``plan`` rows when a run was served
  without ``--observe``, and labels which basis it used.
* :func:`error_trend` — observed-vs-predicted relative error grouped by
  routine × bundle version (and optionally time window), tracking
  whether promotions actually reduced error.
* :func:`capacity_report` — per-window request rate, shed fraction and
  headroom vs the busiest window.
* :func:`supervision_summary` — the supervision counters the run's
  ``run_end`` snapshot embedded, so an offline reader reproduces the
  live ``stats()`` exactly.

Everything here is pure functions over iterables of dicts — no file or
registry access — so the same aggregators run over a journal replay, a
list literal in a test, or rows streamed from somewhere else entirely.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Count",
    "Sum",
    "Mean",
    "Min",
    "Max",
    "Quantile",
    "Ratio",
    "aggregate",
    "time_window",
    "speedup_by_routine",
    "error_trend",
    "capacity_report",
    "supervision_summary",
]

Row = Dict[str, object]


# ---------------------------------------------------------------------------
# Aggregators
# ---------------------------------------------------------------------------
class _Aggregator:
    """One reduction over a group's rows.  Instances are *prototypes*:
    :func:`aggregate` calls :meth:`fresh` per group, feeds rows through
    :meth:`update`, then reads :meth:`result`."""

    def fresh(self) -> "_Aggregator":
        raise NotImplementedError

    def update(self, row: Row) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


def _field_value(row: Row, field: Optional[str]) -> Optional[float]:
    if field is None:
        return 1.0
    value = row.get(field)
    if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    return value if math.isfinite(value) else None


class Count(_Aggregator):
    """Rows in the group, optionally only those where ``predicate(row)``."""

    def __init__(self, predicate: Optional[Callable[[Row], bool]] = None):
        self.predicate = predicate
        self.n = 0

    def fresh(self) -> "Count":
        return Count(self.predicate)

    def update(self, row: Row) -> None:
        if self.predicate is None or self.predicate(row):
            self.n += 1

    def result(self) -> int:
        return self.n


class Sum(_Aggregator):
    """Sum of a numeric field (rows missing it are skipped)."""

    def __init__(self, field: str):
        self.field = field
        self.total = 0.0
        self.n = 0

    def fresh(self) -> "Sum":
        return Sum(self.field)

    def update(self, row: Row) -> None:
        value = _field_value(row, self.field)
        if value is not None:
            self.total += value
            self.n += 1

    def result(self) -> Optional[float]:
        return self.total if self.n else None


class Mean(_Aggregator):
    def __init__(self, field: str):
        self.field = field
        self.total = 0.0
        self.n = 0

    def fresh(self) -> "Mean":
        return Mean(self.field)

    def update(self, row: Row) -> None:
        value = _field_value(row, self.field)
        if value is not None:
            self.total += value
            self.n += 1

    def result(self) -> Optional[float]:
        return self.total / self.n if self.n else None


class Min(_Aggregator):
    def __init__(self, field: str):
        self.field = field
        self.value: Optional[float] = None

    def fresh(self) -> "Min":
        return Min(self.field)

    def update(self, row: Row) -> None:
        value = _field_value(row, self.field)
        if value is not None and (self.value is None or value < self.value):
            self.value = value

    def result(self) -> Optional[float]:
        return self.value


class Max(_Aggregator):
    def __init__(self, field: str):
        self.field = field
        self.value: Optional[float] = None

    def fresh(self) -> "Max":
        return Max(self.field)

    def update(self, row: Row) -> None:
        value = _field_value(row, self.field)
        if value is not None and (self.value is None or value > self.value):
            self.value = value

    def result(self) -> Optional[float]:
        return self.value


class Quantile(_Aggregator):
    """Exact quantile of a field over the group (linear interpolation,
    matching ``numpy.quantile``'s default).  Offline analytics can afford
    to keep the values — unlike the live fixed-bucket histograms."""

    def __init__(self, field: str, q: float):
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        self.field = field
        self.q = q
        self.values: List[float] = []

    def fresh(self) -> "Quantile":
        return Quantile(self.field, self.q)

    def update(self, row: Row) -> None:
        value = _field_value(row, self.field)
        if value is not None:
            self.values.append(value)

    def result(self) -> Optional[float]:
        if not self.values:
            return None
        values = sorted(self.values)
        position = self.q * (len(values) - 1)
        lower = int(math.floor(position))
        upper = min(lower + 1, len(values) - 1)
        fraction = position - lower
        return values[lower] + (values[upper] - values[lower]) * fraction


class Ratio(_Aggregator):
    """Ratio of two aggregators' results (``None``-safe, 0-denominator-safe)."""

    def __init__(self, numerator: _Aggregator, denominator: _Aggregator):
        self.numerator = numerator
        self.denominator = denominator

    def fresh(self) -> "Ratio":
        return Ratio(self.numerator.fresh(), self.denominator.fresh())

    def update(self, row: Row) -> None:
        self.numerator.update(row)
        self.denominator.update(row)

    def result(self) -> Optional[float]:
        num = self.numerator.result()
        den = self.denominator.result()
        if num is None or den is None or den == 0:
            return None
        return float(num) / float(den)


GroupKey = Callable[[Row], object]


def aggregate(
    rows: Iterable[Row],
    by: GroupKey | str | Sequence[str],
    metrics: Dict[str, _Aggregator],
) -> Dict[object, Dict[str, object]]:
    """Group ``rows`` by ``by`` and reduce each group with ``metrics``.

    ``by`` may be a field name, a sequence of field names (the key is the
    tuple of their values), or an arbitrary key function.  Rows whose key
    function raises ``KeyError`` are skipped.  Returns
    ``{group_key: {metric_name: result}}`` with groups in first-seen order.
    """
    if isinstance(by, str):
        field = by
        key_fn: GroupKey = lambda row: row.get(field)  # noqa: E731
    elif callable(by):
        key_fn = by
    else:
        fields = tuple(by)
        key_fn = lambda row: tuple(row.get(f) for f in fields)  # noqa: E731

    groups: Dict[object, Dict[str, _Aggregator]] = {}
    for row in rows:
        try:
            key = key_fn(row)
        except KeyError:
            continue
        group = groups.get(key)
        if group is None:
            group = {name: proto.fresh() for name, proto in metrics.items()}
            groups[key] = group
        for agg in group.values():
            agg.update(row)
    return {
        key: {name: agg.result() for name, agg in group.items()}
        for key, group in groups.items()
    }


def time_window(seconds: float, field: str = "ts") -> GroupKey:
    """Key function bucketing rows into fixed windows of ``seconds``.

    Keys are the window's *start* timestamp, so they sort chronologically
    and render as absolute times.
    """
    if seconds <= 0:
        raise ValueError("window must be positive")

    def key(row: Row) -> float:
        ts = _field_value(row, field)
        if ts is None:
            raise KeyError(field)
        return math.floor(ts / seconds) * seconds

    return key


# ---------------------------------------------------------------------------
# Canned reports
# ---------------------------------------------------------------------------
def speedup_by_routine(rows: Iterable[Row]) -> Dict[str, Dict[str, object]]:
    """Per-routine realized speedup vs the max-threads baseline.

    ``observation`` rows carry measured ``observed_time`` next to the
    ``baseline_time`` the max-threads configuration would have cost, so
    ``sum(baseline) / sum(observed)`` is the realized speedup over the
    whole observed traffic (time-weighted, like the paper's headline
    number).  Runs without ``--observe`` have only ``plan`` rows; there
    the model's ``predicted_time`` stands in and ``basis`` says so.
    """
    plan_rows: List[Row] = []
    obs_rows: List[Row] = []
    for row in rows:
        event = row.get("event")
        if event == "plan":
            plan_rows.append(row)
        elif event == "observation":
            obs_rows.append(row)

    measured = aggregate(
        obs_rows,
        "routine",
        {
            "observations": Count(),
            "speedup": Ratio(Sum("baseline_time"), Sum("observed_time")),
            "baseline_s": Sum("baseline_time"),
            "observed_s": Sum("observed_time"),
        },
    )
    predicted = aggregate(
        plan_rows,
        "routine",
        {
            "plans": Count(),
            "cache_hits": Count(lambda r: bool(r.get("from_cache"))),
            "fallbacks": Count(lambda r: r.get("fallback_from") is not None),
            "speedup": Ratio(Sum("baseline_time"), Sum("predicted_time")),
            "mean_threads": Mean("threads"),
        },
    )

    report: Dict[str, Dict[str, object]] = {}
    for routine in sorted(set(measured) | set(predicted), key=str):
        if routine is None:
            continue
        plan_block = predicted.get(routine, {})
        obs_block = measured.get(routine, {})
        realized = obs_block.get("speedup")
        entry: Dict[str, object] = {
            "plans": plan_block.get("plans", 0),
            "cache_hits": plan_block.get("cache_hits", 0),
            "fallbacks": plan_block.get("fallbacks", 0),
            "mean_threads": plan_block.get("mean_threads"),
            "observations": obs_block.get("observations", 0),
        }
        if realized is not None:
            entry["speedup"] = realized
            entry["basis"] = "observed"
            entry["baseline_s"] = obs_block.get("baseline_s")
            entry["served_s"] = obs_block.get("observed_s")
        else:
            entry["speedup"] = plan_block.get("speedup")
            entry["basis"] = "predicted"
        report[str(routine)] = entry
    return report


def error_trend(
    rows: Iterable[Row], window: Optional[float] = None
) -> Dict[Tuple[object, ...], Dict[str, object]]:
    """Observed-vs-predicted |relative error| by routine × bundle version.

    With ``window`` set, adds a time-window component so the trend is
    visible *within* a version's lifetime too.  Error per observation is
    ``|observed - predicted| / observed``; versions come from the plan
    rows' ``version`` field when the serve path stamps one.
    """
    enriched: List[Row] = []
    # request_id -> version from the matching plan row, so observation
    # rows inherit the bundle version that produced their plan; when the
    # whole run served one version, unmatched observations inherit it too.
    versions: Dict[object, object] = {}
    plan_versions: set = set()
    for row in rows:
        event = row.get("event")
        if event == "plan":
            plan_versions.add(row.get("version"))
            if row.get("request_id") is not None:
                versions[row["request_id"]] = row.get("version")
        elif event == "observation":
            observed = _field_value(row, "observed_time")
            predicted = _field_value(row, "predicted_time")
            if observed is None or predicted is None or observed <= 0:
                continue
            new_row = dict(row)
            new_row["abs_rel_error"] = abs(observed - predicted) / observed
            enriched.append(new_row)
    sole_version = (
        next(iter(plan_versions))
        if len(plan_versions) == 1
        else None
    )
    for new_row in enriched:
        if "version" not in new_row:
            resolved = versions.get(new_row.get("request_id"))
            new_row["version"] = resolved if resolved is not None else sole_version

    def key(row: Row) -> Tuple[object, ...]:
        parts: List[object] = [row.get("routine"), row.get("version")]
        if window is not None:
            parts.append(time_window(window)(row))
        return tuple(parts)

    return aggregate(
        enriched,
        key,
        {
            "observations": Count(),
            "mean_abs_rel_error": Mean("abs_rel_error"),
            "p50_abs_rel_error": Quantile("abs_rel_error", 0.5),
            "p99_abs_rel_error": Quantile("abs_rel_error", 0.99),
            "max_abs_rel_error": Max("abs_rel_error"),
        },
    )


def capacity_report(
    rows: Iterable[Row], window: float = 1.0
) -> Dict[str, object]:
    """Request rate, shed fraction and headroom per time window.

    Headroom is relative to the busiest window the run ever sustained
    without shedding: ``1 - rate / peak_clean_rate``.  A negative
    headroom marks windows that ran hotter than anything the run handled
    cleanly — the capacity frontier the ROADMAP asks about.
    """
    interesting = [r for r in rows if r.get("event") in ("plan", "shed")]
    per_window = aggregate(
        interesting,
        time_window(window),
        {
            "plans": Count(lambda r: r.get("event") == "plan"),
            "shed": Count(lambda r: r.get("event") == "shed"),
        },
    )
    windows = []
    clean_peak = 0.0
    for start in sorted(per_window):
        block = per_window[start]
        rate = (block["plans"] + block["shed"]) / window
        served_rate = block["plans"] / window
        total = block["plans"] + block["shed"]
        shed_fraction = block["shed"] / total if total else 0.0
        if block["shed"] == 0:
            clean_peak = max(clean_peak, rate)
        windows.append(
            {
                "window_start": start,
                "plans": block["plans"],
                "shed": block["shed"],
                "request_rate": rate,
                "served_rate": served_rate,
                "shed_fraction": shed_fraction,
            }
        )
    for block in windows:
        block["headroom"] = (
            1.0 - block["request_rate"] / clean_peak if clean_peak else None
        )
    return {
        "window_s": window,
        "peak_clean_rate": clean_peak or None,
        "windows": windows,
    }


def supervision_summary(rows: Iterable[Row]) -> Optional[Dict[str, object]]:
    """The supervision counters embedded in the last ``run_end`` snapshot.

    Returns the ``stats["supervision"]`` block (plus admission shed and
    request totals for context), or ``None`` if the run never wrote a
    ``run_end`` row — e.g. it crashed, which is itself a finding.
    """
    last_stats: Optional[dict] = None
    for row in rows:
        if row.get("event") == "run_end" and isinstance(row.get("stats"), dict):
            last_stats = row["stats"]
    if last_stats is None:
        return None
    out: Dict[str, object] = {"requests": last_stats.get("requests")}
    supervision = last_stats.get("supervision")
    if isinstance(supervision, dict):
        out["supervision"] = supervision
    admission = last_stats.get("admission")
    if isinstance(admission, dict):
        out["admission"] = admission
    return out
