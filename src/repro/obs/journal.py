"""Persistent append-only JSONL run journals with rotation.

Two layers live here:

* The low-level JSONL helpers :func:`append_jsonl` and :func:`read_jsonl`
  (moved from the workload module — the adaptation audit trail and
  workload replay share them unchanged): append heals a missing trailing
  newline left by a crashed writer, read skips malformed lines with a
  :class:`RuntimeWarning` unless ``strict``.
* :class:`RunJournal`, the serving stack's flight recorder: one JSON
  object per event (``plan`` / ``observation`` / ``shed`` / ``run_start``
  / ``run_end``) appended to a journal file that rotates at a byte bound
  (``journal.jsonl`` → ``journal.jsonl.1`` → … up to ``max_segments``,
  oldest dropped), and :func:`read_journal`, which replays rotated
  segments oldest-first through the same crash-tolerant reader.

Every row carries ``ts`` (wall clock, orders events across processes)
and ``mono`` (monotonic clock, orders events within the writing process
immune to clock steps).  Plan rows record routine, dims key, threads,
predicted/baseline time and disposition (cache / fallback / shed /
deadline / shard); observation rows record predicted-vs-observed so the
offline analytics can compute realized speedup without a join.

Thread-safety: a :class:`RunJournal` holds one internal lock around its
buffer and file handle, so many client threads may call ``record_*``
concurrently.  With ``async_writer=True`` the hot ``record_*`` path is
lock-free (a thread-safe deque enqueue); a daemon writer thread owns
serialisation and file writes, ``flush()`` is a synchronous drain
barrier, and ``close()`` drains everything before closing.  It is
per-process — worker shards do not journal; the frontend process records
dispositions as results come back.
"""

from __future__ import annotations

import collections
import json
import threading
import time
import warnings
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "RunJournal",
    "append_jsonl",
    "read_jsonl",
    "read_journal",
    "journal_segments",
]


def read_jsonl(path: str | Path, strict: bool = False) -> Iterator[Tuple[int, dict]]:
    """Yield ``(line_number, row)`` for every JSON-object line of a file.

    Blank lines are skipped.  Lines that are not valid JSON objects are a
    ``ValueError`` (with the offending position) under ``strict``; otherwise
    they are skipped with a :class:`RuntimeWarning`, so one corrupt line —
    say, a crash mid-append to an audit log — does not make the rest of the
    file unreadable.  Shared by workload replay, the adaptation log and the
    run-journal reader.
    """
    path = Path(path)
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ValueError("line is not a JSON object")
            except ValueError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_number}: not a valid JSONL line: {exc}"
                    ) from exc
                warnings.warn(
                    f"{path}:{line_number}: skipping malformed JSONL line ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            yield line_number, row


def append_jsonl(path: str | Path, row: Dict[str, object]) -> Path:
    """Append one JSON object as a line (creating parent directories).

    If a previous writer crashed mid-append the file may end in a partial
    line without a newline; gluing onto it would corrupt *this* record too,
    so a missing trailing newline is repaired first (the partial line stays
    malformed on its own and is skipped by :func:`read_jsonl`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    needs_newline = False
    if path.exists() and path.stat().st_size > 0:
        with open(path, "rb") as handle:
            handle.seek(-1, 2)
            needs_newline = handle.read(1) != b"\n"
    with open(path, "a") as handle:
        if needs_newline:
            handle.write("\n")
        handle.write(json.dumps(row) + "\n")
    return path


def journal_segments(path: str | Path) -> List[Path]:
    """All existing segments of a journal, oldest first.

    Rotation shifts ``journal.jsonl`` to ``journal.jsonl.1`` (and ``.1``
    to ``.2``, …), so the highest numeric suffix is the oldest and the
    bare path the live segment.
    """
    path = Path(path)
    rotated = []
    for candidate in path.parent.glob(path.name + ".*"):
        suffix = candidate.name[len(path.name) + 1 :]
        if suffix.isdigit():
            rotated.append((int(suffix), candidate))
    segments = [p for _, p in sorted(rotated, reverse=True)]
    if path.exists():
        segments.append(path)
    return segments


def read_journal(path: str | Path, strict: bool = False) -> Iterator[dict]:
    """Replay every row of a (possibly rotated) journal, oldest first.

    Crash-tolerant via :func:`read_jsonl`: a torn final line in any
    segment is skipped with a warning rather than poisoning the replay.
    """
    for segment in journal_segments(path):
        for _, row in read_jsonl(segment, strict=strict):
            yield row


# Exact keysets written by record_plan/record_observation: rows matching
# them take the %-template fast path below; anything else (run_start,
# run_end, custom appends, extra fields) falls back to json.dumps.
_PLAN_KEYS = frozenset((
    "event", "ts", "mono", "routine", "dims", "threads", "predicted_time",
    "baseline_time", "from_cache", "fallback_from", "policy", "shard",
    "request_id", "version",
))
_OBSERVATION_KEYS = frozenset((
    "event", "ts", "mono", "routine", "threads", "predicted_time",
    "observed_time", "baseline_time", "shard", "request_id",
))

# Variable-per-row fields lead; the rest of the plan line is cached per
# distinct (routine, dims, threads, prediction, disposition) combination,
# which traffic repeats heavily — so the steady-state encode is one dict
# lookup plus one %-format of four values.
_PLAN_HEAD = '{"event":"plan","ts":%.17g,"mono":%.17g,"shard":%s,"request_id":%s,'
_PLAN_TAIL_TEMPLATE = (
    '"routine":%s,"dims":%s,"threads":%d,"predicted_time":%s,'
    '"baseline_time":%s,"from_cache":%s,"fallback_from":%s,"policy":%s,'
    '"version":%s}\n'
)
_OBSERVATION_TEMPLATE = (
    '{"event":"observation","ts":%r,"mono":%r,"routine":%s,"threads":%d,'
    '"predicted_time":%s,"observed_time":%s,"baseline_time":%s,"shard":%s,'
    '"request_id":%s}\n'
)


def _json_number(value) -> str:
    return repr(float(value))


def _json_opt_number(value) -> str:
    return "null" if value is None else repr(float(value))


def _json_opt_int(value) -> str:
    return "null" if value is None else "%d" % value


class RunJournal:
    """Append-only flight recorder for a serving run (see module docstring).

    Parameters
    ----------
    path:
        The live journal file.  Parent directories are created; a missing
        trailing newline from a crashed previous run is healed on the
        first append (same contract as :func:`append_jsonl`).
    max_bytes:
        Rotate when the live segment would exceed this size.  ``0``
        disables rotation (the journal grows without bound).
    max_segments:
        Rotated segments to keep (``.1`` newest … ``.N`` oldest); older
        ones are deleted.  With rotation enabled the journal's total
        footprint is bounded by ``(max_segments + 1) * max_bytes``.
    flush_every:
        Rows buffered between flushes in the synchronous mode.  ``1``
        (the default) flushes every row — crash-tolerant but
        syscall-heavy.
    async_writer:
        Move serialisation and file writes off the caller's thread: each
        ``record_*`` call only stamps the row and enqueues it (sub-µs),
        and a daemon writer thread drains, serialises and appends in
        batches.  This is what the serve hot path uses — per-request
        journaling must not tax serving throughput.  The trade-off is a
        small crash window (rows still queued are lost if the *process*
        dies; :meth:`flush` is a synchronous barrier, and :meth:`close`
        drains everything).
    """

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = 0,
        max_segments: int = 4,
        flush_every: int = 1,
        async_writer: bool = False,
    ):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (0 disables rotation)")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.max_segments = int(max_segments)
        self.flush_every = int(flush_every)
        self.async_writer = bool(async_writer)
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False
        self.n_rows = 0
        self.n_rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._heal_partial_tail()
        self._handle = open(self.path, "a")
        self._size = self.path.stat().st_size
        # Small per-journal caches for the fast serialiser: dims dicts and
        # routine/policy strings repeat heavily in cycling/skewed traffic.
        self._dims_cache: Dict[Tuple, str] = {}
        self._str_cache: Dict[str, str] = {}
        self._plan_cache: Dict[Tuple, str] = {}
        self._queue: Deque[dict] = collections.deque()
        self._writer: Optional[threading.Thread] = None
        if self.async_writer:
            self._writer = threading.Thread(
                target=self._drain_loop, name="adsala-journal", daemon=True
            )
            self._writer.start()

    def _heal_partial_tail(self) -> None:
        if self.path.exists() and self.path.stat().st_size > 0:
            with open(self.path, "rb") as handle:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    with open(self.path, "a") as out:
                        out.write("\n")

    # -- serialisation -------------------------------------------------------
    def _json_string(self, value: str) -> str:
        quoted = self._str_cache.get(value)
        if quoted is None:
            quoted = json.dumps(value)
            if len(self._str_cache) < 512:
                self._str_cache[value] = quoted
        return quoted

    def _json_dims(self, dims: Dict[str, int]) -> str:
        key = tuple(dims.items())
        fragment = self._dims_cache.get(key)
        if fragment is None:
            fragment = json.dumps(dims, separators=(",", ":"))
            if len(self._dims_cache) < 4096:
                self._dims_cache[key] = fragment
        return fragment

    def _plan_line(
        self, ts, mono, routine, dims, threads, predicted_time,
        baseline_time, from_cache, fallback_from, policy, shard,
        request_id, version,
    ) -> str:
        key = (
            routine, tuple(dims.items()), threads, predicted_time,
            baseline_time, from_cache, fallback_from, policy, version,
        )
        template = self._plan_cache.get(key)
        if template is None:
            tail = _PLAN_TAIL_TEMPLATE % (
                self._json_string(routine),
                self._json_dims(dims),
                threads,
                _json_number(predicted_time),
                _json_opt_number(baseline_time),
                "true" if from_cache else "false",
                "null" if fallback_from is None
                else self._json_string(fallback_from),
                self._json_string(policy),
                _json_opt_int(version),
            )
            # The tail is spliced into a %-template: a literal % in a
            # routine/policy name must not become a slot.
            template = _PLAN_HEAD + tail.replace("%", "%%")
            if len(self._plan_cache) < 4096:
                self._plan_cache[key] = template
        return template % (
            ts, mono,
            "null" if shard is None else shard,
            "null" if request_id is None else request_id,
        )

    def _encode_item(self, item) -> str:
        """Encode a queued item: a row dict or a ``record_plan`` tuple."""
        if type(item) is tuple:
            try:
                return self._plan_line(*item[1:])
            except (TypeError, ValueError, KeyError, AttributeError):
                names = (
                    "event", "ts", "mono", "routine", "dims", "threads",
                    "predicted_time", "baseline_time", "from_cache",
                    "fallback_from", "policy", "shard", "request_id",
                    "version",
                )
                return json.dumps(dict(zip(names, item))) + "\n"
        return self._encode(item)

    def _encode(self, row: dict) -> str:
        """One JSONL line for a row; templated fast paths for hot events.

        Per-row ``json.dumps`` costs several µs — more than the async
        serve path's whole overhead budget — so the two fixed-schema hot
        events are formatted through %-templates instead (same JSON, just
        compact).  Any shape surprise falls back to ``json.dumps``.
        """
        try:
            event = row.get("event")
            if event == "plan" and row.keys() == _PLAN_KEYS:
                return self._plan_line(
                    row["ts"], row["mono"], row["routine"], row["dims"],
                    row["threads"], row["predicted_time"],
                    row["baseline_time"], row["from_cache"],
                    row["fallback_from"], row["policy"], row["shard"],
                    row["request_id"], row["version"],
                )
            if event == "observation" and row.keys() == _OBSERVATION_KEYS:
                return _OBSERVATION_TEMPLATE % (
                    row["ts"], row["mono"],
                    self._json_string(row["routine"]),
                    row["threads"],
                    _json_number(row["predicted_time"]),
                    _json_number(row["observed_time"]),
                    _json_opt_number(row["baseline_time"]),
                    _json_opt_int(row["shard"]),
                    _json_opt_int(row["request_id"]),
                )
        except (TypeError, ValueError, KeyError):
            pass
        return json.dumps(row) + "\n"

    # -- writing -------------------------------------------------------------
    def _write_line_locked(self, line: str) -> None:
        if self.max_bytes and self._size and self._size + len(line) > self.max_bytes:
            self._rotate_locked()
        self._handle.write(line)
        self._size += len(line)
        self.n_rows += 1

    def _drain_queue_locked(self) -> bool:
        """Serialise and write everything queued; True if anything was."""
        wrote = False
        while True:
            try:
                item = self._queue.popleft()
            except IndexError:
                break
            try:
                line = self._encode_item(item)
            except Exception as exc:  # never kill the daemon writer
                warnings.warn(
                    f"run journal dropped an unencodable row ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            self._write_line_locked(line)
            wrote = True
        return wrote

    #: Seconds the async writer sleeps between drain batches.  Sleeping
    #: *every* cycle — not just when idle — is load-bearing: a writer that
    #: re-drains while producers are active busy-spins on the GIL and can
    #: multiply the serialisation cost several-fold in stolen cycles.
    #: Batching ~interval's worth of rows per wake keeps the steal at
    #: roughly the raw serialisation cost.
    DRAIN_INTERVAL = 0.05

    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed and not self._queue:
                    return
                if self._drain_queue_locked():
                    self._handle.flush()
            if not self._closed:
                time.sleep(self.DRAIN_INTERVAL)

    def append(self, event: str, **fields: object) -> None:
        """Record one event row, stamping ``ts``/``mono`` at call time."""
        row = {"event": event, "ts": time.time(), "mono": time.monotonic()}
        row.update(fields)
        if self.async_writer:
            # Hot path: no lock, no serialisation — deque.append is
            # thread-safe and the writer thread does the rest.
            if self._closed:
                raise ValueError("journal is closed")
            self._queue.append(row)
            return
        line = self._encode(row)
        with self._lock:
            if self._closed:
                raise ValueError("journal is closed")
            self._write_line_locked(line)
            self._pending += 1
            if self._pending >= self.flush_every:
                self._handle.flush()
                self._pending = 0

    def record_plan(
        self,
        routine: str,
        dims: Dict[str, int],
        threads: int,
        predicted_time: float,
        baseline_time: Optional[float] = None,
        from_cache: bool = False,
        fallback_from: Optional[str] = None,
        policy: str = "model",
        shard: Optional[int] = None,
        request_id: Optional[int] = None,
        version: Optional[int] = None,
    ) -> None:
        """One served plan: what was asked, what was answered, from where."""
        if self.async_writer:
            # Hottest call in the serve loop: enqueue the raw arguments as
            # a tuple (no dict building on the caller's thread); the
            # writer thread expands it through the same plan template.
            if self._closed:
                raise ValueError("journal is closed")
            self._queue.append((
                "plan", time.time(), time.monotonic(), routine, dims, threads,
                predicted_time, baseline_time, from_cache, fallback_from,
                policy, shard, request_id, version,
            ))
            return
        self.append(
            "plan",
            routine=routine,
            dims=dims,
            threads=threads,
            predicted_time=predicted_time,
            baseline_time=baseline_time,
            from_cache=from_cache,
            fallback_from=fallback_from,
            policy=policy,
            shard=shard,
            request_id=request_id,
            version=version,
        )

    def record_observation(
        self,
        routine: str,
        threads: int,
        predicted_time: float,
        observed_time: float,
        baseline_time: Optional[float] = None,
        shard: Optional[int] = None,
        request_id: Optional[int] = None,
    ) -> None:
        """A measured execution for a previously served plan."""
        self.append(
            "observation",
            routine=routine,
            threads=threads,
            predicted_time=predicted_time,
            observed_time=observed_time,
            baseline_time=baseline_time,
            shard=shard,
            request_id=request_id,
        )

    def record_shed(
        self,
        routine: str,
        reason: str,
        dims: Optional[Dict[str, int]] = None,
        request_id: Optional[int] = None,
    ) -> None:
        """A request the frontend refused (``queue_full``) or timed out (``deadline``)."""
        self.append(
            "shed", routine=routine, reason=reason, dims=dims, request_id=request_id
        )

    def record_run_start(self, **config: object) -> None:
        self.append("run_start", **config)

    def record_run_end(self, stats: Optional[dict] = None, **summary: object) -> None:
        """Run summary; embeds the final merged ``stats()`` snapshot so the
        offline analytics can reproduce the live counters exactly."""
        self.append("run_end", stats=stats, **summary)

    # -- rotation ------------------------------------------------------------
    def _rotate_locked(self) -> None:
        self._handle.flush()
        self._handle.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.max_segments}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_segments - 1, 0, -1):
            source = self.path.with_name(f"{self.path.name}.{index}")
            if source.exists():
                source.rename(self.path.with_name(f"{self.path.name}.{index + 1}"))
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._handle = open(self.path, "a")
        self._size = 0
        self._pending = 0
        self.n_rotations += 1

    # -- lifecycle -----------------------------------------------------------
    def flush(self) -> None:
        """Synchronous barrier: queued rows are on disk when this returns."""
        with self._lock:
            if not self._closed:
                self._drain_queue_locked()
                self._handle.flush()
                self._pending = 0

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._writer is not None:
            self._writer.join()
            self._writer = None
        with self._lock:
            # Catch rows enqueued in the window between the writer's last
            # drain and _closed becoming visible to racing appenders.
            self._drain_queue_locked()
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
