"""Translate serving ``stats()`` snapshots into metrics-registry series.

The serving stack already has one battle-tested observability path: every
layer (engine, thread/process shard, supervisor) answers ``stats()`` with
a JSON-serialisable snapshot, and the sharded frontend merges the
per-shard snapshots — including across the process-backend pipe.  The
collectors ride that plumbing instead of inventing a second cross-process
channel: at scrape time :func:`collect_serving_stats` walks the latest
snapshot (either a single engine's or a frontend's merged one) and
mirrors it into :class:`~repro.obs.metrics.MetricsRegistry` counters,
gauges and histograms; :func:`collect_adaptation` does the same for the
adaptation audit trail.  :class:`StatsCollector` bundles both behind the
zero-argument callable :class:`~repro.obs.metrics.MetricsServer` invokes
before each scrape.

Mirrored counters are *collected*, not incremented: each scrape sets the
series to the upstream snapshot value (a value below the previous one is
a legitimate Prometheus counter reset — e.g. a restarted shard rebuilding
its engine telemetry).  Thread-safety comes from the registry's own lock;
the collectors hold no state beyond the stats callable they wrap.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["StatsCollector", "collect_serving_stats", "collect_adaptation"]


def _set_counter(registry: MetricsRegistry, name: str, value, help_text: str, **labels):
    if value is None:
        return
    registry.counter(name, help_text, tuple(sorted(labels))).labels(**labels).set_total(
        float(value)
    )


def _set_gauge(registry: MetricsRegistry, name: str, value, help_text: str, **labels):
    if value is None:
        return
    registry.gauge(name, help_text, tuple(sorted(labels))).labels(**labels).set(
        float(value)
    )


def _collect_routines(registry: MetricsRegistry, routines: Mapping[str, Mapping]) -> None:
    for routine, entry in routines.items():
        labels = {"routine": routine}
        _set_counter(
            registry, "adsala_plans_total", entry.get("plans"),
            "Plans served, by routine", **labels,
        )
        _set_counter(
            registry, "adsala_plan_cache_hits_total", entry.get("cache_hits"),
            "Plans answered from the prediction LRU cache", **labels,
        )
        _set_counter(
            registry, "adsala_fallback_plans_total", entry.get("fallback_plans"),
            "Plans produced by a fallback policy", **labels,
        )
        _set_counter(
            registry, "adsala_heuristic_plans_total", entry.get("heuristic_plans"),
            "Plans produced by the max-threads heuristic", **labels,
        )
        _set_counter(
            registry, "adsala_observations_total", entry.get("observations"),
            "Executed-call runtimes folded into the drift window", **labels,
        )
        _set_counter(
            registry, "adsala_invalid_observations_total",
            entry.get("invalid_observations"),
            "Observations rejected as non-physical", **labels,
        )
        error_help = "Observed-vs-predicted |relative error| over the rolling window"
        for stat, key in (
            ("mean", "mean_abs_rel_error"),
            ("p50", "p50_abs_rel_error"),
            ("p99", "p99_abs_rel_error"),
            ("max", "max_abs_rel_error"),
        ):
            _set_gauge(
                registry, "adsala_prediction_abs_rel_error", entry.get(key),
                error_help, routine=routine, stat=stat,
            )
        latency = entry.get("latency")
        if isinstance(latency, Mapping) and latency.get("count"):
            family = registry.histogram(
                "adsala_plan_latency_seconds",
                "Per-plan share of the micro-batch planning pass",
                ("routine",),
                buckets=tuple(float(b) for b in latency["bounds"]),
            )
            family.labels(**labels).load_snapshot(latency)


def _collect_cache(registry: MetricsRegistry, cache: Mapping) -> None:
    _set_counter(
        registry, "adsala_predictor_cache_hits_total", cache.get("cache_hits"),
        "Prediction LRU cache hits across routines",
    )
    _set_counter(
        registry, "adsala_predictor_cache_misses_total", cache.get("cache_misses"),
        "Prediction LRU cache misses across routines",
    )
    _set_counter(
        registry, "adsala_model_evaluations_total", cache.get("model_evaluations"),
        "Predictor model evaluations (cache misses that ran the model)",
    )
    timing = cache.get("timing")
    if isinstance(timing, Mapping):
        _set_counter(
            registry, "adsala_timing_cache_hits_total", timing.get("hits"),
            "Timing-memo hits (simulated rows answered from the LRU memo)",
        )
        _set_counter(
            registry, "adsala_timing_cache_misses_total", timing.get("misses"),
            "Timing-memo misses (rows that ran the simulator)",
        )
        _set_gauge(
            registry, "adsala_timing_cache_size", timing.get("size"),
            "Rows currently held by the timing memo",
        )
        _set_gauge(
            registry, "adsala_timing_cache_capacity", timing.get("capacity"),
            "Timing-memo capacity (summed across shards when merged)",
        )


def _collect_supervision(registry: MetricsRegistry, supervision: Mapping) -> None:
    per_shard_help = {
        "failures": ("adsala_shard_failures_total", "Worker failures observed"),
        "restarts": ("adsala_shard_restarts_total", "Worker restarts performed"),
        "redispatched": (
            "adsala_shard_redispatched_total",
            "Stranded in-flight requests redispatched after a failure",
        ),
        "rerouted": (
            "adsala_shard_rerouted_total",
            "Requests rerouted away from a quarantined shard",
        ),
        "hangs": ("adsala_shard_hangs_total", "Hung-worker detections"),
        "deadline_expired": (
            "adsala_shard_deadline_expired_total",
            "Requests shed because their deadline passed",
        ),
        "duplicate_answers": (
            "adsala_shard_duplicate_answers_total",
            "Answers discarded because the request was already resolved",
        ),
    }
    for entry in supervision.get("per_shard", ()):
        shard = str(entry.get("index"))
        for key, (name, help_text) in per_shard_help.items():
            _set_counter(registry, name, entry.get(key), help_text, shard=shard)
        _set_gauge(
            registry, "adsala_shard_quarantined",
            1.0 if entry.get("quarantined") else 0.0,
            "Whether the shard is quarantined (1) or serving (0)", shard=shard,
        )
    _set_gauge(
        registry, "adsala_shards_healthy", supervision.get("healthy_shards"),
        "Shards currently serving (not quarantined)",
    )
    _set_counter(
        registry, "adsala_recovery_episodes_total",
        supervision.get("recovery_episodes"),
        "Completed failure-to-healthy recovery episodes",
    )
    _set_gauge(
        registry, "adsala_recovery_seconds_mean", supervision.get("recovery_mean_s"),
        "Mean seconds from first failure to first healthy batch",
    )
    _set_gauge(
        registry, "adsala_recovery_seconds_max", supervision.get("recovery_max_s"),
        "Worst recovery episode in the rolling window, seconds",
    )


def collect_serving_stats(registry: MetricsRegistry, stats: Mapping) -> None:
    """Mirror one ``stats()`` snapshot into the registry.

    Accepts both shapes the serving stack produces: a single
    :meth:`~repro.serving.engine.ServingEngine.stats` snapshot, or a
    :meth:`~repro.serving.frontend.ShardedFrontend.stats` merged one
    (recognised by its ``admission`` block).  Keys the snapshot does not
    carry are simply skipped, so older/partial snapshots stay collectable.
    """
    _set_counter(
        registry, "adsala_requests_total", stats.get("requests"),
        "Plan requests answered",
    )
    _set_counter(
        registry, "adsala_batches_total", stats.get("batches"),
        "Micro-batches processed",
    )
    _set_counter(
        registry, "adsala_rejected_unknown_routine_total",
        stats.get("rejected_unknown_routine"),
        "Requests rejected at intake for an unregistered routine key",
    )
    _set_gauge(
        registry, "adsala_batch_size_mean", stats.get("mean_batch_size"),
        "Mean micro-batch size over the rolling window",
    )
    _set_gauge(
        registry, "adsala_batch_size_max", stats.get("max_batch_size"),
        "Largest micro-batch in the rolling window",
    )
    _set_gauge(
        registry, "adsala_batch_size_limit", stats.get("batch_size_limit"),
        "Configured micro-batch size bound",
    )
    _set_gauge(
        registry, "adsala_pending", stats.get("pending"),
        "Requests queued and not yet drained (summed across shards)",
    )
    _set_gauge(
        registry, "adsala_stats_wall_time_seconds", stats.get("wall_time"),
        "Wall-clock instant the collected snapshot was taken",
    )
    _set_gauge(
        registry, "adsala_reinstall_candidates",
        len(stats.get("reinstall_candidates", ())),
        "Routines currently flagged as drifted past threshold",
    )

    routines = stats.get("routines")
    if isinstance(routines, Mapping):
        _collect_routines(registry, routines)
    cache = stats.get("cache")
    if isinstance(cache, Mapping):
        _collect_cache(registry, cache)

    admission = stats.get("admission")
    if isinstance(admission, Mapping):
        _set_gauge(
            registry, "adsala_shards", stats.get("shards"),
            "Engine shards behind the frontend",
        )
        _set_gauge(
            registry, "adsala_inflight", admission.get("in_flight"),
            "Requests admitted and not yet answered",
        )
        _set_gauge(
            registry, "adsala_admission_capacity", admission.get("capacity"),
            "Bound on concurrently admitted requests",
        )
        _set_counter(
            registry, "adsala_submitted_total", admission.get("submitted"),
            "Requests admitted by the frontend",
        )
        _set_counter(
            registry, "adsala_completed_total", admission.get("completed"),
            "Admitted requests whose future resolved",
        )
        _set_counter(
            registry, "adsala_shed_total", admission.get("shed"),
            "Requests refused by reject-mode admission control",
        )
    supervision = stats.get("supervision")
    if isinstance(supervision, Mapping):
        _collect_supervision(registry, supervision)


def collect_adaptation(
    registry: MetricsRegistry,
    log,
    bundle_dir: Optional[str | Path] = None,
) -> None:
    """Mirror the adaptation audit trail into the registry.

    ``log`` is an :class:`~repro.adaptive.promote.AdaptationLog` or a path
    to an ``adaptation_log.jsonl``.  Emits per-event-type totals, a
    one-hot lifecycle-state gauge per routine (the latest state holds 1,
    every state that routine has ever been in holds 0), and — when
    ``bundle_dir`` is given — the live ``bundle_version`` from the
    manifest.
    """
    from repro.adaptive.promote import AdaptationLog

    if not isinstance(log, AdaptationLog):
        log = AdaptationLog(log)
    events = log.events()
    by_type: Dict[str, int] = {}
    states_seen: Dict[str, set] = {}
    latest_state: Dict[str, Optional[str]] = {}
    for row in events:
        event = row.get("event")
        if isinstance(event, str):
            by_type[event] = by_type.get(event, 0) + 1
        routine = row.get("routine")
        state = row.get("state")
        if isinstance(routine, str):
            if isinstance(state, str):
                states_seen.setdefault(routine, set()).add(state)
                latest_state[routine] = state
    for event, count in sorted(by_type.items()):
        _set_counter(
            registry, "adsala_adaptation_events_total", count,
            "Adaptation audit-trail events, by type", event=event,
        )
    for routine, states in states_seen.items():
        for state in sorted(states):
            _set_gauge(
                registry, "adsala_adaptation_state",
                1.0 if latest_state.get(routine) == state else 0.0,
                "One-hot lifecycle state per routine (latest event wins)",
                routine=routine, state=state,
            )
    if bundle_dir is not None:
        from repro.core.persistence import read_manifest

        try:
            manifest = read_manifest(bundle_dir)
        except Exception:
            return
        _set_gauge(
            registry, "adsala_bundle_version",
            int(manifest.get("bundle_version", 1)),
            "Live bundle version from the manifest",
        )


class StatsCollector:
    """Zero-argument collector for :class:`~repro.obs.metrics.MetricsServer`.

    Wraps a ``stats_fn`` returning the latest serving snapshot (an engine's
    or a frontend's merged ``stats()``) plus, optionally, the adaptation
    audit trail of the served bundle.  A ``stats_fn`` that raises is
    swallowed (scrapes must not take the serving path down mid-shutdown);
    the last collected values simply remain.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        stats_fn: Optional[Callable[[], Mapping]] = None,
        adaptation_log=None,
        bundle_dir: Optional[str | Path] = None,
    ):
        self.registry = registry
        self.stats_fn = stats_fn
        self.adaptation_log = adaptation_log
        self.bundle_dir = bundle_dir
        self.n_collections = 0
        self.n_failures = 0

    def __call__(self) -> None:
        self.n_collections += 1
        try:
            if self.stats_fn is not None:
                stats = self.stats_fn()
                if isinstance(stats, Mapping):
                    collect_serving_stats(self.registry, stats)
            log = self.adaptation_log
            if log is None and self.bundle_dir is not None:
                from repro.adaptive.promote import ADAPTATION_LOG_FILE

                candidate = Path(self.bundle_dir) / ADAPTATION_LOG_FILE
                log = candidate if candidate.exists() else None
            if log is not None:
                collect_adaptation(self.registry, log, bundle_dir=self.bundle_dir)
        except Exception:
            self.n_failures += 1
