"""Boosted tree ensembles: AdaBoost.R2, XGBoost-style and LightGBM-style.

The paper's candidate pool includes AdaBoost, XGBoost and LightGBM.  The two
gradient-boosting variants are reproduced here with their defining
algorithmic features:

* :class:`GradientBoostingRegressor` — second-order (Newton) boosting on the
  squared loss with L1/L2 leaf regularisation and shrinkage, i.e. the core of
  XGBoost with exact greedy splits.
* :class:`HistGradientBoostingRegressor` — histogram-binned split finding
  (LightGBM's key trick), which bins each feature into at most
  ``max_bins`` quantile buckets before growing depth-limited trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ml.base import BaseRegressor, check_X, check_X_y
from repro.ml.tree import (
    DecisionTreeRegressor,
    FlatTree,
    StackedTrees,
    _bounds_mask,
    _column_positions,
    _positions,
    active_impl,
    stacking_active,
)

__all__ = [
    "AdaBoostRegressor",
    "GradientBoostingRegressor",
    "HistGradientBoostingRegressor",
    "weighted_median",
]


def weighted_median(all_predictions: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """AdaBoost.R2 weighted median over an ``(n_samples, n_trees)`` block.

    Module-level so the process-shard worker can aggregate a shared-memory
    stacked descent with the exact arithmetic of the fitted model (see
    :meth:`AdaBoostRegressor._weighted_median`).
    """
    order = np.argsort(all_predictions, axis=1)
    sorted_predictions = np.take_along_axis(all_predictions, order, axis=1)
    sorted_weights = weights[order]
    cumulative = np.cumsum(sorted_weights, axis=1)
    threshold = 0.5 * cumulative[:, -1][:, None]
    median_idx = np.argmax(cumulative >= threshold, axis=1)
    return sorted_predictions[np.arange(all_predictions.shape[0]), median_idx]


# ---------------------------------------------------------------------------
# AdaBoost.R2 (Drucker, 1997)
# ---------------------------------------------------------------------------
class AdaBoostRegressor(BaseRegressor):
    """AdaBoost.R2 with decision-tree base learners.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting rounds (may stop earlier if a learner
        achieves zero loss or worse-than-random loss).
    learning_rate:
        Shrinks the contribution of each regressor via the beta exponent.
    max_depth:
        Depth of each base tree (AdaBoost traditionally uses shallow trees).
    loss:
        "linear", "square" or "exponential" loss for the per-sample error.
    random_state:
        Seed for weighted bootstrap resampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 1.0,
        max_depth: int = 3,
        loss: str = "linear",
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.loss = loss
        self.random_state = random_state

    def fit(self, X, y) -> "AdaBoostRegressor":
        if self.loss not in ("linear", "square", "exponential"):
            raise ValueError(f"Unknown loss {self.loss!r}")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        X, y = check_X_y(X, y)
        n_samples = X.shape[0]
        rng = np.random.default_rng(self.random_state)

        sample_weight = np.full(n_samples, 1.0 / n_samples)
        self.estimators_: List[DecisionTreeRegressor] = []
        self.estimator_weights_: List[float] = []

        for _ in range(self.n_estimators):
            # Weighted bootstrap: resample the training set according to the
            # current weights, as in the original AdaBoost.R2 formulation.
            indices = rng.choice(n_samples, size=n_samples, p=sample_weight)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                random_state=int(rng.integers(0, 2 ** 31 - 1)),
            )
            tree.fit(X[indices], y[indices])
            predictions = tree.predict(X)

            abs_error = np.abs(predictions - y)
            max_error = abs_error.max()
            if max_error <= 1e-300:
                # Perfect learner — give it full confidence and stop.
                self.estimators_.append(tree)
                self.estimator_weights_.append(1.0)
                break
            normalised = abs_error / max_error
            if self.loss == "square":
                normalised = normalised ** 2
            elif self.loss == "exponential":
                normalised = 1.0 - np.exp(-normalised)

            average_loss = float(np.dot(sample_weight, normalised))
            if average_loss >= 0.5:
                # Worse than random: discard and stop unless it is the first.
                if not self.estimators_:
                    self.estimators_.append(tree)
                    self.estimator_weights_.append(1.0)
                break

            beta = average_loss / (1.0 - average_loss)
            self.estimators_.append(tree)
            self.estimator_weights_.append(
                self.learning_rate * float(np.log(1.0 / max(beta, 1e-300)))
            )
            sample_weight *= beta ** (self.learning_rate * (1.0 - normalised))
            total = sample_weight.sum()
            if total <= 0:
                break
            sample_weight /= total

        if not self.estimators_:
            raise RuntimeError("AdaBoost failed to fit any estimator")
        self.n_features_in_ = X.shape[1]
        return self

    def stacked(self) -> StackedTrees:
        """All base trees concatenated into one :class:`StackedTrees` (cached)."""
        self._check_fitted("estimators_")
        stacked = getattr(self, "_stacked_cache", None)
        if stacked is None:
            stacked = StackedTrees(tree.flat_tree_ for tree in self.estimators_)
            self._stacked_cache = stacked
        return stacked

    def _predict_stacked(self, X: np.ndarray) -> np.ndarray:
        """Weighted-median aggregation over one stacked descent (no checks)."""
        return self._weighted_median(self.stacked()._descend(X).T)

    def _weighted_median(self, all_predictions: np.ndarray) -> np.ndarray:
        """AdaBoost.R2 weighted median over an ``(n_samples, n_trees)`` block."""
        return weighted_median(
            all_predictions, np.asarray(self.estimator_weights_)
        )

    def predict(self, X) -> np.ndarray:
        """Weighted-median prediction over the boosted ensemble."""
        self._check_fitted("estimators_")
        X = check_X(X)
        if active_impl() == "reference":
            per_tree = [tree.predict(X) for tree in self.estimators_]
        elif stacking_active():
            return self._predict_stacked(X)
        else:
            per_tree = [tree.flat_tree_.predict(X) for tree in self.estimators_]
        return self._weighted_median(np.column_stack(per_tree))


# ---------------------------------------------------------------------------
# XGBoost-style exact gradient boosting
# ---------------------------------------------------------------------------
@dataclass
class _BoostNode:
    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_BoostNode"] = None
    right: Optional["_BoostNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _NewtonTree:
    """Regression tree on (gradient, hessian) statistics with XGBoost gains."""

    def __init__(
        self,
        max_depth: int,
        min_child_weight: float,
        reg_lambda: float,
        gamma: float,
        min_samples_leaf: int,
    ):
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_samples_leaf = min_samples_leaf

    def fit(self, X, grad, hess) -> "_NewtonTree":
        # Squared loss has unit hessians, for which the hessian prefix sums
        # are just the split positions (exact in float64).
        self._uniform_hess = bool(np.all(hess == 1.0))
        self.root_ = self._build(X, grad, hess, np.arange(X.shape[0]), depth=0)
        self.flat_ = FlatTree.from_node(self.root_)
        return self

    def _leaf_value(self, grad_sum: float, hess_sum: float) -> float:
        return -grad_sum / (hess_sum + self.reg_lambda)

    def _score(self, grad_sum: float, hess_sum: float) -> float:
        return grad_sum ** 2 / (hess_sum + self.reg_lambda)

    def _best_split_reference(self, X, grad, hess, grad_total, hess_total, parent_score):
        """Per-feature-loop split search on the node's row subset (reference)."""
        n_samples = X.shape[0]
        best_gain = 0.0
        best = None
        for feature in range(X.shape[1]):
            order = np.argsort(X[:, feature], kind="mergesort")
            col = X[order, feature]
            g = grad[order]
            h = hess[order]
            g_cum = np.cumsum(g)[:-1]
            h_cum = np.cumsum(h)[:-1]
            g_right = grad_total - g_cum
            h_right = hess_total - h_cum

            idx = np.arange(n_samples - 1)
            valid = col[:-1] < col[1:]
            valid &= idx + 1 >= self.min_samples_leaf
            valid &= n_samples - (idx + 1) >= self.min_samples_leaf
            valid &= h_cum >= self.min_child_weight
            valid &= h_right >= self.min_child_weight
            if not np.any(valid):
                continue

            gain = (
                0.5
                * (
                    g_cum ** 2 / (h_cum + self.reg_lambda)
                    + g_right ** 2 / (h_right + self.reg_lambda)
                    - parent_score
                )
                - self.gamma
            )
            gain[~valid] = -np.inf
            best_idx = int(np.argmax(gain))
            if gain[best_idx] > best_gain + 1e-12:
                best_gain = float(gain[best_idx])
                best = (feature, 0.5 * (col[best_idx] + col[best_idx + 1]))
        return best

    def _best_split(self, cols, grad, hess, grad_total, hess_total, parent_score):
        """Vectorised split search over every feature column at once.

        ``cols`` is the node's gathered ``(n_samples, n_features)`` block;
        tie-breaking matches :meth:`_best_split_reference` exactly.
        """
        n_samples = cols.shape[0]
        order = cols.argsort(axis=0, kind="mergesort")
        column_pos = _column_positions(cols.shape[1])
        col_sorted = cols[order, column_pos]
        g_cum = grad[order].cumsum(axis=0)[:-1]
        if getattr(self, "_uniform_hess", False):
            h_cum = _positions(n_samples)[:, None]
        else:
            h_cum = hess[order].cumsum(axis=0)[:-1]
        g_right = grad_total - g_cum
        h_right = hess_total - h_cum

        valid = col_sorted[:-1] < col_sorted[1:]
        valid &= _bounds_mask(n_samples, self.min_samples_leaf)[:, None]
        valid &= h_cum >= self.min_child_weight
        valid &= h_right >= self.min_child_weight

        gain = (
            0.5
            * (
                g_cum ** 2 / (h_cum + self.reg_lambda)
                + g_right ** 2 / (h_right + self.reg_lambda)
                - parent_score
            )
            - self.gamma
        )
        gain[~valid] = -np.inf
        best_rows = gain.argmax(axis=0)
        per_feature_gain = gain[best_rows, column_pos]

        best_gain = 0.0
        best = None
        for feature in range(cols.shape[1]):
            candidate = per_feature_gain[feature]
            if candidate > best_gain + 1e-12:
                row = best_rows[feature]
                best_gain = float(candidate)
                best = (
                    feature,
                    0.5 * (col_sorted[row, feature] + col_sorted[row + 1, feature]),
                )
        return best

    def _build(self, X, grad, hess, indices, depth: int) -> _BoostNode:
        g_node = grad[indices]
        h_node = hess[indices]
        grad_total = float(g_node.sum())
        hess_total = float(h_node.sum())
        node = _BoostNode(value=self._leaf_value(grad_total, hess_total))
        n_samples = indices.size
        if depth >= self.max_depth or n_samples < 2 * self.min_samples_leaf:
            return node

        parent_score = self._score(grad_total, hess_total)
        if active_impl() == "reference":
            best = self._best_split_reference(
                X[indices], g_node, h_node, grad_total, hess_total, parent_score
            )
        else:
            best = self._best_split(
                X[indices], g_node, h_node, grad_total, hess_total, parent_score
            )

        if best is None:
            return node

        feature, threshold = best
        mask = X[indices, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, grad, hess, indices[mask], depth + 1)
        node.right = self._build(X, grad, hess, indices[~mask], depth + 1)
        return node

    def predict(self, X) -> np.ndarray:
        if active_impl() == "reference":
            return self.predict_reference(X)
        return self.flat_.predict(X)

    def predict_reference(self, X) -> np.ndarray:
        """Recursive node-walk prediction (the pre-flattening reference)."""
        out = np.empty(X.shape[0])

        def walk(node: _BoostNode, indices: np.ndarray) -> None:
            if node.is_leaf or indices.size == 0:
                out[indices] = node.value
                return
            mask = X[indices, node.feature] <= node.threshold
            walk(node.left, indices[mask])
            walk(node.right, indices[~mask])

        walk(self.root_, np.arange(X.shape[0]))
        return out


class GradientBoostingRegressor(BaseRegressor):
    """XGBoost-style second-order gradient boosting on squared loss.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of the individual Newton trees.
    min_child_weight:
        Minimum hessian sum per leaf (with squared loss this equals the
        minimum number of samples per leaf).
    reg_lambda:
        L2 regularisation on leaf values.
    gamma:
        Minimum loss reduction required for a split.
    subsample:
        Row subsampling fraction per round (stochastic gradient boosting).
    random_state:
        Seed for row subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingRegressor":
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        X, y = check_X_y(X, y)
        n_samples = X.shape[0]
        rng = np.random.default_rng(self.random_state)

        self.base_prediction_ = float(y.mean())
        current = np.full(n_samples, self.base_prediction_)
        self.estimators_: List[_NewtonTree] = []

        for _ in range(self.n_estimators):
            grad = current - y          # d/dF 0.5*(F-y)^2
            hess = np.ones(n_samples)   # second derivative of squared loss
            if self.subsample < 1.0:
                n_sub = max(2, int(round(self.subsample * n_samples)))
                subset = rng.choice(n_samples, size=n_sub, replace=False)
            else:
                subset = slice(None)
            tree = _NewtonTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                gamma=self.gamma,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X[subset], grad[subset], hess[subset])
            update = tree.predict(X)
            current += self.learning_rate * update
            self.estimators_.append(tree)

        self.n_features_in_ = X.shape[1]
        return self

    def stacked(self) -> StackedTrees:
        """All Newton trees concatenated into one :class:`StackedTrees` (cached)."""
        self._check_fitted("estimators_")
        stacked = getattr(self, "_stacked_cache", None)
        if stacked is None:
            stacked = StackedTrees(tree.flat_ for tree in self.estimators_)
            self._stacked_cache = stacked
        return stacked

    def _predict_stacked(self, X: np.ndarray) -> np.ndarray:
        """Boosted sum over one stacked descent (no checks).

        The per-tree contributions fold in boosting order with the exact
        accumulation the sequential loop performs (see
        :meth:`~repro.ml.tree.StackedTrees.fold`), so the result stays
        bit-identical to it — a single vectorised sum would reassociate
        the floating-point adds.
        """
        return self.stacked().fold(X, self.base_prediction_, self.learning_rate)

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_X(X)
        if stacking_active() and active_impl() != "reference":
            return self._predict_stacked(X)
        prediction = np.full(X.shape[0], self.base_prediction_)
        for tree in self.estimators_:
            prediction += self.learning_rate * tree.predict(X)
        return prediction


# ---------------------------------------------------------------------------
# LightGBM-style histogram gradient boosting
# ---------------------------------------------------------------------------
def _unbinned_flat_tree(flat: FlatTree, bin_edges) -> FlatTree:
    """Rewrite a histogram tree's bin-index thresholds into raw-value space.

    A histogram split "``bin <= s``" with ``bin = searchsorted(edges, x,
    side="left")`` holds exactly when ``x <= edges[s]`` (edges are strictly
    increasing, so ``#{edges < x} <= s ⟺ not edges[s] < x``).  Replacing
    each interior threshold ``s`` by ``edges[feature][s]`` therefore routes
    raw feature rows identically to the binned descent — which lets the
    stacked predictor skip the per-feature ``searchsorted`` pass entirely.
    """
    threshold = flat.threshold.copy()
    for i in np.flatnonzero(flat.feature >= 0):
        threshold[i] = bin_edges[flat.feature[i]][int(flat.threshold[i])]
    return FlatTree(
        flat.feature, threshold, flat.left, flat.right, flat.value, flat.depth
    )


class _HistTree:
    """Depth-limited tree over pre-binned features using histogram gains."""

    def __init__(self, max_depth, min_samples_leaf, reg_lambda, max_bins):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.max_bins = max_bins

    def fit(self, binned: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> "_HistTree":
        self.root_ = self._build(binned, grad, hess, np.arange(binned.shape[0]), 0)
        self.flat_ = FlatTree.from_node(self.root_)
        return self

    def _leaf_value(self, g: float, h: float) -> float:
        return -g / (h + self.reg_lambda)

    def _build(self, binned, grad, hess, indices, depth) -> _BoostNode:
        grad_total = float(grad[indices].sum())
        hess_total = float(hess[indices].sum())
        node = _BoostNode(value=self._leaf_value(grad_total, hess_total))
        if depth >= self.max_depth or indices.size < 2 * self.min_samples_leaf:
            return node

        parent_score = grad_total ** 2 / (hess_total + self.reg_lambda)
        best_gain = 1e-12
        best = None
        sub_binned = binned[indices]
        sub_grad = grad[indices]
        sub_hess = hess[indices]

        for feature in range(binned.shape[1]):
            bins = sub_binned[:, feature]
            grad_hist = np.bincount(bins, weights=sub_grad, minlength=self.max_bins)
            hess_hist = np.bincount(bins, weights=sub_hess, minlength=self.max_bins)
            count_hist = np.bincount(bins, minlength=self.max_bins)

            g_cum = np.cumsum(grad_hist)[:-1]
            h_cum = np.cumsum(hess_hist)[:-1]
            c_cum = np.cumsum(count_hist)[:-1]
            g_right = grad_total - g_cum
            h_right = hess_total - h_cum
            c_right = indices.size - c_cum

            valid = (c_cum >= self.min_samples_leaf) & (c_right >= self.min_samples_leaf)
            if not np.any(valid):
                continue
            gain = 0.5 * (
                g_cum ** 2 / (h_cum + self.reg_lambda)
                + g_right ** 2 / (h_right + self.reg_lambda)
                - parent_score
            )
            gain[~valid] = -np.inf
            best_bin = int(np.argmax(gain))
            if gain[best_bin] > best_gain:
                best_gain = float(gain[best_bin])
                best = (feature, best_bin)

        if best is None:
            return node

        feature, split_bin = best
        mask = sub_binned[:, feature] <= split_bin
        node.feature = feature
        node.threshold = float(split_bin)
        node.left = self._build(binned, grad, hess, indices[mask], depth + 1)
        node.right = self._build(binned, grad, hess, indices[~mask], depth + 1)
        return node

    def predict(self, binned: np.ndarray) -> np.ndarray:
        if active_impl() == "reference":
            return self.predict_reference(binned)
        return self.flat_.predict(binned)

    def predict_reference(self, binned: np.ndarray) -> np.ndarray:
        """Recursive node-walk prediction (the pre-flattening reference)."""
        out = np.empty(binned.shape[0])

        def walk(node: _BoostNode, indices: np.ndarray) -> None:
            if node.is_leaf or indices.size == 0:
                out[indices] = node.value
                return
            mask = binned[indices, node.feature] <= node.threshold
            walk(node.left, indices[mask])
            walk(node.right, indices[~mask])

        walk(self.root_, np.arange(binned.shape[0]))
        return out


class HistGradientBoostingRegressor(BaseRegressor):
    """LightGBM-style gradient boosting with histogram split finding.

    Features are quantile-binned into at most ``max_bins`` buckets once,
    before boosting; every split search then scans bin histograms instead of
    sorted raw values, which is the optimisation that makes LightGBM fast.

    Parameters
    ----------
    n_estimators, learning_rate, max_depth, min_samples_leaf, reg_lambda:
        Usual boosting hyper-parameters.
    max_bins:
        Maximum number of histogram bins per feature (2..256).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 6,
        min_samples_leaf: int = 5,
        reg_lambda: float = 1.0,
        max_bins: int = 64,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.max_bins = max_bins

    # -- binning ------------------------------------------------------------
    def _fit_bins(self, X: np.ndarray) -> None:
        self.bin_edges_ = []
        for feature in range(X.shape[1]):
            quantiles = np.quantile(
                X[:, feature], np.linspace(0, 1, self.max_bins + 1)[1:-1]
            )
            self.bin_edges_.append(np.unique(quantiles))

    def _transform_bins(self, X: np.ndarray) -> np.ndarray:
        binned = np.empty(X.shape, dtype=np.int64)
        for feature, edges in enumerate(self.bin_edges_):
            binned[:, feature] = np.searchsorted(edges, X[:, feature], side="left")
        return binned

    # -- fitting ------------------------------------------------------------
    def fit(self, X, y) -> "HistGradientBoostingRegressor":
        if not 2 <= self.max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        X, y = check_X_y(X, y)
        n_samples = X.shape[0]

        self._fit_bins(X)
        binned = self._transform_bins(X)

        self.base_prediction_ = float(y.mean())
        current = np.full(n_samples, self.base_prediction_)
        self.estimators_: List[_HistTree] = []

        for _ in range(self.n_estimators):
            grad = current - y
            hess = np.ones(n_samples)
            tree = _HistTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
                max_bins=self.max_bins,
            )
            tree.fit(binned, grad, hess)
            current += self.learning_rate * tree.predict(binned)
            self.estimators_.append(tree)

        self.n_features_in_ = X.shape[1]
        return self

    def stacked(self) -> StackedTrees:
        """All histogram trees stacked, with thresholds remapped to raw space.

        The stack descends the *unbinned* feature matrix directly (see
        :func:`_unbinned_flat_tree`), so a prediction is one iterative
        descent with no per-feature binning pass.  Built lazily and cached.
        """
        self._check_fitted("estimators_")
        stacked = getattr(self, "_stacked_cache", None)
        if stacked is None:
            stacked = StackedTrees(
                _unbinned_flat_tree(tree.flat_, self.bin_edges_)
                for tree in self.estimators_
            )
            self._stacked_cache = stacked
        return stacked

    def _predict_stacked(self, X: np.ndarray) -> np.ndarray:
        """Boosted sum over one raw-space stacked descent (no checks).

        Contributions fold in boosting order (see
        :meth:`~repro.ml.tree.StackedTrees.fold`) so the accumulation is
        bit-identical to the sequential per-tree loop over binned features.
        """
        return self.stacked().fold(X, self.base_prediction_, self.learning_rate)

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        if stacking_active() and active_impl() != "reference":
            return self._predict_stacked(X)
        binned = self._transform_bins(X)
        prediction = np.full(X.shape[0], self.base_prediction_)
        for tree in self.estimators_:
            prediction += self.learning_rate * tree.predict(binned)
        return prediction
