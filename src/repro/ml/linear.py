"""Linear regression family: ordinary least squares, Ridge and ElasticNet.

These are the "linear models" group of the paper's Table II.  ElasticNet is
fitted by cyclic coordinate descent with soft-thresholding, the standard
algorithm used by scikit-learn and glmnet.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseRegressor, check_X, check_X_y

__all__ = ["LinearRegression", "Ridge", "ElasticNet"]


class LinearRegression(BaseRegressor):
    """Ordinary least-squares linear regression.

    Parameters
    ----------
    fit_intercept:
        Whether to fit an intercept term.  When ``False`` the data is assumed
        to be centred already.
    """

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        coef, *_ = np.linalg.lstsq(Xc, yc, rcond=None)
        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_


class Ridge(BaseRegressor):
    """L2-regularised linear regression solved in closed form.

    Parameters
    ----------
    alpha:
        Regularisation strength; must be non-negative.
    fit_intercept:
        Whether to fit an intercept (the intercept is never penalised).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "Ridge":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        n_features = Xc.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        self.n_features_in_ = n_features
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_


def _soft_threshold(value: float, threshold: float) -> float:
    """Soft-thresholding operator used by coordinate descent."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class ElasticNet(BaseRegressor):
    """ElasticNet regression fitted by cyclic coordinate descent.

    Minimises ``1/(2n) ||y - Xw||^2 + alpha * l1_ratio * ||w||_1
    + 0.5 * alpha * (1 - l1_ratio) * ||w||^2``.

    Parameters
    ----------
    alpha:
        Overall regularisation strength.
    l1_ratio:
        Mix between L1 (1.0 → Lasso) and L2 (0.0 → Ridge) penalties.
    max_iter:
        Maximum number of full coordinate-descent sweeps.
    tol:
        Convergence tolerance on the maximum coefficient update.
    fit_intercept:
        Whether to fit an (unpenalised) intercept.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        l1_ratio: float = 0.5,
        max_iter: int = 1000,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ):
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "ElasticNet":
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= self.l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        X, y = check_X_y(X, y)
        n_samples, n_features = X.shape

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(n_features)
            y_mean = 0.0
            Xc, yc = X.copy(), y.copy()

        l1_penalty = self.alpha * self.l1_ratio * n_samples
        l2_penalty = self.alpha * (1.0 - self.l1_ratio) * n_samples

        coef = np.zeros(n_features)
        column_norms = (Xc ** 2).sum(axis=0)
        residual = yc - Xc @ coef

        n_iterations = 0
        for n_iterations in range(1, self.max_iter + 1):
            max_update = 0.0
            for j in range(n_features):
                if column_norms[j] == 0.0:
                    continue
                old = coef[j]
                # Partial residual excluding feature j's contribution.
                rho = Xc[:, j] @ residual + column_norms[j] * old
                new = _soft_threshold(rho, l1_penalty) / (column_norms[j] + l2_penalty)
                if new != old:
                    residual += Xc[:, j] * (old - new)
                    coef[j] = new
                    max_update = max(max_update, abs(new - old))
            if max_update <= self.tol:
                break

        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.n_iter_ = n_iterations
        self.n_features_in_ = n_features
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_
