"""Bayesian ridge regression (evidence-maximisation, Tipping/Bishop).

This is the "Bayesian Regression" candidate of the paper's Table II; on Gadi
it is selected as the best model for ``dgemm`` (paper Table V) because its
evaluation cost is tiny while its accuracy matches ordinary linear
regression.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseRegressor, check_X, check_X_y

__all__ = ["BayesianRidge"]


class BayesianRidge(BaseRegressor):
    """Bayesian linear regression with Gamma hyper-priors.

    The noise precision ``alpha`` and the weight precision ``lambda`` are
    estimated by iterative evidence maximisation (MacKay updates), exactly as
    in scikit-learn's ``BayesianRidge``.

    Parameters
    ----------
    max_iter:
        Maximum number of evidence-maximisation iterations.
    tol:
        Convergence threshold on the change of the coefficient vector.
    alpha_1, alpha_2:
        Shape / rate of the Gamma prior over the noise precision.
    lambda_1, lambda_2:
        Shape / rate of the Gamma prior over the weight precision.
    fit_intercept:
        Whether to fit an (unpenalised) intercept term.
    """

    def __init__(
        self,
        max_iter: int = 300,
        tol: float = 1e-4,
        alpha_1: float = 1e-6,
        alpha_2: float = 1e-6,
        lambda_1: float = 1e-6,
        lambda_2: float = 1e-6,
        fit_intercept: bool = True,
    ):
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_1 = alpha_1
        self.alpha_2 = alpha_2
        self.lambda_1 = lambda_1
        self.lambda_2 = lambda_2
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "BayesianRidge":
        X, y = check_X_y(X, y)
        n_samples, n_features = X.shape

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(n_features)
            y_mean = 0.0
            Xc, yc = X, y

        # Pre-compute the SVD so each iteration is cheap.
        U, S, Vt = np.linalg.svd(Xc, full_matrices=False)
        eigen_vals = S ** 2
        Uty = U.T @ yc

        y_var = float(np.var(yc))
        alpha = 1.0 / (y_var + 1e-12)  # noise precision
        lam = 1.0  # weight precision

        coef = np.zeros(n_features)
        for iteration in range(self.max_iter):
            coef_old = coef
            # Posterior mean of the weights given current hyper-parameters.
            scaled = S * Uty / (eigen_vals + lam / alpha)
            coef = Vt.T @ scaled
            # Effective number of parameters.
            gamma = float(np.sum(eigen_vals / (eigen_vals + lam / alpha)))
            residual_sq = float(np.sum((yc - Xc @ coef) ** 2))
            coef_sq = float(coef @ coef)
            lam = (gamma + 2.0 * self.lambda_1) / (coef_sq + 2.0 * self.lambda_2)
            alpha = (n_samples - gamma + 2.0 * self.alpha_1) / (
                residual_sq + 2.0 * self.alpha_2
            )
            if np.sum(np.abs(coef - coef_old)) < self.tol:
                break

        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.alpha_ = float(alpha)
        self.lambda_ = float(lam)
        self.n_iter_ = iteration + 1
        self.n_features_in_ = n_features
        # Posterior covariance (used by predict with return_std).
        self.sigma_ = Vt.T @ np.diag(1.0 / (alpha * eigen_vals + lam)) @ Vt
        return self

    def predict(self, X, return_std: bool = False):
        """Predict the posterior mean (and optionally the predictive std)."""
        self._check_fitted("coef_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        mean = X @ self.coef_ + self.intercept_
        if not return_std:
            return mean
        var = 1.0 / self.alpha_ + np.einsum("ij,jk,ik->i", X, self.sigma_, X)
        return mean, np.sqrt(np.maximum(var, 0.0))
