"""k-nearest-neighbour regression.

kNN is included in the paper's candidate pool (Table II) and, tellingly, is
one of the most *accurate* models on several routines but is eliminated by
the estimated-speedup criterion because its evaluation time (a full distance
computation against the training set) is orders of magnitude larger than the
linear models' — exactly the accuracy/latency trade-off the paper's model
selection is designed to capture.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseRegressor, check_X, check_X_y

__all__ = ["KNeighborsRegressor"]


class KNeighborsRegressor(BaseRegressor):
    """k-nearest-neighbour regressor with uniform or distance weighting.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours to average.
    weights:
        ``"uniform"`` (plain average) or ``"distance"`` (inverse-distance
        weighted average; exact matches short-circuit to the stored target).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsRegressor":
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"Unknown weights {self.weights!r}")
        X, y = check_X_y(X, y)
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds the number of "
                f"training samples ({X.shape[0]})"
            )
        self.X_train_ = X
        self.y_train_ = y
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("X_train_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        # Squared Euclidean distances via the expansion trick.
        cross = X @ self.X_train_.T
        sq_train = np.einsum("ij,ij->i", self.X_train_, self.X_train_)
        sq_query = np.einsum("ij,ij->i", X, X)
        distances_sq = np.maximum(sq_query[:, None] - 2.0 * cross + sq_train[None, :], 0.0)

        k = self.n_neighbors
        neighbor_idx = np.argpartition(distances_sq, k - 1, axis=1)[:, :k]
        neighbor_targets = self.y_train_[neighbor_idx]

        if self.weights == "uniform":
            return neighbor_targets.mean(axis=1)

        neighbor_dist = np.sqrt(
            np.take_along_axis(distances_sq, neighbor_idx, axis=1)
        )
        predictions = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            dist = neighbor_dist[i]
            exact = dist <= 1e-12
            if np.any(exact):
                predictions[i] = neighbor_targets[i][exact].mean()
            else:
                inv = 1.0 / dist
                predictions[i] = float(
                    np.dot(inv, neighbor_targets[i]) / inv.sum()
                )
        return predictions
