"""Cross-validation, data splitting and grid search.

The ADSALA installation workflow (paper Section IV) performs stratified
train/test splitting (15 % test), K-fold hyper-parameter tuning and a grid
search per candidate model; this module provides those pieces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence

import numpy as np

from repro.ml.base import BaseRegressor, check_X_y, clone
from repro.ml.metrics import root_mean_squared_error
from repro.parallel import map_parallel

__all__ = [
    "KFold",
    "train_test_split",
    "stratified_train_test_split",
    "ParameterGrid",
    "GridSearchCV",
    "cross_val_score",
]


class KFold:
    """K-fold cross-validation splitter.

    Parameters
    ----------
    n_splits:
        Number of folds (at least 2).
    shuffle:
        Whether to shuffle indices before splitting.
    random_state:
        Seed used when ``shuffle`` is true.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n_samples = np.asarray(X).shape[0]
        if n_samples < self.n_splits:
            raise ValueError(
                f"Cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size


def train_test_split(
    X, y, test_size: float = 0.15, random_state: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random train/test split of a feature matrix and target vector."""
    X, y = check_X_y(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n_samples = X.shape[0]
    n_test = max(1, int(round(test_size * n_samples)))
    if n_test >= n_samples:
        raise ValueError("test_size leaves no training samples")
    rng = np.random.default_rng(random_state)
    permutation = rng.permutation(n_samples)
    test_idx = permutation[:n_test]
    train_idx = permutation[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def stratified_train_test_split(
    X,
    y,
    test_size: float = 0.15,
    n_bins: int = 10,
    random_state: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Train/test split stratified over quantile bins of a continuous target.

    The paper stratifies its 15 % test split so that the (heavily skewed)
    runtime distribution is represented in both partitions.  Continuous
    targets are stratified by binning into ``n_bins`` quantile buckets and
    sampling ``test_size`` of every bucket.
    """
    X, y = check_X_y(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n_samples = X.shape[0]
    n_bins = max(1, min(n_bins, n_samples // 2))
    quantiles = np.quantile(y, np.linspace(0, 1, n_bins + 1)[1:-1])
    bins = np.searchsorted(quantiles, y, side="left")

    rng = np.random.default_rng(random_state)
    test_indices: List[int] = []
    for bin_id in np.unique(bins):
        members = np.flatnonzero(bins == bin_id)
        rng.shuffle(members)
        n_test = int(round(test_size * members.size))
        test_indices.extend(members[:n_test].tolist())

    # Guarantee at least one test sample overall.
    if not test_indices:
        test_indices = [int(rng.integers(0, n_samples))]
    test_mask = np.zeros(n_samples, dtype=bool)
    test_mask[np.asarray(test_indices)] = True
    if test_mask.all():
        test_mask[int(rng.integers(0, n_samples))] = False
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


class ParameterGrid:
    """Iterate over the cartesian product of a hyper-parameter grid."""

    def __init__(self, grid: Dict[str, Sequence[Any]]):
        if not isinstance(grid, dict):
            raise TypeError("grid must be a dict of parameter lists")
        self.grid = {k: list(v) for k, v in grid.items()}
        for name, values in self.grid.items():
            if len(values) == 0:
                raise ValueError(f"Parameter {name!r} has an empty value list")

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        if not self.grid:
            yield {}
            return
        keys = sorted(self.grid)
        for combination in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combination))

    def __len__(self) -> int:
        length = 1
        for values in self.grid.values():
            length *= len(values)
        return length


def _fit_and_score_fold(payload) -> float:
    """Fit a clone on one fold and score it (a :func:`map_parallel` worker)."""
    estimator, X, y, train_idx, test_idx, scoring = payload
    model = clone(estimator)
    model.fit(X[train_idx], y[train_idx])
    prediction = model.predict(X[test_idx])
    if scoring == "neg_rmse":
        return -root_mean_squared_error(y[test_idx], prediction)
    if scoring == "r2":
        from repro.ml.metrics import r2_score

        return r2_score(y[test_idx], prediction)
    raise ValueError(f"Unknown scoring {scoring!r}")


def cross_val_score(
    estimator: BaseRegressor,
    X,
    y,
    cv: KFold | int = 5,
    scoring: str = "neg_rmse",
    n_jobs: int | None = 1,
    backend: str = "process",
) -> np.ndarray:
    """Cross-validated scores (higher is better).

    ``n_jobs`` fans the folds out over a worker pool; fold membership and
    every seed are fixed before dispatch, so the scores are identical to the
    serial run for every worker count.
    """
    X, y = check_X_y(X, y)
    if isinstance(cv, int):
        cv = KFold(n_splits=cv, shuffle=True, random_state=0)
    payloads = [
        (estimator, X, y, train_idx, test_idx, scoring)
        for train_idx, test_idx in cv.split(X)
    ]
    scores = map_parallel(_fit_and_score_fold, payloads, n_jobs=n_jobs, backend=backend)
    return np.asarray(scores)


def _score_param_combo(payload) -> float:
    """Mean CV score of one parameter combination (a worker function)."""
    estimator, params, X, y, splits, scoring = payload
    candidate = clone(estimator).set_params(**params)
    scores = [
        _fit_and_score_fold((candidate, X, y, train_idx, test_idx, scoring))
        for train_idx, test_idx in splits
    ]
    return float(np.mean(scores))


@dataclass
class GridSearchCV:
    """Exhaustive hyper-parameter search with K-fold cross-validation.

    ``n_jobs`` fans the parameter combinations out over a worker pool; the
    fold splits are materialised once before dispatch, so the search result
    is identical to the serial run for every worker count.

    Attributes populated by :meth:`fit`:

    * ``best_params_`` — the winning hyper-parameter combination,
    * ``best_score_`` — its mean CV score (higher is better),
    * ``best_estimator_`` — a fresh estimator refitted on all data,
    * ``results_`` — list of ``(params, mean_score)`` pairs.
    """

    estimator: BaseRegressor
    param_grid: Dict[str, Sequence[Any]]
    cv: int = 3
    scoring: str = "neg_rmse"
    n_jobs: int | None = 1
    backend: str = "process"
    results_: List[tuple[Dict[str, Any], float]] = field(default_factory=list, init=False)

    def fit(self, X, y) -> "GridSearchCV":
        X, y = check_X_y(X, y)
        splitter = KFold(n_splits=self.cv, shuffle=True, random_state=0)
        splits = list(splitter.split(X))
        combos = list(ParameterGrid(self.param_grid))
        payloads = [
            (self.estimator, params, X, y, splits, self.scoring)
            for params in combos
        ]
        mean_scores = map_parallel(
            _score_param_combo, payloads, n_jobs=self.n_jobs, backend=self.backend
        )
        best_score = -np.inf
        best_params: Dict[str, Any] = {}
        self.results_ = []
        for params, mean_score in zip(combos, mean_scores):
            self.results_.append((params, mean_score))
            if mean_score > best_score:
                best_score = mean_score
                best_params = params
        self.best_score_ = best_score
        self.best_params_ = best_params
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "best_estimator_"):
            raise RuntimeError("GridSearchCV is not fitted yet")
        return self.best_estimator_.predict(X)
