"""CART regression tree with variance-reduction splits.

The tree is the building block for the Random Forest, AdaBoost and both
gradient-boosting candidates.  Two hot paths are vectorised:

* **split search** — candidate thresholds for *all* examined features are
  evaluated in one 2-D pass (a single column-wise ``argsort`` plus prefix
  sums of the targets), and nodes partition an index array instead of
  copying ``X`` row-subsets down the recursion;
* **prediction** — after ``fit`` the node tree is compiled into a
  struct-of-arrays :class:`FlatTree` (``feature[]``, ``threshold[]``,
  ``left[]``, ``right[]``, ``value[]``) and ``predict`` descends it
  iteratively for the whole query batch at once, with no per-node Python
  recursion.

The pre-vectorisation implementations are kept as reference paths
(:func:`_best_split_reference`, :meth:`DecisionTreeRegressor.predict_reference`)
and the equivalence is asserted in ``tests/ml/test_flat_tree.py``; wrap code
in :func:`reference_mode` to force them (used by
``benchmarks/bench_install_scaling.py`` to measure the speedup).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml import _native
from repro.ml.base import BaseRegressor, check_X, check_X_y

__all__ = [
    "DecisionTreeRegressor",
    "FlatTree",
    "StackedTrees",
    "native_descent_active",
    "reference_mode",
]


#: Active implementation: "vectorized" (default) or "reference".
_IMPL = "vectorized"


@contextmanager
def reference_mode():
    """Force the pre-vectorisation split search and recursive prediction.

    Affects every tree-based model in :mod:`repro.ml` (decision tree, random
    forest, AdaBoost and both gradient-boosting variants) for the duration
    of the ``with`` block.  Fitted models are identical either way — the
    reference mode exists for equivalence tests and benchmark baselines.
    """
    global _IMPL
    previous = _IMPL
    _IMPL = "reference"
    try:
        yield
    finally:
        _IMPL = previous


def active_impl() -> str:
    """The currently active implementation ("vectorized" or "reference")."""
    return _IMPL


def native_descent_active() -> bool:
    """Whether new :class:`StackedTrees` will descend through the C kernel.

    False when the build is unavailable or the descent stage is switched
    off (``ADSALA_NATIVE=0`` or ``ADSALA_NATIVE_DESCENT=0``); existing
    stacks keep whatever kernel they resolved at construction.
    """
    return _native.load_kernel() is not None


#: Whether ensembles may predict through their StackedTrees compilation.
_STACKING = True


@contextmanager
def unstacked_mode():
    """Force the per-tree flat-descent loop in every tree ensemble.

    This is the middle rung of the implementation ladder — newer than the
    recursive :func:`reference_mode`, older than the whole-ensemble
    :class:`StackedTrees` descent — kept so benchmarks can measure the
    stacking speedup in isolation.  Predictions are bit-identical in all
    three modes.
    """
    global _STACKING
    previous = _STACKING
    _STACKING = False
    try:
        yield
    finally:
        _STACKING = previous


def stacking_active() -> bool:
    """True when ensembles should predict through their stacked form."""
    return _STACKING and _IMPL == "vectorized"


@dataclass
class _Node:
    """A single node of the fitted tree."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class FlatTree:
    """Struct-of-arrays compilation of a fitted binary regression tree.

    ``feature[i] == -1`` marks node ``i`` as a leaf; interior nodes route a
    row left when ``X[row, feature[i]] <= threshold[i]``.  :meth:`predict`
    descends all query rows simultaneously (one fancy-indexing step per tree
    level), replacing the per-node recursion over Python ``_Node`` objects.
    The same compiled form serves every tree ensemble in :mod:`repro.ml`.
    """

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "value",
        "depth",
        "_descent_feature",
        "_descent_threshold",
        "_children",
    )

    def __init__(self, feature, threshold, left, right, value, depth):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value
        self.depth = depth
        # Descent tables with self-looping leaves: a row that reaches a leaf
        # keeps routing to the same node (feature 0 vs +inf always goes
        # "left" onto itself), so predict can run exactly `depth` fixed
        # iterations with no per-level active-row bookkeeping.
        node_ids = np.arange(feature.shape[0], dtype=np.intp)
        is_leaf = feature < 0
        self._descent_feature = np.where(is_leaf, 0, feature)
        self._descent_threshold = np.where(is_leaf, np.inf, threshold)
        # Column 0 = right child, column 1 = left child, so the boolean
        # "goes left" (X[..] <= threshold, false for NaN — same routing as
        # the recursive reference) indexes the children table directly.
        self._children = np.column_stack(
            (
                np.where(is_leaf, node_ids, right),
                np.where(is_leaf, node_ids, left),
            )
        )

    def __getstate__(self):
        return (self.feature, self.threshold, self.left, self.right, self.value, self.depth)

    def __setstate__(self, state):
        self.__init__(*state)

    # -- shared-memory export -----------------------------------------------
    #: Array slots exported by to_shared (the descent tables included, so a
    #: mapping process never recomputes them from the shared pages).
    _SHARED_ARRAYS = (
        "feature",
        "threshold",
        "left",
        "right",
        "value",
        "_descent_feature",
        "_descent_threshold",
        "_children",
    )

    def to_shared(self, registry) -> dict:
        """Export every array slot into ``registry`` segments.

        Returns a picklable state dict for :meth:`from_shared`.  The depth
        scalar rides inline; all arrays become
        :class:`~repro.shm.SharedArrayRef` entries.
        """
        state = {
            name: registry.export_array(getattr(self, name))
            for name in self._SHARED_ARRAYS
        }
        state["depth"] = int(self.depth)
        return state

    @classmethod
    def from_shared(cls, state: dict, registry) -> "FlatTree":
        """Rebuild a tree over mapped segments, bypassing ``__init__``.

        The descent tables come straight from the shared pages — nothing is
        recomputed or copied, so N mapping processes share one set of pages.
        """
        tree = cls.__new__(cls)
        for name in cls._SHARED_ARRAYS:
            setattr(tree, name, registry.map_array(state[name]))
        tree.depth = state["depth"]
        return tree

    @classmethod
    def from_node(cls, root) -> "FlatTree":
        """Compile a linked node tree (any object with ``is_leaf``/``feature``/
        ``threshold``/``left``/``right``/``value``) into flat arrays."""
        order = []
        depths = []
        stack = [(root, 0)]
        max_depth = 0
        while stack:
            node, node_depth = stack.pop()
            order.append(node)
            depths.append(node_depth)
            if node_depth > max_depth:
                max_depth = node_depth
            if not node.is_leaf:
                stack.append((node.right, node_depth + 1))
                stack.append((node.left, node_depth + 1))
        index = {id(node): i for i, node in enumerate(order)}
        n = len(order)
        feature = np.full(n, -1, dtype=np.intp)
        threshold = np.zeros(n)
        left = np.full(n, -1, dtype=np.intp)
        right = np.full(n, -1, dtype=np.intp)
        value = np.empty(n)
        for i, node in enumerate(order):
            value[i] = node.value
            if not node.is_leaf:
                feature[i] = node.feature
                threshold[i] = node.threshold
                left[i] = index[id(node.left)]
                right[i] = index[id(node.right)]
        return cls(feature, threshold, left, right, value, max_depth)

    @property
    def n_nodes(self) -> int:
        return self.feature.shape[0]

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.feature < 0))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorised iterative descent of all rows of ``X``.

        One fancy-indexing step per tree level over the whole query batch;
        rows that reach a leaf early self-loop there until the fixed
        ``depth`` iterations finish.
        """
        descent_feature = self._descent_feature
        descent_threshold = self._descent_threshold
        children = self._children
        rows = np.arange(X.shape[0])
        node = np.zeros(X.shape[0], dtype=np.intp)
        for _ in range(self.depth):
            go_left = X[rows, descent_feature[node]] <= descent_threshold[node]
            node = children[node, go_left.view(np.int8)]
        return self.value[node]


class StackedTrees:
    """Every :class:`FlatTree` of an ensemble concatenated into one
    struct-of-arrays.

    The per-tree flat arrays (descent feature/threshold tables, children,
    leaf values) are concatenated back to back and each tree's child indices
    are shifted by its *root offset*, so the whole ensemble lives in one set
    of arrays.  :meth:`predict_per_tree` then descends **all trees over all
    query rows simultaneously**: one fancy-indexing step per level moves an
    ``(n_trees, n_samples)`` frontier of node ids, replacing the per-tree
    Python loop that dominated small-batch ensemble prediction.

    Routing is identical to the per-tree :meth:`FlatTree.predict` (leaves
    self-loop, so shallower trees simply idle until the deepest tree
    finishes), which makes the stacked prediction bit-identical to the
    stacked per-tree loop it replaces.  The descent runs over a flat
    ``(n_trees * n_samples,)`` frontier with preallocated scratch buffers
    and ``np.take`` gathers — broadcast fancy indexing on 2-D frontiers
    costs several times more per level at the µs scale this serves.

    When the native kernel built (:func:`native_descent_active`), descent
    and fold instead run through the GIL-free C ``stacked_descent`` over
    the packed 32-byte node array; ``ADSALA_NATIVE=0`` or
    ``ADSALA_NATIVE_DESCENT=0`` falls back to the bit-identical NumPy
    frontier loop above.
    """

    __slots__ = (
        "feature",
        "threshold",
        "children_flat",
        "value",
        "roots",
        "depths",
        "depth",
        "nodes_packed",
        "_scratch_size",
        "_scratch",
        "_out",
        "_native",
    )

    def __init__(self, flat_trees):
        flat_trees = list(flat_trees)
        if not flat_trees:
            raise ValueError("StackedTrees needs at least one FlatTree")
        sizes = np.asarray([tree.n_nodes for tree in flat_trees], dtype=np.intp)
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        self.roots = np.ascontiguousarray(offsets, dtype=np.int64)
        self.depths = np.ascontiguousarray(
            [tree.depth for tree in flat_trees], dtype=np.int64
        )
        self.feature = np.concatenate(
            [tree._descent_feature for tree in flat_trees]
        )
        self.threshold = np.concatenate(
            [tree._descent_threshold for tree in flat_trees]
        )
        # Children interleaved per node as (right, left): the flat index
        # ``2 * node + go_left`` selects the next node in one gather.
        children = np.concatenate(
            [tree._children + offset for tree, offset in zip(flat_trees, offsets)]
        )
        self.children_flat = np.ascontiguousarray(children.reshape(-1))
        self.value = np.concatenate([tree.value for tree in flat_trees])
        self.depth = max(tree.depth for tree in flat_trees)
        # Packed 32-byte array-of-structs mirror for the native kernel: one
        # cache line per node visit instead of four scattered gathers.
        packed = np.empty(self.feature.shape[0], dtype=_native.NODE_DTYPE)
        packed["thr"] = self.threshold
        packed["feat"] = self.feature
        packed["right"] = children[:, 0]
        packed["left"] = children[:, 1]
        packed["value"] = self.value
        self.nodes_packed = packed
        self._scratch_size = -1
        self._scratch = None
        self._out = None
        self._native = _native.load_kernel()

    @property
    def n_trees(self) -> int:
        return self.roots.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.feature.shape[0]

    # -- shared-memory export -----------------------------------------------
    #: Array slots exported by to_shared.  ``nodes_packed`` is the 32-byte
    #: array-of-structs the native kernel walks — sharing it is what makes
    #: the worker-side hot path zero-copy.
    _SHARED_ARRAYS = (
        "feature",
        "threshold",
        "children_flat",
        "value",
        "roots",
        "depths",
        "nodes_packed",
    )

    def to_shared(self, registry) -> dict:
        """Export the stacked arrays into ``registry`` segments."""
        state = {
            name: registry.export_array(getattr(self, name))
            for name in self._SHARED_ARRAYS
        }
        state["depth"] = int(self.depth)
        return state

    @classmethod
    def from_shared(cls, state: dict, registry) -> "StackedTrees":
        """Rebuild a stack over mapped segments, bypassing ``__init__``.

        Scratch/output buffers start empty (they are per-process working
        memory, lazily allocated on first descent) and the native kernel is
        re-resolved locally — only the model arrays live in shared pages.
        """
        stack = cls.__new__(cls)
        for name in cls._SHARED_ARRAYS:
            setattr(stack, name, registry.map_array(state[name]))
        stack.depth = state["depth"]
        stack._scratch_size = -1
        stack._scratch = None
        stack._out = None
        stack._native = _native.load_kernel()
        return stack

    def _out_buffer(self, n_samples: int) -> np.ndarray:
        """Reusable ``(n_trees, n_samples)`` output buffer."""
        out = self._out
        if out is None or out.shape[1] != n_samples:
            out = np.empty((self.roots.shape[0], n_samples), dtype=np.float64)
            self._out = out
        return out

    def _buffers(self, n_samples: int, n_features: int):
        """Reusable NumPy-descent scratch for a given frontier geometry.

        Only the fallback path needs these seven arrays; the native kernel
        keeps its whole state in registers and writes straight into the
        output buffer.
        """
        if self._scratch_size != (n_samples, n_features):
            n_trees = self.roots.shape[0]
            size = n_trees * n_samples
            self._scratch = {
                "node": np.empty(size, dtype=np.intp),
                "fn": np.empty(size, dtype=np.intp),
                "xv": np.empty(size, dtype=np.float64),
                "tv": np.empty(size, dtype=np.float64),
                "go_left": np.empty(size, dtype=bool),
                # Flat offset of each frontier slot's X row, so the feature
                # gather is one integer add plus one take.
                "row_base": np.tile(
                    np.arange(n_samples, dtype=np.intp) * n_features, n_trees
                ),
                "node_init": np.repeat(self.roots, n_samples),
            }
            self._scratch_size = (n_samples, n_features)
        return self._scratch

    def _descend(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions as a **view of the internal output buffer**.

        The view is only valid until the next ``_descend``/``fold`` call;
        in-package aggregations consume it immediately.  External callers
        use :meth:`predict_per_tree`, which returns an owned copy.
        """
        n_samples, n_features = X.shape
        out = self._out_buffer(n_samples)
        if self._native is not None:
            return self._native(
                np.ascontiguousarray(X),
                self.roots,
                self.depths,
                self.nodes_packed,
                0,
                0.0,
                out,
            )
        scratch = self._buffers(n_samples, n_features)
        node = scratch["node"]
        fn = scratch["fn"]
        xv = scratch["xv"]
        tv = scratch["tv"]
        go_left = scratch["go_left"]
        row_base = scratch["row_base"]
        X_flat = np.ascontiguousarray(X).reshape(-1)

        node[:] = scratch["node_init"]
        for _ in range(self.depth):
            np.take(self.feature, node, out=fn)
            np.add(fn, row_base, out=fn)
            np.take(X_flat, fn, out=xv)
            np.take(self.threshold, node, out=tv)
            np.less_equal(xv, tv, out=go_left)
            np.multiply(node, 2, out=node)
            np.add(node, go_left, out=node, casting="unsafe")
            np.take(self.children_flat, node, out=node)
        np.take(self.value, node, out=out.reshape(-1))
        return out

    def predict_per_tree(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions for all rows, shape ``(n_trees, n_samples)``.

        Row ``t`` equals ``flat_trees[t].predict(X)`` bit for bit; the
        ensemble-specific aggregation (mean, boosted sum, weighted median)
        is left to the caller.  The returned array is freshly owned.
        """
        return self._descend(X).copy()

    def fold(self, X: np.ndarray, base: float, scale: float) -> np.ndarray:
        """Boosted-ensemble sum: ``base + Σ_t scale * tree_t(X)`` per row.

        The per-tree contributions fold in tree order with the exact
        ``prediction += scale * update`` element updates of the sequential
        loop (the native kernel is compiled with FP contraction off), so
        the result is bit-identical to folding :meth:`predict_per_tree`
        rows in Python — just without the per-tree loop overhead.
        """
        n_samples = X.shape[0]
        prediction = np.full(n_samples, base)
        if self._native is not None:
            return self._native(
                np.ascontiguousarray(X),
                self.roots,
                self.depths,
                self.nodes_packed,
                1,
                scale,
                prediction,
            )
        for update in self._descend(X):
            prediction += scale * update
        return prediction


def _best_split_reference(
    X: np.ndarray,
    y: np.ndarray,
    sample_weight: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Per-feature-loop split search (the pre-vectorisation reference).

    Operates on the node's row subset directly.  Returns
    ``(feature, threshold, gain)`` of the best weighted-SSE split, or
    ``(None, None, 0.0)`` when no admissible split improves it.
    """
    n_samples = X.shape[0]
    total_weight = sample_weight.sum()
    total_wy = float(np.dot(sample_weight, y))
    total_wyy = float(np.dot(sample_weight, y * y))
    parent_sse = total_wyy - total_wy ** 2 / total_weight

    best_gain = 0.0
    best_feature = None
    best_threshold = None

    for feature in feature_indices:
        column = X[:, feature]
        order = np.argsort(column, kind="mergesort")
        col_sorted = column[order]
        y_sorted = y[order]
        w_sorted = sample_weight[order]

        w_cum = np.cumsum(w_sorted)
        wy_cum = np.cumsum(w_sorted * y_sorted)
        wyy_cum = np.cumsum(w_sorted * y_sorted * y_sorted)

        # Split after position i puts samples [0..i] left, (i..n) right.
        # Only positions where the feature value actually changes are valid.
        idx = np.arange(n_samples - 1)
        valid = col_sorted[:-1] < col_sorted[1:]
        valid &= (idx + 1 >= min_samples_leaf)
        valid &= (n_samples - (idx + 1) >= min_samples_leaf)
        if not np.any(valid):
            continue

        left_w = w_cum[:-1]
        left_wy = wy_cum[:-1]
        left_wyy = wyy_cum[:-1]
        right_w = total_weight - left_w
        right_wy = total_wy - left_wy
        right_wyy = total_wyy - left_wyy

        with np.errstate(divide="ignore", invalid="ignore"):
            left_sse = left_wyy - left_wy ** 2 / left_w
            right_sse = right_wyy - right_wy ** 2 / right_w
        gain = parent_sse - (left_sse + right_sse)
        gain[~valid] = -np.inf

        best_idx = int(np.argmax(gain))
        if gain[best_idx] > best_gain + 1e-12:
            best_gain = float(gain[best_idx])
            best_feature = int(feature)
            best_threshold = float(
                0.5 * (col_sorted[best_idx] + col_sorted[best_idx + 1])
            )

    return best_feature, best_threshold, best_gain


#: Caches for the split-position bookkeeping arrays, keyed on the node size
#: (and leaf minimum).  Nodes of the same size recur constantly while a
#: forest grows, and rebuilding these tiny arrays dominates small-node cost.
_POSITION_CACHE: dict = {}
_BOUNDS_CACHE: dict = {}
_COLUMN_CACHE: dict = {}


def _positions(n_samples: int) -> np.ndarray:
    """``arange(1, n_samples)`` as float (== cumsum of unit weights)."""
    cached = _POSITION_CACHE.get(n_samples)
    if cached is None:
        cached = np.arange(1, n_samples, dtype=np.float64)
        _POSITION_CACHE[n_samples] = cached
    return cached


def _bounds_mask(n_samples: int, min_samples_leaf: int) -> np.ndarray:
    """Split positions admissible under the per-leaf sample minimum."""
    key = (n_samples, min_samples_leaf)
    cached = _BOUNDS_CACHE.get(key)
    if cached is None:
        positions = np.arange(1, n_samples)
        cached = (positions >= min_samples_leaf) & (
            n_samples - positions >= min_samples_leaf
        )
        _BOUNDS_CACHE[key] = cached
    return cached


def _column_positions(n_features: int) -> np.ndarray:
    """``arange(n_features)`` row vector for sorted-column gathers."""
    cached = _COLUMN_CACHE.get(n_features)
    if cached is None:
        cached = np.arange(n_features)
        _COLUMN_CACHE[n_features] = cached
    return cached


def _best_split(
    X: np.ndarray,
    indices: np.ndarray,
    y_sub: np.ndarray,
    w_sub: np.ndarray,
    total_weight: float,
    total_wy: float,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
    uniform_weight: bool = False,
):
    """Vectorised split search over all examined features at once.

    Takes the full ``X`` plus the node's row ``indices`` (no per-node ``X``
    copies) and the node's already-gathered targets/weights and their
    totals (computed once per node by ``_build``): one column-wise
    mergesort and one prefix-sum batch replace the per-feature Python loop.
    Ties are broken exactly as in :func:`_best_split_reference` (earlier
    feature in ``feature_indices`` wins unless a later one improves the
    gain by more than 1e-12).

    ``uniform_weight`` marks an all-ones ``sample_weight``; the weight
    prefix sums are then the split positions themselves (exact small
    integers in float64, bit-identical to ``cumsum`` of ones), which skips a
    gather, a multiply and a cumsum per node.
    """
    n_samples = indices.size
    if n_samples < 2:
        return None, None, 0.0
    cols = X[indices[:, None], feature_indices]

    total_wyy = float(np.dot(w_sub, y_sub * y_sub))
    parent_sse = total_wyy - total_wy ** 2 / total_weight

    order = cols.argsort(axis=0, kind="mergesort")
    column_pos = _column_positions(len(feature_indices))
    col_sorted = cols[order, column_pos]
    y_sorted = y_sub[order]

    if uniform_weight:
        # cumsum(1.0, 1.0, ...) is exactly the position count.
        left_w = _positions(n_samples)[:, None]
        wy = y_sorted
    else:
        w_sorted = w_sub[order]
        left_w = w_sorted.cumsum(axis=0)[:-1]
        wy = w_sorted * y_sorted
    wy_cum = wy.cumsum(axis=0)
    wyy_cum = (wy * y_sorted).cumsum(axis=0)

    valid = col_sorted[:-1] < col_sorted[1:]
    valid &= _bounds_mask(n_samples, min_samples_leaf)[:, None]

    left_wy = wy_cum[:-1]
    left_wyy = wyy_cum[:-1]
    right_w = total_weight - left_w
    right_wy = total_wy - left_wy
    right_wyy = total_wyy - left_wyy

    if uniform_weight:
        # Unit weights leave every prefix weight >= 1: no 0/0 to silence.
        left_sse = left_wyy - left_wy ** 2 / left_w
        right_sse = right_wyy - right_wy ** 2 / right_w
    else:
        with np.errstate(divide="ignore", invalid="ignore"):
            left_sse = left_wyy - left_wy ** 2 / left_w
            right_sse = right_wyy - right_wy ** 2 / right_w
    gain = parent_sse - (left_sse + right_sse)
    np.logical_not(valid, out=valid)
    gain[valid] = -np.inf

    best_rows = gain.argmax(axis=0)
    per_feature_gain = gain[best_rows, column_pos]

    best_gain = 0.0
    best_feature = None
    best_threshold = None
    for j, feature in enumerate(feature_indices):
        candidate = per_feature_gain[j]
        if candidate > best_gain + 1e-12:
            row = best_rows[j]
            best_gain = float(candidate)
            best_feature = int(feature)
            best_threshold = float(
                0.5 * (col_sorted[row, j] + col_sorted[row + 1, j])
            )
    return best_feature, best_threshold, best_gain


class DecisionTreeRegressor(BaseRegressor):
    """CART regression tree minimising weighted squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until other limits apply.
    min_samples_split:
        Minimum number of samples a node must hold to be considered for
        splitting.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        Number of features examined per split: ``None`` (all), an ``int``,
        a ``float`` fraction, or ``"sqrt"`` / ``"log2"``.
    random_state:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # -- fitting -----------------------------------------------------------
    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if isinstance(self.max_features, str):
            if self.max_features == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if self.max_features == "log2":
                return max(1, int(np.log2(n_features)))
            raise ValueError(f"Unknown max_features string {self.max_features!r}")
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValueError("max_features fraction must be in (0, 1]")
            return max(1, int(round(self.max_features * n_features)))
        value = int(self.max_features)
        if value < 1:
            raise ValueError("max_features must be at least 1")
        return min(value, n_features)

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        n_samples, n_features = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n_samples)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float).ravel()
            if sample_weight.shape[0] != n_samples:
                raise ValueError("sample_weight length mismatch")
            if np.any(sample_weight < 0):
                raise ValueError("sample_weight must be non-negative")
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")

        self.n_features_in_ = n_features
        self._rng = np.random.default_rng(self.random_state)
        self._n_split_features = self._resolve_max_features(n_features)
        self._uniform_weight = bool(np.all(sample_weight == 1.0))
        self.tree_ = self._build(
            X, y, sample_weight, np.arange(n_samples), depth=0
        )
        self.flat_tree_ = FlatTree.from_node(self.tree_)
        self.n_leaves_ = self._count_leaves(self.tree_)
        self.depth_ = self._measure_depth(self.tree_)
        del self._rng
        return self

    def _build(self, X, y, sample_weight, indices, depth: int) -> _Node:
        w_node = sample_weight[indices]
        y_node = y[indices]
        total_weight = w_node.sum()
        total_wy = float(np.dot(w_node, y_node))
        node_value = float(total_wy / total_weight)
        impurity = float(
            np.dot(w_node, (y_node - node_value) ** 2) / total_weight
        )
        node = _Node(
            value=node_value, n_samples=indices.size, impurity=impurity
        )

        if (
            indices.size < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or impurity <= 1e-15
        ):
            return node

        n_features = X.shape[1]
        if self._n_split_features < n_features:
            feature_indices = self._rng.choice(
                n_features, size=self._n_split_features, replace=False
            )
        else:
            feature_indices = _column_positions(n_features)

        if _IMPL == "reference":
            feature, threshold, gain = _best_split_reference(
                X[indices], y_node, w_node, feature_indices, self.min_samples_leaf
            )
        else:
            feature, threshold, gain = _best_split(
                X,
                indices,
                y_node,
                w_node,
                total_weight,
                total_wy,
                feature_indices,
                self.min_samples_leaf,
                uniform_weight=self._uniform_weight,
            )
        if feature is None or gain <= 0.0:
            return node

        mask = X[indices, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, y, sample_weight, indices[mask], depth + 1)
        node.right = self._build(X, y, sample_weight, indices[~mask], depth + 1)
        return node

    # -- prediction --------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        self._check_fitted("tree_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        if _IMPL == "reference":
            out = np.empty(X.shape[0])
            self._predict_into(self.tree_, X, np.arange(X.shape[0]), out)
            return out
        return self.flat_tree_.predict(X)

    def predict_reference(self, X) -> np.ndarray:
        """Recursive node-walk prediction (the pre-flattening reference)."""
        self._check_fitted("tree_")
        X = check_X(X)
        out = np.empty(X.shape[0])
        self._predict_into(self.tree_, X, np.arange(X.shape[0]), out)
        return out

    def _predict_into(self, node: _Node, X, indices, out) -> None:
        if node.is_leaf or indices.size == 0:
            out[indices] = node.value
            return
        mask = X[indices, node.feature] <= node.threshold
        self._predict_into(node.left, X, indices[mask], out)
        self._predict_into(node.right, X, indices[~mask], out)

    # -- introspection ------------------------------------------------------
    def _count_leaves(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return self._count_leaves(node.left) + self._count_leaves(node.right)

    def _measure_depth(self, node: _Node) -> int:
        if node.is_leaf:
            return 0
        return 1 + max(self._measure_depth(node.left), self._measure_depth(node.right))

    def feature_importances(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to one."""
        self._check_fitted("tree_")
        importances = np.zeros(self.n_features_in_)

        def walk(node: _Node) -> None:
            if node.is_leaf:
                return
            child_impurity = (
                node.left.n_samples * node.left.impurity
                + node.right.n_samples * node.right.impurity
            ) / node.n_samples
            importances[node.feature] += node.n_samples * (
                node.impurity - child_impurity
            )
            walk(node.left)
            walk(node.right)

        walk(self.tree_)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
