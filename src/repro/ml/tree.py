"""CART regression tree with variance-reduction splits.

The tree is the building block for the Random Forest, AdaBoost and both
gradient-boosting candidates.  Split search is vectorised: for every feature
the candidate thresholds are evaluated in a single pass over the sorted
column using prefix sums of the targets, which keeps pure-Python overhead to
one loop over features per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import BaseRegressor, check_X, check_X_y

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """A single node of the fitted tree."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    sample_weight: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Return ``(feature, threshold, gain)`` of the best weighted-SSE split.

    Returns ``(None, None, 0.0)`` when no admissible split improves the
    weighted sum of squared errors.
    """
    n_samples = X.shape[0]
    total_weight = sample_weight.sum()
    total_wy = float(np.dot(sample_weight, y))
    total_wyy = float(np.dot(sample_weight, y * y))
    parent_sse = total_wyy - total_wy ** 2 / total_weight

    best_gain = 0.0
    best_feature = None
    best_threshold = None

    for feature in feature_indices:
        column = X[:, feature]
        order = np.argsort(column, kind="mergesort")
        col_sorted = column[order]
        y_sorted = y[order]
        w_sorted = sample_weight[order]

        w_cum = np.cumsum(w_sorted)
        wy_cum = np.cumsum(w_sorted * y_sorted)
        wyy_cum = np.cumsum(w_sorted * y_sorted * y_sorted)

        # Split after position i puts samples [0..i] left, (i..n) right.
        # Only positions where the feature value actually changes are valid.
        idx = np.arange(n_samples - 1)
        valid = col_sorted[:-1] < col_sorted[1:]
        valid &= (idx + 1 >= min_samples_leaf)
        valid &= (n_samples - (idx + 1) >= min_samples_leaf)
        if not np.any(valid):
            continue

        left_w = w_cum[:-1]
        left_wy = wy_cum[:-1]
        left_wyy = wyy_cum[:-1]
        right_w = total_weight - left_w
        right_wy = total_wy - left_wy
        right_wyy = total_wyy - left_wyy

        with np.errstate(divide="ignore", invalid="ignore"):
            left_sse = left_wyy - left_wy ** 2 / left_w
            right_sse = right_wyy - right_wy ** 2 / right_w
        gain = parent_sse - (left_sse + right_sse)
        gain[~valid] = -np.inf

        best_idx = int(np.argmax(gain))
        if gain[best_idx] > best_gain + 1e-12:
            best_gain = float(gain[best_idx])
            best_feature = int(feature)
            best_threshold = float(
                0.5 * (col_sorted[best_idx] + col_sorted[best_idx + 1])
            )

    return best_feature, best_threshold, best_gain


class DecisionTreeRegressor(BaseRegressor):
    """CART regression tree minimising weighted squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until other limits apply.
    min_samples_split:
        Minimum number of samples a node must hold to be considered for
        splitting.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    max_features:
        Number of features examined per split: ``None`` (all), an ``int``,
        a ``float`` fraction, or ``"sqrt"`` / ``"log2"``.
    random_state:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # -- fitting -----------------------------------------------------------
    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if isinstance(self.max_features, str):
            if self.max_features == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if self.max_features == "log2":
                return max(1, int(np.log2(n_features)))
            raise ValueError(f"Unknown max_features string {self.max_features!r}")
        if isinstance(self.max_features, float):
            if not 0.0 < self.max_features <= 1.0:
                raise ValueError("max_features fraction must be in (0, 1]")
            return max(1, int(round(self.max_features * n_features)))
        value = int(self.max_features)
        if value < 1:
            raise ValueError("max_features must be at least 1")
        return min(value, n_features)

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        n_samples, n_features = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n_samples)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float).ravel()
            if sample_weight.shape[0] != n_samples:
                raise ValueError("sample_weight length mismatch")
            if np.any(sample_weight < 0):
                raise ValueError("sample_weight must be non-negative")
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")

        self.n_features_in_ = n_features
        self._rng = np.random.default_rng(self.random_state)
        self._n_split_features = self._resolve_max_features(n_features)
        self.tree_ = self._build(X, y, sample_weight, depth=0)
        self.n_leaves_ = self._count_leaves(self.tree_)
        self.depth_ = self._measure_depth(self.tree_)
        del self._rng
        return self

    def _build(self, X, y, sample_weight, depth: int) -> _Node:
        total_weight = sample_weight.sum()
        node_value = float(np.dot(sample_weight, y) / total_weight)
        impurity = float(
            np.dot(sample_weight, (y - node_value) ** 2) / total_weight
        )
        node = _Node(
            value=node_value, n_samples=X.shape[0], impurity=impurity
        )

        if (
            X.shape[0] < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or impurity <= 1e-15
        ):
            return node

        n_features = X.shape[1]
        if self._n_split_features < n_features:
            feature_indices = self._rng.choice(
                n_features, size=self._n_split_features, replace=False
            )
        else:
            feature_indices = np.arange(n_features)

        feature, threshold, gain = _best_split(
            X, y, sample_weight, feature_indices, self.min_samples_leaf
        )
        if feature is None or gain <= 0.0:
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], sample_weight[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], sample_weight[~mask], depth + 1)
        return node

    # -- prediction --------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        self._check_fitted("tree_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        out = np.empty(X.shape[0])
        self._predict_into(self.tree_, X, np.arange(X.shape[0]), out)
        return out

    def _predict_into(self, node: _Node, X, indices, out) -> None:
        if node.is_leaf or indices.size == 0:
            out[indices] = node.value
            return
        mask = X[indices, node.feature] <= node.threshold
        self._predict_into(node.left, X, indices[mask], out)
        self._predict_into(node.right, X, indices[~mask], out)

    # -- introspection ------------------------------------------------------
    def _count_leaves(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return self._count_leaves(node.left) + self._count_leaves(node.right)

    def _measure_depth(self, node: _Node) -> int:
        if node.is_leaf:
            return 0
        return 1 + max(self._measure_depth(node.left), self._measure_depth(node.right))

    def feature_importances(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to one."""
        self._check_fitted("tree_")
        importances = np.zeros(self.n_features_in_)

        def walk(node: _Node) -> None:
            if node.is_leaf:
                return
            child_impurity = (
                node.left.n_samples * node.left.impurity
                + node.right.n_samples * node.right.impurity
            ) / node.n_samples
            importances[node.feature] += node.n_samples * (
                node.impurity - child_impurity
            )
            walk(node.left)
            walk(node.right)

        walk(self.tree_)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances
