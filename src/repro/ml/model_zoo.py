"""Registry of candidate models, mirroring the paper's Table II.

Every candidate the paper considers is represented here together with its
qualitative characteristics (parametric / imbalance tolerance / data-size
requirement — the three columns of Table II) and a small default
hyper-parameter grid used by the installation-time tuning stage.

The grids are deliberately compact: the paper's datasets hold ~10^3 points
and the tuning stage already multiplies the grid by the number of candidate
models, BLAS routines and CV folds.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.ml.base import BaseRegressor
from repro.ml.bayes import BayesianRidge
from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import ElasticNet, LinearRegression
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.svm import SVR
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "MODEL_CHARACTERISTICS",
    "CANDIDATE_MODEL_NAMES",
    "candidate_models",
    "default_param_grid",
    "make_model",
]


#: Qualitative model characteristics — a verbatim reproduction of Table II.
MODEL_CHARACTERISTICS: Dict[str, Dict[str, Any]] = {
    "LinearRegression": {
        "category": "Linear Models",
        "parametric": True,
        "good_with_imbalance": False,
        "data_size_requirement": "Medium",
    },
    "ElasticNet": {
        "category": "Linear Models",
        "parametric": True,
        "good_with_imbalance": False,
        "data_size_requirement": "Medium",
    },
    "BayesianRidge": {
        "category": "Linear Models",
        "parametric": True,
        "good_with_imbalance": False,
        "data_size_requirement": "Small",
    },
    "DecisionTree": {
        "category": "Tree Based Models",
        "parametric": False,
        "good_with_imbalance": True,
        "data_size_requirement": "Medium",
    },
    "XGBoost": {
        "category": "Tree Based Models",
        "parametric": False,
        "good_with_imbalance": True,
        "data_size_requirement": "Medium",
    },
    "AdaBoost": {
        "category": "Tree Based Models",
        "parametric": False,
        "good_with_imbalance": True,
        "data_size_requirement": "Medium",
    },
    "RandomForest": {
        "category": "Tree Based Models",
        "parametric": False,
        "good_with_imbalance": True,
        "data_size_requirement": "Medium",
    },
    "LightGBM": {
        "category": "Tree Based Models",
        "parametric": False,
        "good_with_imbalance": True,
        "data_size_requirement": "Medium",
    },
    "SVR": {
        "category": "Other Models",
        "parametric": False,
        "good_with_imbalance": False,
        "data_size_requirement": "Small",
    },
    "KNN": {
        "category": "Other Models",
        "parametric": False,
        "good_with_imbalance": False,
        "data_size_requirement": "Medium",
    },
}

CANDIDATE_MODEL_NAMES: List[str] = list(MODEL_CHARACTERISTICS)


_FACTORIES = {
    "LinearRegression": lambda: LinearRegression(),
    "ElasticNet": lambda: ElasticNet(alpha=0.01, l1_ratio=0.5, max_iter=500),
    "BayesianRidge": lambda: BayesianRidge(),
    "DecisionTree": lambda: DecisionTreeRegressor(max_depth=8, min_samples_leaf=2),
    "XGBoost": lambda: GradientBoostingRegressor(
        n_estimators=60, learning_rate=0.1, max_depth=4
    ),
    "AdaBoost": lambda: AdaBoostRegressor(n_estimators=30, max_depth=3, random_state=0),
    "RandomForest": lambda: RandomForestRegressor(
        n_estimators=40, max_depth=12, min_samples_leaf=2, random_state=0
    ),
    "LightGBM": lambda: HistGradientBoostingRegressor(
        n_estimators=60, learning_rate=0.1, max_depth=5, max_bins=48
    ),
    "SVR": lambda: SVR(C=10.0, epsilon=0.01, kernel="rbf", max_iter=300),
    "KNN": lambda: KNeighborsRegressor(n_neighbors=5, weights="distance"),
}


_PARAM_GRIDS: Dict[str, Dict[str, list]] = {
    "LinearRegression": {},
    "ElasticNet": {"alpha": [0.001, 0.01, 0.1], "l1_ratio": [0.2, 0.5, 0.8]},
    "BayesianRidge": {},
    "DecisionTree": {"max_depth": [6, 10, 14], "min_samples_leaf": [1, 3]},
    "XGBoost": {"max_depth": [3, 4, 6], "learning_rate": [0.05, 0.1]},
    "AdaBoost": {"n_estimators": [20, 40], "max_depth": [3, 4]},
    "RandomForest": {"max_depth": [10, 16], "min_samples_leaf": [1, 2]},
    "LightGBM": {"max_depth": [4, 6], "learning_rate": [0.05, 0.1]},
    "SVR": {"C": [1.0, 10.0], "epsilon": [0.01, 0.1]},
    "KNN": {"n_neighbors": [3, 5, 9], "weights": ["uniform", "distance"]},
}


def make_model(name: str) -> BaseRegressor:
    """Instantiate a fresh candidate model by its Table II name."""
    if name not in _FACTORIES:
        raise KeyError(
            f"Unknown model {name!r}; available: {sorted(_FACTORIES)}"
        )
    return _FACTORIES[name]()


def default_param_grid(name: str) -> Dict[str, list]:
    """Default tuning grid for a candidate model (may be empty)."""
    if name not in _PARAM_GRIDS:
        raise KeyError(
            f"Unknown model {name!r}; available: {sorted(_PARAM_GRIDS)}"
        )
    return {key: list(values) for key, values in _PARAM_GRIDS[name].items()}


def candidate_models(names: List[str] | None = None) -> Dict[str, BaseRegressor]:
    """Instantiate the candidate pool (all of Table II by default)."""
    if names is None:
        names = CANDIDATE_MODEL_NAMES
    return {name: make_model(name) for name in names}
