"""Regression metrics used by model selection and the experiment harness."""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "normalised_rmse",
    "mean_absolute_percentage_error",
]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.size == 0:
        raise ValueError("y_true must not be empty")
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred have different shapes: {y_true.shape} vs {y_pred.shape}"
        )
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_absolute_percentage_error(y_true, y_pred, eps: float = 1e-12) -> float:
    """Mean absolute percentage error with a small denominator guard."""
    y_true, y_pred = _validate(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination.

    Returns 0.0 when ``y_true`` is constant and predictions are perfect,
    and a large negative value when predictions are worse than the mean.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def normalised_rmse(y_true, y_pred, reference_rmse: float | None = None) -> float:
    """RMSE normalised by a reference value.

    The paper's Table VI reports the test RMSE of each model divided by the
    *largest* RMSE among the candidates (so the worst model scores 1.0).
    When ``reference_rmse`` is ``None`` the RMSE is normalised by the
    standard deviation of ``y_true`` instead, which is a platform-independent
    fallback useful for single-model reporting.
    """
    rmse = root_mean_squared_error(y_true, y_pred)
    if reference_rmse is not None:
        if reference_rmse <= 0:
            raise ValueError("reference_rmse must be positive")
        return rmse / reference_rmse
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    scale = float(np.std(y_true))
    if scale == 0.0:
        return 0.0 if rmse == 0.0 else float("inf")
    return rmse / scale
