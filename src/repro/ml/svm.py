"""Support vector regression (epsilon-insensitive, RBF/linear/poly kernels).

The dual problem is solved with a projected-gradient ascent on the box
constraints, which is robust and dependency-free; the datasets the ADSALA
pipeline produces are small (~10^3 rows), so the O(n^2) kernel matrix is
cheap to form.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseRegressor, check_X, check_X_y

__all__ = ["SVR"]


def _kernel_matrix(
    X: np.ndarray, Y: np.ndarray, kernel: str, gamma: float, degree: int, coef0: float
) -> np.ndarray:
    if kernel == "linear":
        return X @ Y.T
    if kernel == "poly":
        return (gamma * (X @ Y.T) + coef0) ** degree
    if kernel == "rbf":
        sq_x = np.einsum("ij,ij->i", X, X)
        sq_y = np.einsum("ij,ij->i", Y, Y)
        distances = np.maximum(sq_x[:, None] - 2.0 * (X @ Y.T) + sq_y[None, :], 0.0)
        return np.exp(-gamma * distances)
    raise ValueError(f"Unknown kernel {kernel!r}")


class SVR(BaseRegressor):
    """Epsilon-insensitive support vector regression.

    Parameters
    ----------
    C:
        Regularisation strength (box constraint on the dual variables).
    epsilon:
        Width of the insensitive tube.
    kernel:
        ``"rbf"``, ``"linear"`` or ``"poly"``.
    gamma:
        Kernel coefficient; ``"scale"`` uses ``1 / (n_features * X.var())``.
    degree, coef0:
        Polynomial-kernel parameters.
    max_iter, tol:
        Projected-gradient iteration budget and convergence tolerance.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        kernel: str = "rbf",
        gamma="scale",
        degree: int = 3,
        coef0: float = 0.0,
        max_iter: int = 500,
        tol: float = 1e-5,
    ):
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.max_iter = max_iter
        self.tol = tol

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = float(X.var())
            return 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        if self.gamma == "auto":
            return 1.0 / X.shape[1]
        value = float(self.gamma)
        if value <= 0:
            raise ValueError("gamma must be positive")
        return value

    def fit(self, X, y) -> "SVR":
        if self.C <= 0:
            raise ValueError("C must be positive")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        X, y = check_X_y(X, y)
        n_samples = X.shape[0]
        gamma = self._resolve_gamma(X)

        K = _kernel_matrix(X, X, self.kernel, gamma, self.degree, self.coef0)

        # Dual variables: beta_i = alpha_i - alpha_i^* in [-C, C].
        # Maximise  -0.5 beta^T K beta + beta^T y - epsilon * ||beta||_1
        # subject to the box constraint (the equality constraint is absorbed
        # by fitting an explicit intercept afterwards).
        beta = np.zeros(n_samples)
        # Lipschitz constant of the gradient.
        lipschitz = float(np.linalg.eigvalsh(K)[-1]) if n_samples > 1 else float(K[0, 0])
        step = 1.0 / max(lipschitz, 1e-12)

        for _ in range(self.max_iter):
            gradient = y - K @ beta
            # Subgradient of -epsilon*||beta||_1 handled via proximal step.
            candidate = beta + step * gradient
            # Soft-threshold for the L1 term, then clip to the box.
            candidate = np.sign(candidate) * np.maximum(
                np.abs(candidate) - step * self.epsilon, 0.0
            )
            candidate = np.clip(candidate, -self.C, self.C)
            if np.max(np.abs(candidate - beta)) < self.tol:
                beta = candidate
                break
            beta = candidate

        self.dual_coef_ = beta
        self.X_train_ = X
        self._gamma_ = gamma
        support = np.abs(beta) > 1e-10
        self.support_ = np.flatnonzero(support)
        # Intercept: median residual over the training set (robust choice).
        decision = K @ beta
        self.intercept_ = float(np.median(y - decision))
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("dual_coef_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features but model was fitted with "
                f"{self.n_features_in_}"
            )
        K = _kernel_matrix(
            X, self.X_train_, self.kernel, self._gamma_, self.degree, self.coef0
        )
        return K @ self.dual_coef_ + self.intercept_
