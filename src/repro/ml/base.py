"""Estimator base classes and cloning utilities.

The interface intentionally mirrors the small subset of the scikit-learn API
that the ADSALA pipeline needs (``fit``/``predict``/``get_params``/
``set_params``) so that the installation workflow can treat every candidate
model uniformly.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict

import numpy as np

__all__ = ["BaseRegressor", "clone", "check_X_y", "check_X"]


def check_X(X: Any) -> np.ndarray:
    """Validate a 2-D feature matrix and return it as ``float64``.

    Raises ``ValueError`` for empty input, wrong dimensionality, or
    non-finite entries.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
    if X.size == 0:
        raise ValueError("X must not be empty")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / target vector pair of matching length."""
    X = check_X(X)
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.size == 0:
        raise ValueError("y must not be empty")
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinite values")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y have incompatible lengths: {X.shape[0]} != {y.shape[0]}"
        )
    return X, y


class BaseRegressor:
    """Base class for every regressor in :mod:`repro.ml`.

    Subclasses declare their hyper-parameters as keyword arguments of
    ``__init__`` and must implement :meth:`fit` and :meth:`predict`.
    """

    def get_params(self) -> Dict[str, Any]:
        """Return the constructor hyper-parameters of this estimator."""
        signature = inspect.signature(type(self).__init__)
        params = {}
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            params[name] = getattr(self, name)
        return params

    def set_params(self, **params: Any) -> "BaseRegressor":
        """Set hyper-parameters; unknown names raise ``ValueError``."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}; valid parameters are "
                    f"{sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # -- interface ---------------------------------------------------------
    def fit(self, X: Any, y: Any) -> "BaseRegressor":  # pragma: no cover
        raise NotImplementedError

    def predict(self, X: Any) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    # -- conveniences ------------------------------------------------------
    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination R^2 on the given data."""
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(y, dtype=float).ravel(), self.predict(X))

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise RuntimeError(
                f"{type(self).__name__} instance is not fitted yet; "
                "call fit() before predict()."
            )

    def __getstate__(self) -> Dict[str, Any]:
        # The stacked-ensemble compilation (`_stacked_cache`, see
        # repro.ml.tree.StackedTrees) is derived state rebuilt on demand;
        # keeping it out of pickles stops bundles from storing every tree
        # twice.
        state = self.__dict__.copy()
        state.pop("_stacked_cache", None)
        return state

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseRegressor) -> BaseRegressor:
    """Return a new unfitted estimator with identical hyper-parameters."""
    params = {k: copy.deepcopy(v) for k, v in estimator.get_params().items()}
    return type(estimator)(**params)
