"""From-scratch machine-learning substrate used by the ADSALA reproduction.

The paper evaluates ten candidate regressors (its Table II); none of the
usual libraries (scikit-learn, XGBoost, LightGBM) are available offline, so
this subpackage implements every candidate on top of NumPy:

* :class:`~repro.ml.linear.LinearRegression`
* :class:`~repro.ml.linear.Ridge`
* :class:`~repro.ml.linear.ElasticNet`
* :class:`~repro.ml.bayes.BayesianRidge`
* :class:`~repro.ml.tree.DecisionTreeRegressor`
* :class:`~repro.ml.forest.RandomForestRegressor`
* :class:`~repro.ml.boosting.AdaBoostRegressor`
* :class:`~repro.ml.boosting.GradientBoostingRegressor` (XGBoost-style)
* :class:`~repro.ml.boosting.HistGradientBoostingRegressor` (LightGBM-style)
* :class:`~repro.ml.neighbors.KNeighborsRegressor`
* :class:`~repro.ml.svm.SVR`

plus model-selection utilities (:mod:`repro.ml.model_selection`) and
regression metrics (:mod:`repro.ml.metrics`).
"""

from repro.ml.base import BaseRegressor, clone
from repro.ml.linear import LinearRegression, Ridge, ElasticNet
from repro.ml.bayes import BayesianRidge
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.boosting import (
    AdaBoostRegressor,
    GradientBoostingRegressor,
    HistGradientBoostingRegressor,
)
from repro.ml.neighbors import KNeighborsRegressor
from repro.ml.svm import SVR
from repro.ml.metrics import (
    mean_squared_error,
    root_mean_squared_error,
    mean_absolute_error,
    r2_score,
    normalised_rmse,
)
from repro.ml.model_selection import (
    KFold,
    train_test_split,
    stratified_train_test_split,
    GridSearchCV,
    cross_val_score,
)
from repro.ml.model_zoo import (
    MODEL_CHARACTERISTICS,
    candidate_models,
    default_param_grid,
    make_model,
)

__all__ = [
    "BaseRegressor",
    "clone",
    "LinearRegression",
    "Ridge",
    "ElasticNet",
    "BayesianRidge",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "AdaBoostRegressor",
    "GradientBoostingRegressor",
    "HistGradientBoostingRegressor",
    "KNeighborsRegressor",
    "SVR",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "normalised_rmse",
    "KFold",
    "train_test_split",
    "stratified_train_test_split",
    "GridSearchCV",
    "cross_val_score",
    "MODEL_CHARACTERISTICS",
    "candidate_models",
    "default_param_grid",
    "make_model",
]
