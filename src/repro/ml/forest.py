"""Random-forest regressor built on :class:`repro.ml.tree.DecisionTreeRegressor`."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseRegressor, check_X, check_X_y
from repro.ml.tree import (
    DecisionTreeRegressor,
    StackedTrees,
    active_impl,
    stacking_active,
)

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(BaseRegressor):
    """Bagged ensemble of CART regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed through to each tree.
    max_features:
        Feature subsampling per split; defaults to one third of the features,
        the usual choice for regression forests.
    bootstrap:
        Whether to draw bootstrap samples for each tree.
    random_state:
        Seed controlling bootstrap draws and per-tree feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="onethird",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        X, y = check_X_y(X, y)
        n_samples, n_features = X.shape
        rng = np.random.default_rng(self.random_state)

        if self.max_features == "onethird":
            tree_max_features = max(1, n_features // 3)
        else:
            tree_max_features = self.max_features

        self.estimators_ = []
        oob_pred_sum = np.zeros(n_samples)
        oob_pred_count = np.zeros(n_samples)

        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=tree_max_features,
                random_state=int(rng.integers(0, 2 ** 31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)

            if self.bootstrap:
                oob_mask = np.ones(n_samples, dtype=bool)
                oob_mask[np.unique(indices)] = False
                if np.any(oob_mask):
                    oob_pred_sum[oob_mask] += tree.predict(X[oob_mask])
                    oob_pred_count[oob_mask] += 1

        self.n_features_in_ = n_features
        if self.bootstrap and np.any(oob_pred_count > 0):
            covered = oob_pred_count > 0
            oob_pred = oob_pred_sum[covered] / oob_pred_count[covered]
            residual = y[covered] - oob_pred
            self.oob_score_ = 1.0 - float(
                np.sum(residual ** 2)
                / max(np.sum((y[covered] - y[covered].mean()) ** 2), 1e-300)
            )
        else:
            self.oob_score_ = None
        return self

    def stacked(self) -> StackedTrees:
        """All fitted trees concatenated into one :class:`StackedTrees`.

        Built lazily on first use and cached (the cache is dropped from
        pickles); row ``t`` of its ``predict_per_tree`` equals
        ``estimators_[t].flat_tree_.predict``.
        """
        self._check_fitted("estimators_")
        stacked = getattr(self, "_stacked_cache", None)
        if stacked is None:
            stacked = StackedTrees(tree.flat_tree_ for tree in self.estimators_)
            self._stacked_cache = stacked
        return stacked

    def _predict_stacked(self, X: np.ndarray) -> np.ndarray:
        """Ensemble mean over one whole-forest stacked descent (no checks)."""
        return self.stacked()._descend(X).mean(axis=0)

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_X(X)
        # The whole forest descends as one struct-of-arrays: a single
        # iterative pass moves an (n_trees, n_samples) frontier level by
        # level, and the ensemble mean is one reduction over that block.
        if active_impl() == "reference":
            return np.stack(
                [tree.predict(X) for tree in self.estimators_]
            ).mean(axis=0)
        if stacking_active():
            return self._predict_stacked(X)
        return np.stack(
            [tree.flat_tree_.predict(X) for tree in self.estimators_]
        ).mean(axis=0)

    def feature_importances(self) -> np.ndarray:
        """Mean impurity-decrease importance across trees."""
        self._check_fitted("estimators_")
        importances = np.zeros(self.n_features_in_)
        for tree in self.estimators_:
            importances += tree.feature_importances()
        return importances / len(self.estimators_)
