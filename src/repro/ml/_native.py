"""Optional native (C) kernel for the stacked-ensemble descent.

The level-synchronous NumPy descent in :class:`repro.ml.tree.StackedTrees`
pays four array gathers per tree level; at the µs latency scale of a single
``plan()`` call that overhead dominates.  This module compiles — once per
interpreter, with the system C compiler — a small branch-free descent
kernel and loads it through :mod:`ctypes`.

Kernel design (why it is fast *and* bit-identical):

* nodes are packed into 32-byte structs (threshold, feature, both child
  indices, leaf value), so one visit touches one cache line instead of the
  four separate struct-of-arrays gathers;
* leaves self-loop (feature 0 against a ``+inf`` threshold — the exact
  convention of :class:`repro.ml.tree.FlatTree`), so each tree runs a fixed
  ``depth`` iteration count with a branch-free child select;
* eight rows descend in lock-step per tree, giving the out-of-order core
  eight independent load chains to overlap;
* the kernel performs only float64 *comparisons* plus (in accumulate mode)
  the same ``p += scale * v`` element updates NumPy performs — compiled
  with ``-ffp-contract=off`` so no FMA contraction can change a ULP.

The native path is best-effort by design: no C compiler, a failed build,
or ``ADSALA_NATIVE=0`` → :func:`load_kernel` returns ``None`` and callers
silently use the NumPy descent.  The shared object is cached under the
system temp directory keyed by a hash of the C source, so rebuilds only
happen when the kernel changes.  Nothing is ever installed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["load_kernel", "native_enabled", "NODE_DTYPE"]


#: Packed node layout shared with the C kernel (32 bytes, no padding).
NODE_DTYPE = np.dtype(
    [
        ("thr", "<f8"),
        ("feat", "<i8"),
        ("right", "<i4"),
        ("left", "<i4"),
        ("value", "<f8"),
    ]
)


_SOURCE = r"""
#include <stdint.h>

typedef struct {
    double thr;
    int64_t feat;
    int32_t right;
    int32_t left;
    double value;
} node_t;

#define LANES 8

/* Descend every (tree, row) pair of a stacked ensemble.
 *
 * x      : row-major (n_samples, n_features) feature matrix
 * roots  : per-tree root index into the packed node array
 * depths : per-tree descent iteration count (leaves self-loop)
 * nodes  : packed 32-byte node structs, children pre-offset per tree
 * mode 0 : out is row-major (n_trees, n_samples); out[t][r] = leaf value
 * mode 1 : out has n_samples entries, pre-filled by the caller;
 *          out[r] += scale * leaf_value, folded tree by tree in order —
 *          the exact update sequence of the boosted-ensemble NumPy loop.
 */
void stacked_descent(const double *x,
                     int64_t n_samples,
                     int64_t n_features,
                     const int64_t *roots,
                     const int64_t *depths,
                     int64_t n_trees,
                     const node_t *nodes,
                     int64_t mode,
                     double scale,
                     double *out)
{
    for (int64_t t = 0; t < n_trees; ++t) {
        const int64_t root = roots[t];
        const int64_t depth = depths[t];
        double *out_row = (mode == 0) ? out + t * n_samples : out;
        for (int64_t r0 = 0; r0 < n_samples; r0 += LANES) {
            const double *xr[LANES];
            int64_t n[LANES];
            for (int l = 0; l < LANES; ++l) {
                /* Tail blocks replicate the last row; the extra lanes are
                 * computed and discarded (descent is a total function). */
                int64_t r = r0 + l < n_samples ? r0 + l : n_samples - 1;
                xr[l] = x + r * n_features;
                n[l] = root;
            }
            for (int64_t d = 0; d < depth; ++d) {
                for (int l = 0; l < LANES; ++l) {
                    const node_t *nd = &nodes[n[l]];
                    n[l] = xr[l][nd->feat] <= nd->thr ? nd->left : nd->right;
                }
            }
            const int64_t live =
                n_samples - r0 < LANES ? n_samples - r0 : LANES;
            if (mode == 0) {
                for (int l = 0; l < live; ++l)
                    out_row[r0 + l] = nodes[n[l]].value;
            } else {
                for (int l = 0; l < live; ++l)
                    out_row[r0 + l] += scale * nodes[n[l]].value;
            }
        }
    }
}
"""

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_INT64_P = ctypes.POINTER(ctypes.c_int64)

#: Resolved kernel callable (or None); "unset" until first load attempt.
_KERNEL: object = "unset"


def native_enabled() -> bool:
    """Whether the native kernel is allowed (``ADSALA_NATIVE`` != "0")."""
    return os.environ.get("ADSALA_NATIVE", "1") != "0"


def _owned_by_current_user(path: Path) -> bool:
    """Whether ``path`` belongs to us (POSIX; trivially true elsewhere)."""
    getuid = getattr(os, "getuid", None)
    if getuid is None:  # pragma: no cover - non-POSIX
        return True
    try:
        return path.stat().st_uid == getuid()
    except OSError:
        return False


def _build_library() -> Path | None:
    """Compile (or reuse) the cached shared object; None when impossible."""
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    # Per-user, 0700 cache directory: the temp dir is world-writable and the
    # library name is predictable, so never dlopen anything another user
    # could have planted there.
    uid = getattr(os, "getuid", lambda: "u")()
    cache_dir = Path(tempfile.gettempdir()) / f"adsala-native-{uid}"
    library = cache_dir / f"descent_{digest}.so"
    if library.exists():
        if _owned_by_current_user(cache_dir) and _owned_by_current_user(library):
            return library
        return None
    try:
        cache_dir.mkdir(parents=True, exist_ok=True, mode=0o700)
        if not _owned_by_current_user(cache_dir):
            return None
        os.chmod(cache_dir, 0o700)
        with tempfile.TemporaryDirectory(dir=cache_dir) as workdir:
            source = Path(workdir) / "descent.c"
            source.write_text(_SOURCE)
            built = Path(workdir) / "descent.so"
            subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-ffp-contract=off",
                    "-shared",
                    "-fPIC",
                    "-o",
                    str(built),
                    str(source),
                ],
                check=True,
                capture_output=True,
                timeout=60,
            )
            os.replace(built, library)  # atomic: concurrent builders race safely
    except (OSError, subprocess.SubprocessError):
        return None
    return library


def load_kernel():
    """The native descent callable, or ``None`` when unavailable.

    Memoised.  Signature:
    ``kernel(x, roots, depths, nodes, mode, scale, out)`` — see the C
    source above for the contract; ``nodes`` must use :data:`NODE_DTYPE`
    and all arrays must be C-contiguous.
    """
    global _KERNEL
    if _KERNEL != "unset":
        return _KERNEL
    _KERNEL = None
    if native_enabled():
        library = _build_library()
        if library is not None:
            try:
                lib = ctypes.CDLL(str(library))
                fn = lib.stacked_descent
                fn.restype = None
                fn.argtypes = [
                    _DOUBLE_P,
                    ctypes.c_int64,
                    ctypes.c_int64,
                    _INT64_P,
                    _INT64_P,
                    ctypes.c_int64,
                    ctypes.c_void_p,
                    ctypes.c_int64,
                    ctypes.c_double,
                    _DOUBLE_P,
                ]
                _KERNEL = _make_wrapper(fn)
            except OSError:
                _KERNEL = None
    return _KERNEL


def _make_wrapper(fn):
    def kernel(
        x: np.ndarray,
        roots: np.ndarray,
        depths: np.ndarray,
        nodes: np.ndarray,
        mode: int,
        scale: float,
        out: np.ndarray,
    ) -> np.ndarray:
        fn(
            x.ctypes.data_as(_DOUBLE_P),
            x.shape[0],
            x.shape[1],
            roots.ctypes.data_as(_INT64_P),
            depths.ctypes.data_as(_INT64_P),
            roots.shape[0],
            nodes.ctypes.data,
            mode,
            scale,
            out.ctypes.data_as(_DOUBLE_P),
        )
        return out

    # Introspection hook: the raw ctypes foreign function, so callers (and
    # the concurrency tests) can verify the GIL-releasing load path — a
    # ``CDLL`` export with explicit argtypes/restype, never ``PyDLL``.
    kernel.ctypes_fn = fn
    return kernel
