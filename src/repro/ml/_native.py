"""Optional native (C) kernels for the compiled prediction hot path.

PR 3 compiled the stacked-ensemble *descent* into a small branch-free C
kernel; everything around it — the feature-grid fill and the fused
Yeo-Johnson + affine transform — stayed NumPy, which holds the GIL and is
why the ``thread`` shard backend could not scale.  This module now builds
**one shared object with four kernels** covering the whole
``CompiledPredictor.evaluate`` span:

``feature_fill``
    Computes the kept feature columns straight from the dims/threads
    arrays into the preallocated grid, driven by a compact i64/f64
    *column program* exported by
    :meth:`repro.core.features.FeatureGridWriter.column_program`.  Every
    arithmetic step replays the Python recipe's exact operation order
    (left-associated sums of products, exact ``1.0 *`` / ``2 *``
    coefficients), so the filled grid is bit-identical.

``fused_transform``
    Reproduces ``FusedTransform.transform_kept`` bit-identically: the
    per-column Yeo-Johnson transform followed by the affine
    ``(y - shift) / scale``.  Per-column λ dispatch mirrors NumPy's
    scalar fast paths exactly (λ or 2-λ in {-1, 0.5, 1, 2} become
    reciprocal / sqrt / copy / square — exact operations), the |λ|≤1e-12
    and |λ-2|≤1e-12 branches become log1p, and everything else calls
    ``pow``.  On AVX512 hosts where NumPy itself dispatches ``**`` and
    ``log1p`` to Intel SVML, the kernel calls **NumPy's own**
    ``__svml_pow8_ha`` / ``__svml_log1p8_ha`` symbols through function
    pointers (:func:`set_svml_pointers`), so the transcendentals are the
    same code NumPy runs; elsewhere it uses libm, which is what NumPy
    uses there too.  A bit-exactness probe at load time
    (:func:`_verify_transform`) compares the kernel against the NumPy
    reference and disables the stage on any mismatch.

``stacked_descent``
    The existing PR 3 kernel, byte-for-byte.

``fused_evaluate``
    Chains fill → transform → descent in **one C call** so the GIL is
    dropped across the whole span and intermediate buffers never surface
    to Python.  This is what lets ``thread`` shards scale.

Kill switches (each falls back to the NumPy expressions, bit-identical):

* ``ADSALA_NATIVE=0`` — master switch, disables everything;
* ``ADSALA_NATIVE_FILL=0`` / ``ADSALA_NATIVE_TRANSFORM=0`` /
  ``ADSALA_NATIVE_DESCENT=0`` — per-stage opt-out (any disabled stage
  also disables the fused call, which needs all three);
* ``ADSALA_NATIVE_SELFCHECK=0`` — skip the per-predictor first-call
  fused-vs-staged comparison in :mod:`repro.core.compiled`.

Build controls:

* ``ADSALA_NATIVE_CACHE=<dir>`` — where the compiled ``.so`` is cached
  (default: a per-user 0700 directory under the system temp dir, keyed
  by a hash of the C source).  CI points this at a restored cache.
* ``ADSALA_NATIVE_REQUIRE=1`` — fail **loudly** (RuntimeError) when the
  kernel cannot be built or loaded, instead of silently falling back.
  Used by the CI native-build smoke.

:func:`adopt_library` lets ``procshard`` workers reuse the parent's
already-built shared object instead of racing the compiler N ways on a
cold cache (the parent exports :func:`library_path` in the worker spec).

The native path is best-effort by design: no C compiler, a failed build,
or ``ADSALA_NATIVE=0`` → :func:`load_kernels` returns ``None`` and
callers silently use NumPy.  Nothing is ever installed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "NODE_DTYPE",
    "NativeKernels",
    "adopt_library",
    "library_path",
    "load_kernel",
    "load_kernels",
    "native_enabled",
    "stage_enabled",
]


#: Packed node layout shared with the C kernel (32 bytes, no padding).
NODE_DTYPE = np.dtype(
    [
        ("thr", "<f8"),
        ("feat", "<i8"),
        ("right", "<i4"),
        ("left", "<i4"),
        ("value", "<f8"),
    ]
)


_SOURCE = r"""
#include <stdint.h>
#include <math.h>

typedef struct {
    double thr;
    int64_t feat;
    int32_t right;
    int32_t left;
    double value;
} node_t;

#define LANES 8

/* Descend every (tree, row) pair of a stacked ensemble.
 *
 * x      : row-major (n_samples, n_features) feature matrix
 * roots  : per-tree root index into the packed node array
 * depths : per-tree descent iteration count (leaves self-loop)
 * nodes  : packed 32-byte node structs, children pre-offset per tree
 * mode 0 : out is row-major (n_trees, n_samples); out[t][r] = leaf value
 * mode 1 : out has n_samples entries, pre-filled by the caller;
 *          out[r] += scale * leaf_value, folded tree by tree in order —
 *          the exact update sequence of the boosted-ensemble NumPy loop.
 */
void stacked_descent(const double *x,
                     int64_t n_samples,
                     int64_t n_features,
                     const int64_t *roots,
                     const int64_t *depths,
                     int64_t n_trees,
                     const node_t *nodes,
                     int64_t mode,
                     double scale,
                     double *out)
{
    for (int64_t t = 0; t < n_trees; ++t) {
        const int64_t root = roots[t];
        const int64_t depth = depths[t];
        double *out_row = (mode == 0) ? out + t * n_samples : out;
        for (int64_t r0 = 0; r0 < n_samples; r0 += LANES) {
            const double *xr[LANES];
            int64_t n[LANES];
            for (int l = 0; l < LANES; ++l) {
                /* Tail blocks replicate the last row; the extra lanes are
                 * computed and discarded (descent is a total function). */
                int64_t r = r0 + l < n_samples ? r0 + l : n_samples - 1;
                xr[l] = x + r * n_features;
                n[l] = root;
            }
            for (int64_t d = 0; d < depth; ++d) {
                for (int l = 0; l < LANES; ++l) {
                    const node_t *nd = &nodes[n[l]];
                    n[l] = xr[l][nd->feat] <= nd->thr ? nd->left : nd->right;
                }
            }
            const int64_t live =
                n_samples - r0 < LANES ? n_samples - r0 : LANES;
            if (mode == 0) {
                for (int l = 0; l < live; ++l)
                    out_row[r0 + l] = nodes[n[l]].value;
            } else {
                for (int l = 0; l < live; ++l)
                    out_row[r0 + l] += scale * nodes[n[l]].value;
            }
        }
    }
}

/* ---- SVML bridge -------------------------------------------------------
 *
 * On AVX512-SKX hosts NumPy dispatches float64 ``**`` and ``log1p`` to
 * Intel SVML (__svml_pow8_ha / __svml_log1p8_ha), whose results differ
 * from libm by a ULP on some inputs.  Bit-identity therefore requires
 * calling the *same* SVML code NumPy calls: the loader resolves those
 * symbols from NumPy's own extension module and hands them to
 * set_svml_pointers().  The bridges below are compiled for avx512f via a
 * target attribute, so the .so still loads and runs (libm path) on CPUs
 * without AVX512.  SVML is lane-independent, so calling it with a full
 * 8-lane block — padding dead lanes with 1.0 — reproduces NumPy's
 * results regardless of how NumPy grouped the same elements.
 */
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HAVE_SVML_BRIDGE 1
#include <immintrin.h>
typedef __m512d (*svml_pow8_t)(__m512d, __m512d);
typedef __m512d (*svml_log1p8_t)(__m512d);
static svml_pow8_t g_svml_pow8;
static svml_log1p8_t g_svml_log1p8;

__attribute__((target("avx512f")))
static void bridge_pow8(const double *t, const double *e, double *r)
{
    _mm512_storeu_pd(
        r, g_svml_pow8(_mm512_loadu_pd(t), _mm512_loadu_pd(e)));
}

__attribute__((target("avx512f")))
static void bridge_log1p8(const double *t, double *r)
{
    _mm512_storeu_pd(r, g_svml_log1p8(_mm512_loadu_pd(t)));
}
#endif

void set_svml_pointers(void *pow8, void *log1p8)
{
#ifdef HAVE_SVML_BRIDGE
    g_svml_pow8 = (svml_pow8_t)pow8;
    g_svml_log1p8 = (svml_log1p8_t)log1p8;
#else
    (void)pow8;
    (void)log1p8;
#endif
}

static void vec_pow8(const double *t, const double *e, double *r)
{
#ifdef HAVE_SVML_BRIDGE
    if (g_svml_pow8) {
        bridge_pow8(t, e, r);
        return;
    }
#endif
    for (int l = 0; l < LANES; ++l)
        r[l] = pow(t[l], e[l]);
}

static void vec_log1p8(const double *t, double *r)
{
#ifdef HAVE_SVML_BRIDGE
    if (g_svml_log1p8) {
        bridge_log1p8(t, r);
        return;
    }
#endif
    for (int l = 0; l < LANES; ++l)
        r[l] = log1p(t[l]);
}

/* ---- Fused Yeo-Johnson + affine transform ------------------------------
 *
 * Mirror of yeo_johnson_transform_matrix followed by (y - shift) / scale.
 * NumPy's ``x ** s`` takes exact fast paths for scalar exponents in
 * {-1, 0.5, 1, 2} (reciprocal / sqrt / copy / square) — and the matrix
 * transform recomputes exactly the λ ∈ {-1, 0, 0.5, 1, 1.5, 2, 3}
 * columns through that scalar path — so the dispatch below reproduces
 * the per-column operation NumPy actually performed:
 *
 *   branch exponent (λ, or 2-λ on the negative branch):
 *     == 2.0  -> t * t          == 0.5 -> sqrt(t)
 *     == 1.0  -> t              == -1.0 -> 1.0 / t
 *     otherwise pow(t, e)       (SVML bridge when wired)
 *   |λ| <= 1e-12 (positive) / |λ-2| <= 1e-12 (negative) -> log1p.
 *
 * All remaining arithmetic (±1.0, negation, the divides, the affine) is
 * correctly-rounded IEEE754, identical in C and NumPy; -ffp-contract=off
 * forbids FMA contraction from changing a ULP.
 */
enum { OP_POW, OP_SQUARE, OP_SQRT, OP_IDENT, OP_RECIP };

static int op_for_exponent(double e)
{
    if (e == 2.0)
        return OP_SQUARE;
    if (e == 0.5)
        return OP_SQRT;
    if (e == 1.0)
        return OP_IDENT;
    if (e == -1.0)
        return OP_RECIP;
    return OP_POW;
}

static void transform_column(double *x,
                             int64_t n_rows,
                             int64_t stride,
                             int64_t has_lam,
                             double lam,
                             double shift,
                             double scale)
{
    if (!has_lam) {
        for (int64_t r = 0; r < n_rows; ++r) {
            double *cell = x + r * stride;
            *cell = (*cell - shift) / scale;
        }
        return;
    }
    int pos_log = fabs(lam) <= 1e-12;
    int neg_log = fabs(lam - 2.0) <= 1e-12;
    const double pos_e = lam;
    const double neg_e = 2.0 - lam;
    const int pos_op = pos_log ? OP_POW : op_for_exponent(pos_e);
    const int neg_op = neg_log ? OP_POW : op_for_exponent(neg_e);

    for (int64_t r0 = 0; r0 < n_rows; r0 += LANES) {
        const int64_t live = n_rows - r0 < LANES ? n_rows - r0 : LANES;
        double v[LANES], t[LANES], p[LANES], y[LANES];
        double tin[LANES], ein[LANES], lin[LANES];
        double powres[LANES], logres[LANES];
        int pos[LANES], use_log[LANES], op[LANES];
        int need_pow = 0, need_log = 0;
        for (int l = 0; l < LANES; ++l) {
            /* Dead tail lanes compute x=0 (positive branch, t=1) and are
             * never stored. */
            const double xv = l < live ? x[(r0 + l) * stride] : 0.0;
            v[l] = xv;
            pos[l] = xv >= 0.0;
            t[l] = pos[l] ? xv + 1.0 : -xv + 1.0;
            use_log[l] = pos[l] ? pos_log : neg_log;
            op[l] = pos[l] ? pos_op : neg_op;
            tin[l] = 1.0;
            ein[l] = 1.0;
            lin[l] = 0.0;
            if (use_log[l]) {
                need_log = 1;
                lin[l] = pos[l] ? xv : -xv;
            } else {
                switch (op[l]) {
                case OP_SQUARE:
                    p[l] = t[l] * t[l];
                    break;
                case OP_SQRT:
                    p[l] = sqrt(t[l]);
                    break;
                case OP_IDENT:
                    p[l] = t[l];
                    break;
                case OP_RECIP:
                    p[l] = 1.0 / t[l];
                    break;
                default:
                    need_pow = 1;
                    tin[l] = t[l];
                    ein[l] = pos[l] ? pos_e : neg_e;
                    break;
                }
            }
        }
        if (need_pow) {
            vec_pow8(tin, ein, powres);
            for (int l = 0; l < LANES; ++l)
                if (!use_log[l] && op[l] == OP_POW)
                    p[l] = powres[l];
        }
        if (need_log)
            vec_log1p8(lin, logres);
        for (int l = 0; l < live; ++l) {
            if (use_log[l])
                y[l] = pos[l] ? logres[l] : -logres[l];
            else if (pos[l])
                y[l] = (p[l] - 1.0) / pos_e;
            else
                y[l] = -((p[l] - 1.0) / neg_e);
            x[(r0 + l) * stride] = (y[l] - shift) / scale;
        }
    }
}

/* In-place fused transform of a row-major (n_rows, n_cols) matrix:
 * per-column Yeo-Johnson (when has_lambdas) then (y - shift) / scale. */
void fused_transform(double *x,
                     int64_t n_rows,
                     int64_t n_cols,
                     int64_t has_lambdas,
                     const double *lambdas,
                     const double *shift,
                     const double *scale)
{
    for (int64_t j = 0; j < n_cols; ++j)
        transform_column(x + j, n_rows, n_cols, has_lambdas,
                         has_lambdas ? lambdas[j] : 0.0,
                         shift[j], scale[j]);
}

/* ---- Feature-grid fill -------------------------------------------------
 *
 * Replays FeatureGridWriter's column recipe from a compact program:
 *
 *   bases: n_bases accumulators, base b summing terms
 *          [base_off[b], base_off[b+1]) left-to-right; each term is
 *          term_coef[t] * d[f0] * d[f1] * ... over term_fac[t*3 + q]
 *          factor indices (-1 padded), multiplied left-to-right.
 *   columns: col_kind 0 -> nt, 1 -> bases[col_base], 2 -> bases / nt.
 *
 * The grid is row-major (n_shapes * n_threads, n_cols), threads varying
 * fastest — exactly the writer's layout.
 */
void feature_fill(const double *dims,
                  int64_t n_shapes,
                  int64_t n_dims,
                  const double *nt,
                  int64_t n_threads,
                  const int64_t *base_off,
                  int64_t n_bases,
                  const double *term_coef,
                  const int64_t *term_fac,
                  const int64_t *col_kind,
                  const int64_t *col_base,
                  int64_t n_cols,
                  double *grid)
{
    double bases[16];
    for (int64_t s = 0; s < n_shapes; ++s) {
        const double *d = dims + s * n_dims;
        for (int64_t b = 0; b < n_bases; ++b) {
            double acc = 0.0;
            for (int64_t ti = base_off[b]; ti < base_off[b + 1]; ++ti) {
                double v = term_coef[ti];
                const int64_t *fac = term_fac + ti * 3;
                for (int q = 0; q < 3 && fac[q] >= 0; ++q)
                    v = v * d[fac[q]];
                acc = ti == base_off[b] ? v : acc + v;
            }
            bases[b] = acc;
        }
        double *row = grid + s * n_threads * n_cols;
        for (int64_t th = 0; th < n_threads; ++th) {
            const double ntv = nt[th];
            double *cell = row + th * n_cols;
            for (int64_t c = 0; c < n_cols; ++c) {
                const int64_t kind = col_kind[c];
                if (kind == 0)
                    cell[c] = ntv;
                else if (kind == 1)
                    cell[c] = bases[col_base[c]];
                else
                    cell[c] = bases[col_base[c]] / ntv;
            }
        }
    }
}

/* ---- Fused evaluate ----------------------------------------------------
 *
 * feature_fill -> fused_transform -> stacked_descent in one call, so the
 * caller drops the GIL across the whole span.  model_mode selects the
 * tail: 0 = per-tree leaf matrix, 1 = fold (out pre-set to fold_base
 * here, then += fold_scale * leaf per tree), 2 = stop after the
 * transform (linear / opaque models finish in Python on the same grid).
 */
void fused_evaluate(const double *dims,
                    int64_t n_shapes,
                    int64_t n_dims,
                    const double *nt,
                    int64_t n_threads,
                    const int64_t *base_off,
                    int64_t n_bases,
                    const double *term_coef,
                    const int64_t *term_fac,
                    const int64_t *col_kind,
                    const int64_t *col_base,
                    int64_t n_cols,
                    double *grid,
                    int64_t has_lambdas,
                    const double *lambdas,
                    const double *shift,
                    const double *scale,
                    int64_t model_mode,
                    const int64_t *roots,
                    const int64_t *depths,
                    int64_t n_trees,
                    const node_t *nodes,
                    double fold_base,
                    double fold_scale,
                    double *out)
{
    feature_fill(dims, n_shapes, n_dims, nt, n_threads, base_off, n_bases,
                 term_coef, term_fac, col_kind, col_base, n_cols, grid);
    const int64_t rows = n_shapes * n_threads;
    fused_transform(grid, rows, n_cols, has_lambdas, lambdas, shift, scale);
    if (model_mode == 2)
        return;
    if (model_mode == 1)
        for (int64_t r = 0; r < rows; ++r)
            out[r] = fold_base;
    stacked_descent(grid, rows, n_cols, roots, depths, n_trees, nodes,
                    model_mode, fold_scale, out);
}
"""

_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_INT64_P = ctypes.POINTER(ctypes.c_int64)

#: Resolved kernel bundle (or None); "unset" until first load attempt.
_KERNELS: object = "unset"

#: Library adopted from a parent process (procshard workers).
_PREBUILT: Path | None = None

_STAGE_ENV = {
    "fill": "ADSALA_NATIVE_FILL",
    "transform": "ADSALA_NATIVE_TRANSFORM",
    "descent": "ADSALA_NATIVE_DESCENT",
}


def native_enabled() -> bool:
    """Whether the native kernels are allowed (``ADSALA_NATIVE`` != "0")."""
    return os.environ.get("ADSALA_NATIVE", "1") != "0"


def stage_enabled(stage: str) -> bool:
    """Whether one stage ("fill" / "transform" / "descent") is allowed.

    Each stage has its own opt-out (``ADSALA_NATIVE_FILL=0`` etc.) under
    the master ``ADSALA_NATIVE`` switch; a disabled stage falls back to
    its NumPy expression and also disables the fused end-to-end call.
    """
    return native_enabled() and os.environ.get(_STAGE_ENV[stage], "1") != "0"


def _require_native() -> bool:
    """Loud-failure mode: build problems raise instead of falling back."""
    return os.environ.get("ADSALA_NATIVE_REQUIRE", "0") == "1"


def _owned_by_current_user(path: Path) -> bool:
    """Whether ``path`` belongs to us (POSIX; trivially true elsewhere)."""
    getuid = getattr(os, "getuid", None)
    if getuid is None:  # pragma: no cover - non-POSIX
        return True
    try:
        return path.stat().st_uid == getuid()
    except OSError:
        return False


def _source_digest() -> str:
    return hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]


def _cache_dir() -> Path:
    """The library cache directory (``ADSALA_NATIVE_CACHE`` or temp)."""
    override = os.environ.get("ADSALA_NATIVE_CACHE")
    if override:
        return Path(override)
    # Per-user, 0700 cache directory: the temp dir is world-writable and
    # the library name is predictable, so never dlopen anything another
    # user could have planted there.
    uid = getattr(os, "getuid", lambda: "u")()
    return Path(tempfile.gettempdir()) / f"adsala-native-{uid}"


def _build_library() -> Path | None:
    """Compile (or reuse) the cached shared object; None when impossible."""
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    cache_dir = _cache_dir()
    library = cache_dir / f"kernels_{_source_digest()}.so"
    if library.exists():
        if _owned_by_current_user(cache_dir) and _owned_by_current_user(library):
            return library
        return None
    try:
        cache_dir.mkdir(parents=True, exist_ok=True, mode=0o700)
        if not _owned_by_current_user(cache_dir):
            return None
        with tempfile.TemporaryDirectory(dir=cache_dir) as workdir:
            source = Path(workdir) / "kernels.c"
            source.write_text(_SOURCE)
            built = Path(workdir) / "kernels.so"
            subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-ffp-contract=off",
                    "-shared",
                    "-fPIC",
                    "-o",
                    str(built),
                    str(source),
                    "-lm",
                ],
                check=True,
                capture_output=True,
                timeout=60,
            )
            os.replace(built, library)  # atomic: concurrent builders race safely
    except (OSError, subprocess.SubprocessError):
        return None
    return library


def library_path() -> str | None:
    """Build (or reuse) the shared object and return its path, or None.

    Called by the ``procshard`` parent *before* spawning workers, so the
    compile happens exactly once; workers adopt the path via
    :func:`adopt_library` instead of racing the compiler.
    """
    if not native_enabled():
        return None
    library = _PREBUILT if _PREBUILT is not None else _build_library()
    return str(library) if library is not None else None


def adopt_library(path: str | None) -> None:
    """Adopt a parent-built shared object (worker side of the handoff).

    Ignores missing / foreign-owned paths and libraries whose filename
    does not match this module's source digest (a version-skewed parent):
    in those cases the worker just builds or reuses its own cache.
    """
    global _KERNELS, _PREBUILT
    if not path:
        return
    candidate = Path(path)
    if not candidate.exists() or not _owned_by_current_user(candidate):
        return
    if candidate.name != f"kernels_{_source_digest()}.so":
        return
    _PREBUILT = candidate
    _KERNELS = "unset"


def _reset_kernel_cache() -> None:
    """Forget the memoised load (tests and env-switch round-trips)."""
    global _KERNELS, _PREBUILT
    _KERNELS = "unset"
    _PREBUILT = None


class NativeKernels:
    """The loaded kernel bundle: per-stage callables plus load metadata.

    Attributes are ``None`` when the stage is unavailable (env opt-out,
    or the transform failed its bit-exactness probe).  ``fused_evaluate``
    requires all three stages.
    """

    def __init__(self, library: str):
        self.library = library
        self.descent = None
        self.feature_fill = None
        self.fused_transform = None
        self.fused_evaluate = None
        self.svml_bridged = False
        self.transform_verified = False
        self._lib = None  # strong ref: keeps the dlopen handle alive
        self._numpy_cdll = None  # strong ref: SVML symbols' home


def load_kernel():
    """The native descent callable, or ``None`` when unavailable.

    Backwards-compatible accessor (PR 3 API).  Memoised.  Signature:
    ``kernel(x, roots, depths, nodes, mode, scale, out)`` — see the C
    source above for the contract; ``nodes`` must use :data:`NODE_DTYPE`
    and all arrays must be C-contiguous.
    """
    kernels = load_kernels()
    return kernels.descent if kernels is not None else None


def load_kernels() -> NativeKernels | None:
    """The full native kernel bundle, or ``None`` when unavailable.

    Memoised.  Builds (or reuses) the shared object, wires the SVML
    bridge when NumPy exports the symbols on an AVX512-SKX host, runs
    the transform bit-exactness probe, and applies the per-stage env
    opt-outs.  With ``ADSALA_NATIVE_REQUIRE=1`` a build/load failure
    raises ``RuntimeError`` instead of returning ``None``.
    """
    global _KERNELS
    if _KERNELS != "unset":
        return _KERNELS
    _KERNELS = _load_kernels_impl()
    return _KERNELS


def _load_kernels_impl() -> NativeKernels | None:
    if not native_enabled():
        return None
    library = _PREBUILT if _PREBUILT is not None else _build_library()
    if library is None:
        if _require_native():
            raise RuntimeError(
                "ADSALA_NATIVE_REQUIRE=1 but the native kernel library "
                "could not be built (no compiler, or the build failed)"
            )
        return None
    try:
        lib = ctypes.CDLL(str(library))
        _declare_signatures(lib)
    except (OSError, AttributeError) as exc:
        if _require_native():
            raise RuntimeError(
                f"ADSALA_NATIVE_REQUIRE=1 but loading {library} failed: {exc}"
            ) from exc
        return None

    kernels = NativeKernels(str(library))
    kernels._lib = lib
    kernels._numpy_cdll, kernels.svml_bridged = _wire_svml(lib)

    kernels.descent = _make_descent_wrapper(lib.stacked_descent)
    kernels.feature_fill = _make_fill_wrapper(lib.feature_fill)
    kernels.fused_transform = _make_transform_wrapper(lib.fused_transform)
    kernels.fused_evaluate = _make_evaluate_wrapper(lib.fused_evaluate)

    # The transform's transcendentals are the one place host math
    # libraries could diverge from NumPy: probe bit-exactness across
    # every dispatch branch and drop the stage (and the fused chain that
    # contains it) on any mismatch.
    kernels.transform_verified = _verify_transform(kernels)
    if not kernels.transform_verified:
        kernels.fused_transform = None
        kernels.fused_evaluate = None

    # Per-stage kill switches; the fused chain needs all three stages.
    if not stage_enabled("fill"):
        kernels.feature_fill = None
        kernels.fused_evaluate = None
    if not stage_enabled("transform"):
        kernels.fused_transform = None
        kernels.fused_evaluate = None
    if not stage_enabled("descent"):
        kernels.descent = None
        kernels.fused_evaluate = None
    return kernels


_DESCENT_ARGTYPES = [
    _DOUBLE_P,  # x
    ctypes.c_int64,  # n_samples
    ctypes.c_int64,  # n_features
    _INT64_P,  # roots
    _INT64_P,  # depths
    ctypes.c_int64,  # n_trees
    ctypes.c_void_p,  # nodes
    ctypes.c_int64,  # mode
    ctypes.c_double,  # scale
    _DOUBLE_P,  # out
]

_FILL_ARGTYPES = [
    _DOUBLE_P,  # dims
    ctypes.c_int64,  # n_shapes
    ctypes.c_int64,  # n_dims
    _DOUBLE_P,  # nt
    ctypes.c_int64,  # n_threads
    _INT64_P,  # base_off
    ctypes.c_int64,  # n_bases
    _DOUBLE_P,  # term_coef
    _INT64_P,  # term_fac
    _INT64_P,  # col_kind
    _INT64_P,  # col_base
    ctypes.c_int64,  # n_cols
    _DOUBLE_P,  # grid
]

_TRANSFORM_ARGTYPES = [
    _DOUBLE_P,  # x
    ctypes.c_int64,  # n_rows
    ctypes.c_int64,  # n_cols
    ctypes.c_int64,  # has_lambdas
    _DOUBLE_P,  # lambdas
    _DOUBLE_P,  # shift
    _DOUBLE_P,  # scale
]

_EVALUATE_ARGTYPES = (
    _FILL_ARGTYPES
    + [
        ctypes.c_int64,  # has_lambdas
        _DOUBLE_P,  # lambdas
        _DOUBLE_P,  # shift
        _DOUBLE_P,  # scale
        ctypes.c_int64,  # model_mode
        _INT64_P,  # roots
        _INT64_P,  # depths
        ctypes.c_int64,  # n_trees
        ctypes.c_void_p,  # nodes
        ctypes.c_double,  # fold_base
        ctypes.c_double,  # fold_scale
        _DOUBLE_P,  # out
    ]
)


def _declare_signatures(lib) -> None:
    lib.stacked_descent.restype = None
    lib.stacked_descent.argtypes = _DESCENT_ARGTYPES
    lib.feature_fill.restype = None
    lib.feature_fill.argtypes = _FILL_ARGTYPES
    lib.fused_transform.restype = None
    lib.fused_transform.argtypes = _TRANSFORM_ARGTYPES
    lib.fused_evaluate.restype = None
    lib.fused_evaluate.argtypes = _EVALUATE_ARGTYPES
    lib.set_svml_pointers.restype = None
    lib.set_svml_pointers.argtypes = [ctypes.c_void_p, ctypes.c_void_p]


def _wire_svml(lib):
    """Hand NumPy's own SVML pow/log1p symbols to the kernel, if present.

    Only on hosts where NumPy's dispatcher would itself pick the SVML
    loops (AVX512_SKX): calling an AVX512 function elsewhere would be an
    illegal instruction, and NumPy uses libm there anyway — which is the
    kernel's fallback, so results still match.
    """
    try:
        import numpy._core._multiarray_umath as umath
    except ImportError:  # pragma: no cover - numpy < 2
        return None, False
    features = getattr(umath, "__cpu_features__", None) or {}
    if not features.get("AVX512_SKX"):
        return None, False
    try:
        numpy_cdll = ctypes.CDLL(umath.__file__)
        pow8 = ctypes.cast(getattr(numpy_cdll, "__svml_pow8_ha"), ctypes.c_void_p)
        log1p8 = ctypes.cast(
            getattr(numpy_cdll, "__svml_log1p8_ha"), ctypes.c_void_p
        )
    except (OSError, AttributeError, TypeError):
        return None, False
    lib.set_svml_pointers(pow8, log1p8)
    return numpy_cdll, True


def _verify_transform(kernels) -> bool:
    """Probe the fused transform against the NumPy reference, bitwise.

    Exercises every dispatch branch: the λ fast paths {-1, 0.5, 1, 2}
    and their 2-λ mirrors, the log1p thresholds (0, ≈0, 2, ≈2), generic
    pow lambdas, positive and negative inputs, and a non-multiple-of-8
    row count (tail lanes).
    """
    try:
        from repro.preprocessing.power import yeo_johnson_transform_matrix
    except Exception:  # pragma: no cover - degenerate environment
        return False
    lambdas = np.array(
        [
            -1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0,
            0.37, -0.84, 2.5, 1e-13, 2.0 - 1e-13, 2.0 + 1e-13, -2.2,
        ]
    )
    base = np.array(
        [
            0.0, 0.37, 1.0, 7.5, 1234.5, 1e6, -0.25,
            -3.5, 0.999, 42.0, 1e-9, 5.0e4, 2.0,
        ]
    )
    X = np.empty((base.shape[0], lambdas.shape[0]))
    for j in range(lambdas.shape[0]):
        X[:, j] = np.roll(base, j)
    shift = np.linspace(-1.5, 2.0, lambdas.shape[0])
    scale = np.linspace(0.5, 3.0, lambdas.shape[0])
    try:
        expected = (yeo_johnson_transform_matrix(X, lambdas) - shift) / scale
        got = np.ascontiguousarray(X)
        kernels.fused_transform(got, lambdas, shift, scale)
        if not np.array_equal(expected, got):
            return False
        affine_expected = (X - shift) / scale
        affine_got = np.ascontiguousarray(X)
        kernels.fused_transform(affine_got, None, shift, scale)
        return bool(np.array_equal(affine_expected, affine_got))
    except Exception:  # pragma: no cover - probe must never take down load
        return False


def _make_descent_wrapper(fn):
    def kernel(
        x: np.ndarray,
        roots: np.ndarray,
        depths: np.ndarray,
        nodes: np.ndarray,
        mode: int,
        scale: float,
        out: np.ndarray,
    ) -> np.ndarray:
        fn(
            x.ctypes.data_as(_DOUBLE_P),
            x.shape[0],
            x.shape[1],
            roots.ctypes.data_as(_INT64_P),
            depths.ctypes.data_as(_INT64_P),
            roots.shape[0],
            nodes.ctypes.data,
            mode,
            scale,
            out.ctypes.data_as(_DOUBLE_P),
        )
        return out

    # Introspection hook: the raw ctypes foreign function, so callers (and
    # the concurrency tests) can verify the GIL-releasing load path — a
    # ``CDLL`` export with explicit argtypes/restype, never ``PyDLL``.
    kernel.ctypes_fn = fn
    return kernel


def _make_fill_wrapper(fn):
    def kernel(
        program,
        dims: np.ndarray,
        nt: np.ndarray,
        grid: np.ndarray,
    ) -> np.ndarray:
        fn(
            dims.ctypes.data_as(_DOUBLE_P),
            dims.shape[0],
            dims.shape[1],
            nt.ctypes.data_as(_DOUBLE_P),
            nt.shape[0],
            program.base_offsets.ctypes.data_as(_INT64_P),
            program.base_offsets.shape[0] - 1,
            program.term_coef.ctypes.data_as(_DOUBLE_P),
            program.term_fac.ctypes.data_as(_INT64_P),
            program.col_kind.ctypes.data_as(_INT64_P),
            program.col_base.ctypes.data_as(_INT64_P),
            program.col_kind.shape[0],
            grid.ctypes.data_as(_DOUBLE_P),
        )
        return grid

    kernel.ctypes_fn = fn
    return kernel


def _make_transform_wrapper(fn):
    def kernel(
        x: np.ndarray,
        lambdas: np.ndarray | None,
        shift: np.ndarray,
        scale: np.ndarray,
    ) -> np.ndarray:
        fn(
            x.ctypes.data_as(_DOUBLE_P),
            x.shape[0],
            x.shape[1],
            0 if lambdas is None else 1,
            None if lambdas is None else lambdas.ctypes.data_as(_DOUBLE_P),
            shift.ctypes.data_as(_DOUBLE_P),
            scale.ctypes.data_as(_DOUBLE_P),
        )
        return x

    kernel.ctypes_fn = fn
    return kernel


def _make_evaluate_wrapper(fn):
    def kernel(
        program,
        dims: np.ndarray,
        nt: np.ndarray,
        grid: np.ndarray,
        lambdas: np.ndarray | None,
        shift: np.ndarray,
        scale: np.ndarray,
        model_mode: int,
        roots: np.ndarray | None,
        depths: np.ndarray | None,
        nodes: np.ndarray | None,
        fold_base: float,
        fold_scale: float,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        fn(
            dims.ctypes.data_as(_DOUBLE_P),
            dims.shape[0],
            dims.shape[1],
            nt.ctypes.data_as(_DOUBLE_P),
            nt.shape[0],
            program.base_offsets.ctypes.data_as(_INT64_P),
            program.base_offsets.shape[0] - 1,
            program.term_coef.ctypes.data_as(_DOUBLE_P),
            program.term_fac.ctypes.data_as(_INT64_P),
            program.col_kind.ctypes.data_as(_INT64_P),
            program.col_base.ctypes.data_as(_INT64_P),
            program.col_kind.shape[0],
            grid.ctypes.data_as(_DOUBLE_P),
            0 if lambdas is None else 1,
            None if lambdas is None else lambdas.ctypes.data_as(_DOUBLE_P),
            shift.ctypes.data_as(_DOUBLE_P),
            scale.ctypes.data_as(_DOUBLE_P),
            model_mode,
            None if roots is None else roots.ctypes.data_as(_INT64_P),
            None if depths is None else depths.ctypes.data_as(_INT64_P),
            0 if roots is None else roots.shape[0],
            None if nodes is None else nodes.ctypes.data,
            fold_base,
            fold_scale,
            None if out is None else out.ctypes.data_as(_DOUBLE_P),
        )
        return out

    kernel.ctypes_fn = fn
    return kernel
