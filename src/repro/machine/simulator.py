"""Timing simulator: the "timing program" of the ADSALA installation workflow.

:class:`TimingSimulator` wraps the analytic :class:`~repro.machine.perfmodel.PerformanceModel`
with two effects observed in the paper's measured data:

* **multiplicative noise** — run-to-run variation of real timings, modelled
  as log-normal noise that is *deterministic* in (platform, routine, dims,
  threads, seed) so that experiments are reproducible;
* **abnormal patches** — the paper's heatmaps (Figs. 4-5) show localized
  regions where the optimal thread count differs drastically from the
  surrounding area (cache-set conflicts, alignment pathologies, ...).  The
  simulator reproduces them by hashing each problem shape into a small
  number of "patch cells" that receive an extra slowdown for a band of
  thread counts.

The simulator exposes the operations the ADSALA pipeline needs:
``time``/``breakdown`` for a single configuration, ``time_batch`` /
``breakdown_batch`` for whole arrays of configurations in one vectorised
pass, ``sweep_threads`` for the full thread-count profile of one problem,
and ``best_threads`` / ``best_time`` for the oracle optimum used in
evaluation.

Determinism and the integer-mix hash
------------------------------------
All pseudo-randomness derives from a splitmix64-style integer mix over
``(platform, seed, tag, routine, dims..., threads)``.  The mix is evaluated
either on Python ints (scalar path) or on ``uint64`` NumPy arrays (batch
path) with bit-identical results, which is what lets the data-gathering
campaign collapse thousands of scalar calls into a handful of array ops
while staying reproducible.  The scalar ``time``/``breakdown`` path is kept
as the reference implementation; ``time_batch`` equivalence against it is
asserted in the test suite.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.blas.api import RoutineSpec, parse_routine
from repro.machine.perfmodel import (
    CostBreakdown,
    CostBreakdownBatch,
    PerformanceModel,
    normalize_batch_inputs,
)
from repro.machine.topology import MachineTopology
from repro.routines.replay import NoTimingSourceError, ReplayTimingModel

__all__ = ["TimingSimulator", "ThreadSweep"]


#: How a total-seconds timing source (plugin cost_model/measure hook or
#: traffic replay) is apportioned into breakdown components.  The builtin
#: analytic routines get a real per-component model; external sources only
#: report totals, so the split is a fixed documented convention.
_HOOK_SPLIT = (0.70, 0.15, 0.05, 0.10)  # kernel, copy, sync, other


# -- splitmix64 integer mixing -------------------------------------------------
_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15
_MUL1 = 0xBF58476D1CE4E5B9
_MUL2 = 0x94D049BB133111EB


def _splitmix64(value: int) -> int:
    """One splitmix64 avalanche step on a Python int (mod 2**64)."""
    z = (value + _GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * _MUL1) & _MASK64
    z = ((z ^ (z >> 27)) * _MUL2) & _MASK64
    return z ^ (z >> 31)


def _splitmix64_array(z: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 step on a uint64 array (wrapping arithmetic)."""
    z = z + np.uint64(_GAMMA)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MUL1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MUL2)
    return z ^ (z >> np.uint64(31))


@lru_cache(maxsize=None)
def _string_code(text: str) -> int:
    """Stable 64-bit code for a string (platform names, routines, tags)."""
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


_TAG_NOISE1 = _string_code("noise1")
_TAG_NOISE2 = _string_code("noise2")
_TAG_PATCH = _string_code("patch")
_TAG_PATCH_CENTER = _string_code("patch-center")


@dataclass
class ThreadSweep:
    """Runtime of one problem across every candidate thread count."""

    routine: str
    dims: Dict[str, int]
    threads: np.ndarray
    times: np.ndarray

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.times))

    @property
    def best_threads(self) -> int:
        return int(self.threads[self.best_index])

    @property
    def best_time(self) -> float:
        return float(self.times[self.best_index])

    def time_at(self, threads: int) -> float:
        matches = np.flatnonzero(self.threads == threads)
        if matches.size == 0:
            raise KeyError(f"Thread count {threads} not in sweep")
        return float(self.times[matches[0]])


class TimingSimulator:
    """Deterministic, noisy timing source for one platform.

    Parameters
    ----------
    platform:
        Machine description (e.g. :data:`repro.machine.platforms.GADI`).
    seed:
        Base seed folded into every noise draw.
    noise_level:
        Sigma of the log-normal run-to-run noise (0 disables noise).
    patch_probability:
        Fraction of problem-shape cells that behave "abnormally".
    patch_strength:
        Maximum extra slowdown applied inside an abnormal patch.
    """

    def __init__(
        self,
        platform: MachineTopology,
        seed: int = 0,
        noise_level: float = 0.04,
        patch_probability: float = 0.06,
        patch_strength: float = 0.9,
    ):
        if noise_level < 0:
            raise ValueError("noise_level must be non-negative")
        if not 0.0 <= patch_probability < 1.0:
            raise ValueError("patch_probability must be in [0, 1)")
        self.platform = platform
        self.model = PerformanceModel(platform)
        self.seed = seed
        self.noise_level = noise_level
        self.patch_probability = patch_probability
        self.patch_strength = patch_strength
        self.n_evaluations = 0
        self._replays: Dict[str, ReplayTimingModel] = {}
        self._hash_base = _splitmix64(_string_code(platform.name) ^ (seed & _MASK64))

    # -- timing-source dispatch --------------------------------------------------
    def attach_replay(self, routine: str, replay: ReplayTimingModel) -> None:
        """Attach an observed-traffic replay as the timing source of a routine.

        Used for catalog routines with neither the builtin analytic model
        nor plugin hooks: once traffic has been observed (or a dataset
        gathered elsewhere), replay makes the routine timeable again —
        sweeps, gathers and adaptation all work against it.
        """
        _, base, _ = parse_routine(routine)
        self._replays[base] = replay

    def detach_replay(self, routine: str) -> None:
        """Remove a previously attached replay timing source."""
        _, base, _ = parse_routine(routine)
        self._replays.pop(base, None)

    def _timing_hook(self, base: str, spec: RoutineSpec):
        """The non-analytic timing source of a routine, or None for builtin.

        Precedence: plugin ``cost_model`` (analytic), builtin performance
        model (``spec.analytic``), plugin ``measure`` hook, attached
        replay.  Raises :class:`NoTimingSourceError` when nothing applies.
        """
        if spec.cost_model is not None:
            return spec.cost_model
        if spec.analytic:
            return None
        if spec.measure is not None:
            return spec.measure
        replay = self._replays.get(base)
        if replay is not None:
            return lambda platform, prefix, dims, threads: replay.time_batch(
                dims, threads
            )
        raise NoTimingSourceError(
            f"Routine {base!r} has no analytic cost model, no measure hook "
            "and no attached traffic replay; provide a cost_model/measure in "
            "the plugin spec or call TimingSimulator.attach_replay()"
        )

    @staticmethod
    def _split_total(total):
        """Apportion hook/replay total seconds into breakdown components."""
        return (
            total * _HOOK_SPLIT[0],
            total * _HOOK_SPLIT[1],
            total * _HOOK_SPLIT[2],
            total * _HOOK_SPLIT[3],
        )

    # -- deterministic pseudo-randomness ---------------------------------------
    def _fraction(self, tag_code: int, routine: str, values) -> float:
        """Uniform-in-[0,1) value from the integer mix of ``values`` (scalar)."""
        state = _splitmix64(self._hash_base ^ tag_code)
        state = _splitmix64(state ^ _string_code(routine))
        for value in values:
            state = _splitmix64(state ^ (int(value) & _MASK64))
        return state / 2 ** 64

    def _fraction_batch(
        self, tag_code: int, routine: str, value_arrays, n: int
    ) -> np.ndarray:
        """Vectorised :meth:`_fraction` over aligned int64 value arrays."""
        seed_state = _splitmix64(self._hash_base ^ tag_code)
        seed_state = _splitmix64(seed_state ^ _string_code(routine))
        state = np.full(n, seed_state, dtype=np.uint64)
        for values in value_arrays:
            state = _splitmix64_array(
                state ^ np.asarray(values, dtype=np.int64).astype(np.uint64)
            )
        return state / 2.0 ** 64

    def _noise_factor(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        if self.noise_level == 0:
            return 1.0
        key = (*dims.values(), threads)
        u1 = self._fraction(_TAG_NOISE1, routine, key)
        u2 = self._fraction(_TAG_NOISE2, routine, key)
        # Box-Muller transform -> standard normal -> log-normal factor.
        u1 = min(max(u1, 1e-12), 1 - 1e-12)
        gaussian = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return float(np.exp(self.noise_level * gaussian))

    def _noise_factor_batch(
        self,
        routine: str,
        dims: Dict[str, np.ndarray],
        threads: np.ndarray,
        n: int,
    ) -> np.ndarray:
        if self.noise_level == 0:
            return np.ones(n)
        key = (*dims.values(), threads)
        u1 = self._fraction_batch(_TAG_NOISE1, routine, key, n)
        u2 = self._fraction_batch(_TAG_NOISE2, routine, key, n)
        u1 = np.clip(u1, 1e-12, 1 - 1e-12)
        gaussian = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return np.exp(self.noise_level * gaussian)

    @staticmethod
    def _patch_cell(value):
        """Coarse log-scale cell index of one dimension (scalar or array)."""
        return (np.log2(np.maximum(value, 1)) * 2).astype(np.int64)

    def _patch_factor(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        """Localized slowdown reproducing the paper's "abnormal areas"."""
        if self.patch_probability == 0:
            return 1.0
        # Problems are grouped into coarse log-scale cells; a hash decides
        # whether the cell is pathological and, if so, which thread band the
        # pathology affects.
        cell = tuple(int(np.log2(max(v, 1)) * 2) for v in dims.values())
        draw = self._fraction(_TAG_PATCH, routine, cell)
        if draw >= self.patch_probability:
            return 1.0
        band_center_frac = self._fraction(_TAG_PATCH_CENTER, routine, cell)
        band_center = 1 + band_center_frac * (self.platform.max_threads - 1)
        band_width = max(2.0, 0.12 * self.platform.max_threads)
        distance = abs(threads - band_center) / band_width
        if distance > 1.0:
            return 1.0
        return 1.0 + self.patch_strength * (1.0 - distance)

    def _patch_factor_batch(
        self,
        routine: str,
        dims: Dict[str, np.ndarray],
        threads: np.ndarray,
        n: int,
    ) -> np.ndarray:
        if self.patch_probability == 0:
            return np.ones(n)
        cell = [self._patch_cell(values) for values in dims.values()]
        draw = self._fraction_batch(_TAG_PATCH, routine, cell, n)
        band_center_frac = self._fraction_batch(_TAG_PATCH_CENTER, routine, cell, n)
        band_center = 1 + band_center_frac * (self.platform.max_threads - 1)
        band_width = max(2.0, 0.12 * self.platform.max_threads)
        distance = np.abs(threads - band_center) / band_width
        patched = (draw < self.patch_probability) & (distance <= 1.0)
        return np.where(
            patched, 1.0 + self.patch_strength * (1.0 - distance), 1.0
        )

    # -- timing API --------------------------------------------------------------
    def breakdown(self, routine: str, dims: Dict[str, int], threads: int) -> CostBreakdown:
        """Noisy per-component breakdown of one call (scalar reference path)."""
        prefix, base_name, spec = parse_routine(routine)
        dims = spec.dims_from_args(**dims)
        hook = self._timing_hook(base_name, spec)
        if hook is None:
            base = self.model.breakdown(routine, dims, threads)
        else:
            if threads < 1:
                raise ValueError("threads must be at least 1")
            if threads > self.platform.max_threads:
                raise ValueError(
                    f"threads={threads} exceeds the platform maximum "
                    f"({self.platform.max_threads})"
                )
            # Scalar path = batch of one, so hook-timed routines are
            # scalar/batch bit-identical by construction.
            dim_arrays = {
                name: np.asarray([dims[name]], dtype=np.int64)
                for name in spec.dim_names
            }
            threads_arr = np.asarray([threads], dtype=np.int64)
            total = np.asarray(
                hook(self.platform, prefix, dim_arrays, threads_arr),
                dtype=np.float64,
            )
            kernel, copy, sync, other = self._split_total(
                float(total.reshape(-1)[0])
            )
            base = CostBreakdown(kernel=kernel, copy=copy, sync=sync, other=other)
        factor = self._noise_factor(routine, dims, threads) * self._patch_factor(
            routine, dims, threads
        )
        self.n_evaluations += 1
        # Noise predominantly affects the overhead components; the FLOP work
        # itself is stable run-to-run.
        return CostBreakdown(
            kernel=base.kernel * (1.0 + 0.3 * (factor - 1.0)),
            copy=base.copy * factor,
            sync=base.sync * factor,
            other=base.other * factor,
        )

    def time(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        """Noisy total runtime (seconds) of one call."""
        return self.breakdown(routine, dims, threads).total

    def time_at_max_threads(self, routine: str, dims: Dict[str, int]) -> float:
        """Runtime using the platform's maximum thread count (the baseline)."""
        return self.time(routine, dims, self.platform.max_threads)

    # -- batch timing API ---------------------------------------------------------
    def breakdown_batch(
        self,
        routine: str,
        dims: Mapping[str, object] | Sequence[Dict[str, int]],
        threads,
    ) -> CostBreakdownBatch:
        """Noisy breakdowns of many calls in one vectorised pass.

        ``dims`` is a mapping of dimension-name to array (scalars broadcast)
        or a sequence of per-row dimension dicts; ``threads`` is a scalar or
        aligned array.  Row ``i`` is bit-identical to the scalar
        :meth:`breakdown` of the ``i``-th configuration.
        """
        prefix, base_name, spec = parse_routine(routine)
        dim_arrays, threads_arr, n = normalize_batch_inputs(
            spec, dims, threads, max_threads=self.platform.max_threads
        )
        hook = self._timing_hook(base_name, spec)
        if hook is None:
            base = self.model.breakdown_batch(routine, dim_arrays, threads_arr)
        else:
            total = np.asarray(
                hook(self.platform, prefix, dim_arrays, threads_arr),
                dtype=np.float64,
            )
            total = np.broadcast_to(total.reshape(-1), (n,))
            kernel, copy, sync, other = self._split_total(total)
            base = CostBreakdownBatch(
                kernel=kernel, copy=copy, sync=sync, other=other
            )
        factor = self._noise_factor_batch(
            routine, dim_arrays, threads_arr, n
        ) * self._patch_factor_batch(routine, dim_arrays, threads_arr, n)
        self.n_evaluations += n
        return CostBreakdownBatch(
            kernel=base.kernel * (1.0 + 0.3 * (factor - 1.0)),
            copy=base.copy * factor,
            sync=base.sync * factor,
            other=base.other * factor,
        )

    def time_batch(
        self,
        routine: str,
        dims: Mapping[str, object] | Sequence[Dict[str, int]],
        threads,
    ) -> np.ndarray:
        """Noisy total runtimes (seconds) of many calls in one array pass."""
        return self.breakdown_batch(routine, dims, threads).total

    def time_at_max_threads_batch(
        self, routine: str, dims: Mapping[str, object] | Sequence[Dict[str, int]]
    ) -> np.ndarray:
        """Max-thread baseline runtimes for a batch of problem shapes."""
        return self.time_batch(routine, dims, self.platform.max_threads)

    # -- sweeps -------------------------------------------------------------------
    def sweep_threads(
        self,
        routine: str,
        dims: Dict[str, int],
        thread_counts: Sequence[int] | None = None,
    ) -> ThreadSweep:
        """Time one problem at every candidate thread count (one batch call)."""
        if thread_counts is None:
            thread_counts = self.platform.candidate_thread_counts()
        thread_counts = np.asarray(list(thread_counts), dtype=int)
        if thread_counts.size == 0:
            raise ValueError("thread_counts must not be empty")
        _, _, spec = parse_routine(routine)
        dims = spec.dims_from_args(**dims)
        times = self.time_batch(routine, [dims], thread_counts)
        return ThreadSweep(
            routine=routine, dims=dict(dims), threads=thread_counts, times=times
        )

    def best_threads(
        self, routine: str, dims: Dict[str, int], thread_counts: Sequence[int] | None = None
    ) -> int:
        """Oracle-optimal thread count for one problem."""
        return self.sweep_threads(routine, dims, thread_counts).best_threads

    def best_time(
        self, routine: str, dims: Dict[str, int], thread_counts: Sequence[int] | None = None
    ) -> float:
        """Oracle-optimal runtime for one problem."""
        return self.sweep_threads(routine, dims, thread_counts).best_time

    def speedup_vs_max_threads(
        self, routine: str, dims: Dict[str, int], threads: int
    ) -> float:
        """Speedup of running with ``threads`` instead of the maximum count."""
        return self.time_at_max_threads(routine, dims) / self.time(routine, dims, threads)
