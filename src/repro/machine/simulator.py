"""Timing simulator: the "timing program" of the ADSALA installation workflow.

:class:`TimingSimulator` wraps the analytic :class:`~repro.machine.perfmodel.PerformanceModel`
with two effects observed in the paper's measured data:

* **multiplicative noise** — run-to-run variation of real timings, modelled
  as log-normal noise that is *deterministic* in (platform, routine, dims,
  threads, seed) so that experiments are reproducible;
* **abnormal patches** — the paper's heatmaps (Figs. 4-5) show localized
  regions where the optimal thread count differs drastically from the
  surrounding area (cache-set conflicts, alignment pathologies, ...).  The
  simulator reproduces them by hashing each problem shape into a small
  number of "patch cells" that receive an extra slowdown for a band of
  thread counts.

The simulator exposes the operations the ADSALA pipeline needs:
``time``/``breakdown`` for a single configuration, ``sweep_threads`` for the
full thread-count profile of one problem, and ``best_threads`` /
``best_time`` for the oracle optimum used in evaluation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.blas.api import parse_routine
from repro.machine.perfmodel import CostBreakdown, PerformanceModel
from repro.machine.topology import MachineTopology

__all__ = ["TimingSimulator", "ThreadSweep"]


@dataclass
class ThreadSweep:
    """Runtime of one problem across every candidate thread count."""

    routine: str
    dims: Dict[str, int]
    threads: np.ndarray
    times: np.ndarray

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.times))

    @property
    def best_threads(self) -> int:
        return int(self.threads[self.best_index])

    @property
    def best_time(self) -> float:
        return float(self.times[self.best_index])

    def time_at(self, threads: int) -> float:
        matches = np.flatnonzero(self.threads == threads)
        if matches.size == 0:
            raise KeyError(f"Thread count {threads} not in sweep")
        return float(self.times[matches[0]])


class TimingSimulator:
    """Deterministic, noisy timing source for one platform.

    Parameters
    ----------
    platform:
        Machine description (e.g. :data:`repro.machine.platforms.GADI`).
    seed:
        Base seed folded into every noise draw.
    noise_level:
        Sigma of the log-normal run-to-run noise (0 disables noise).
    patch_probability:
        Fraction of problem-shape cells that behave "abnormally".
    patch_strength:
        Maximum extra slowdown applied inside an abnormal patch.
    """

    def __init__(
        self,
        platform: MachineTopology,
        seed: int = 0,
        noise_level: float = 0.04,
        patch_probability: float = 0.06,
        patch_strength: float = 0.9,
    ):
        if noise_level < 0:
            raise ValueError("noise_level must be non-negative")
        if not 0.0 <= patch_probability < 1.0:
            raise ValueError("patch_probability must be in [0, 1)")
        self.platform = platform
        self.model = PerformanceModel(platform)
        self.seed = seed
        self.noise_level = noise_level
        self.patch_probability = patch_probability
        self.patch_strength = patch_strength
        self.n_evaluations = 0

    # -- deterministic pseudo-randomness ---------------------------------------
    def _hash_fraction(self, *parts) -> float:
        """Uniform-in-[0,1) value derived from a stable hash of ``parts``."""
        message = "|".join(str(p) for p in (self.platform.name, self.seed) + parts)
        digest = hashlib.blake2b(message.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little") / 2 ** 64

    def _noise_factor(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        if self.noise_level == 0:
            return 1.0
        u1 = self._hash_fraction("noise1", routine, sorted(dims.items()), threads)
        u2 = self._hash_fraction("noise2", routine, sorted(dims.items()), threads)
        # Box-Muller transform -> standard normal -> log-normal factor.
        u1 = min(max(u1, 1e-12), 1 - 1e-12)
        gaussian = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return float(np.exp(self.noise_level * gaussian))

    def _patch_factor(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        """Localized slowdown reproducing the paper's "abnormal areas"."""
        if self.patch_probability == 0:
            return 1.0
        # Problems are grouped into coarse log-scale cells; a hash decides
        # whether the cell is pathological and, if so, which thread band the
        # pathology affects.
        cell = tuple(int(np.log2(max(v, 1)) * 2) for v in dims.values())
        draw = self._hash_fraction("patch", routine, cell)
        if draw >= self.patch_probability:
            return 1.0
        band_center_frac = self._hash_fraction("patch-center", routine, cell)
        band_center = 1 + band_center_frac * (self.platform.max_threads - 1)
        band_width = max(2.0, 0.12 * self.platform.max_threads)
        distance = abs(threads - band_center) / band_width
        if distance > 1.0:
            return 1.0
        return 1.0 + self.patch_strength * (1.0 - distance)

    # -- timing API --------------------------------------------------------------
    def breakdown(self, routine: str, dims: Dict[str, int], threads: int) -> CostBreakdown:
        """Noisy per-component breakdown of one call."""
        _, _, spec = parse_routine(routine)
        dims = spec.dims_from_args(**dims)
        base = self.model.breakdown(routine, dims, threads)
        factor = self._noise_factor(routine, dims, threads) * self._patch_factor(
            routine, dims, threads
        )
        self.n_evaluations += 1
        # Noise predominantly affects the overhead components; the FLOP work
        # itself is stable run-to-run.
        return CostBreakdown(
            kernel=base.kernel * (1.0 + 0.3 * (factor - 1.0)),
            copy=base.copy * factor,
            sync=base.sync * factor,
            other=base.other * factor,
        )

    def time(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        """Noisy total runtime (seconds) of one call."""
        return self.breakdown(routine, dims, threads).total

    def time_at_max_threads(self, routine: str, dims: Dict[str, int]) -> float:
        """Runtime using the platform's maximum thread count (the baseline)."""
        return self.time(routine, dims, self.platform.max_threads)

    # -- sweeps -------------------------------------------------------------------
    def sweep_threads(
        self,
        routine: str,
        dims: Dict[str, int],
        thread_counts: Sequence[int] | None = None,
    ) -> ThreadSweep:
        """Time one problem at every candidate thread count."""
        if thread_counts is None:
            thread_counts = self.platform.candidate_thread_counts()
        thread_counts = np.asarray(list(thread_counts), dtype=int)
        if thread_counts.size == 0:
            raise ValueError("thread_counts must not be empty")
        times = np.array(
            [self.time(routine, dims, int(t)) for t in thread_counts], dtype=float
        )
        return ThreadSweep(
            routine=routine, dims=dict(dims), threads=thread_counts, times=times
        )

    def best_threads(
        self, routine: str, dims: Dict[str, int], thread_counts: Sequence[int] | None = None
    ) -> int:
        """Oracle-optimal thread count for one problem."""
        return self.sweep_threads(routine, dims, thread_counts).best_threads

    def best_time(
        self, routine: str, dims: Dict[str, int], thread_counts: Sequence[int] | None = None
    ) -> float:
        """Oracle-optimal runtime for one problem."""
        return self.sweep_threads(routine, dims, thread_counts).best_time

    def speedup_vs_max_threads(
        self, routine: str, dims: Dict[str, int], threads: int
    ) -> float:
        """Speedup of running with ``threads`` instead of the maximum count."""
        return self.time_at_max_threads(routine, dims) / self.time(routine, dims, threads)
