"""Declarative description of a shared-memory multi-core machine.

The topology captures exactly the architectural quantities the paper's
Section V reports for its two experimentation platforms and that the
performance model needs: socket count, cores per socket, SMT level, NUMA
domains, last-level-cache organisation, memory channels and clock/FLOP
rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping

__all__ = [
    "MachineTopology",
    "RoutineEfficiency",
    "CALIBRATABLE_FIELDS",
    "apply_calibration",
]

#: Topology fields a runtime calibration may rescale.  These are the
#: continuous machine parameters that plausibly move between an install and
#: later serving (thermal/frequency policy, BIOS or firmware updates, memory
#: configuration, OS scheduler changes) — as opposed to structural facts
#: (socket/core counts, SMT level) whose change would make the old bundle
#: meaningless rather than merely mis-calibrated.
CALIBRATABLE_FIELDS = (
    "clock_ghz",
    "flops_per_cycle",
    "l3_cache_mb_per_group",
    "memory_bandwidth_gbs_per_socket",
    "copy_bandwidth_gbs_per_core",
    "sync_cost_per_thread",
    "fork_cost_per_thread",
    "cross_socket_sync_penalty",
)


def apply_calibration(
    platform: "MachineTopology", calibration: Mapping[str, float]
) -> "MachineTopology":
    """Rescale a platform's continuous parameters by per-field factors.

    ``calibration`` maps field names from :data:`CALIBRATABLE_FIELDS` to
    positive multiplicative scales (``{"clock_ghz": 0.8}`` models a machine
    running 20 % slower than when the bundle was installed).  The platform
    *name* is preserved, so seeded noise draws of a
    :class:`~repro.machine.simulator.TimingSimulator` stay aligned between
    the calibrated and uncalibrated machine — only the analytic cost model
    shifts.  An empty calibration returns the platform unchanged.
    """
    if not calibration:
        return platform
    updates: Dict[str, float] = {}
    for name, scale in calibration.items():
        if name not in CALIBRATABLE_FIELDS:
            raise ValueError(
                f"Unknown calibration field {name!r}; calibratable fields: "
                f"{CALIBRATABLE_FIELDS}"
            )
        scale = float(scale)
        if not scale > 0:
            raise ValueError(f"Calibration scale for {name!r} must be positive")
        updates[name] = getattr(platform, name) * scale
    return replace(platform, **updates)


@dataclass(frozen=True)
class RoutineEfficiency:
    """Per-routine tuning of the analytic cost model for one platform.

    These factors encode how well the *baseline* BLAS implementation (MKL on
    Gadi, BLIS on Setonix) handles each routine, which is what creates the
    routine- and platform-dependent optimal-thread patterns of the paper's
    Figs. 4-5.

    Attributes
    ----------
    kernel_efficiency:
        Fraction of peak FLOP rate the single-threaded kernel achieves on
        large, square problems (GEMM is the most optimised routine, so it has
        the highest value).
    smt_yield:
        Marginal throughput of a second hardware thread on an already-busy
        core, between 0 (SMT useless) and 1 (SMT doubles throughput).  The
        paper observes optimal thread counts *above* the physical core count
        for SYRK/TRMM/TRSM on Setonix and *below* it on Gadi — this is the
        knob that reproduces that contrast.
    sync_factor:
        Multiplier on the per-barrier synchronisation cost (poorly threaded
        routines synchronise more).
    copy_factor:
        Multiplier on the packing/copy traffic (symmetric/triangular packing
        moves more data per flop than GEMM packing).
    parallel_fraction:
        Fraction of the kernel work that actually parallelises (Amdahl);
        routines with triangular/symmetric structure have inherently serial
        panel factorisation portions.
    saturation_threads:
        Thread count beyond which the baseline implementation stops scaling
        (its partitioning / bandwidth use saturates).  ``inf`` means the
        routine scales to the full machine (GEMM).  The paper's heatmaps
        (Fig. 4) show that MKL SYMM on Gadi effectively stops benefiting
        from extra threads very early, which is where its large ADSALA
        speedups come from.
    oversaturation_penalty:
        Relative kernel slowdown per doubling of the thread count beyond
        ``saturation_threads`` (cache thrash / bandwidth contention).
    """

    kernel_efficiency: float = 0.80
    smt_yield: float = 0.25
    sync_factor: float = 1.0
    copy_factor: float = 1.0
    parallel_fraction: float = 0.99
    saturation_threads: float = float("inf")
    oversaturation_penalty: float = 0.0


@dataclass(frozen=True)
class MachineTopology:
    """A shared-memory compute node.

    Attributes mirror the paper's platform descriptions (Section V-A).
    """

    name: str
    vendor: str
    cpu_model: str
    sockets: int
    cores_per_socket: int
    smt: int
    numa_domains: int
    clock_ghz: float
    flops_per_cycle: float            # per core, FMA-vector width dependent
    l3_cache_mb_per_group: float
    cores_per_cache_group: int
    memory_channels_per_socket: int
    memory_bandwidth_gbs_per_socket: float
    memory_gb: float
    baseline_blas: str
    #: single-core copy bandwidth in GB/s (packing buffers are cache-friendly)
    copy_bandwidth_gbs_per_core: float = 12.0
    #: base cost (seconds) of one synchronisation/barrier episode per thread
    sync_cost_per_thread: float = 4.0e-7
    #: one-off cost (seconds) of waking a worker thread for a parallel region
    fork_cost_per_thread: float = 1.2e-6
    #: additional multiplier applied to barriers that cross the socket boundary
    cross_socket_sync_penalty: float = 1.6
    #: per-routine efficiency profile for the baseline BLAS on this machine
    routine_profiles: Dict[str, RoutineEfficiency] = field(default_factory=dict)

    # -- derived quantities --------------------------------------------------
    @property
    def physical_cores(self) -> int:
        """Total number of physical cores in the node."""
        return self.sockets * self.cores_per_socket

    @property
    def max_threads(self) -> int:
        """Maximum hardware threads (physical cores x SMT level).

        This is the paper's definition of the "maximum number of threads"
        baseline.
        """
        return self.physical_cores * self.smt

    @property
    def cores_per_numa(self) -> float:
        return self.physical_cores / self.numa_domains

    @property
    def total_memory_bandwidth_gbs(self) -> float:
        return self.sockets * self.memory_bandwidth_gbs_per_socket

    @property
    def peak_gflops_per_core(self) -> float:
        """Peak double-precision GFLOP/s of one core."""
        return self.clock_ghz * self.flops_per_cycle

    @property
    def peak_gflops(self) -> float:
        """Node peak double-precision GFLOP/s."""
        return self.peak_gflops_per_core * self.physical_cores

    def candidate_thread_counts(self) -> List[int]:
        """Admissible thread counts the ADSALA predictor ranks at runtime.

        Every integer between 1 and :attr:`max_threads` — the paper's
        predicted optima are arbitrary integers (5, 12, 25, 43, 46, ...), so
        the candidate set must not be restricted to "nice" divisors.
        """
        return list(range(1, self.max_threads + 1))

    def routine_profile(self, routine: str) -> RoutineEfficiency:
        """Efficiency profile for a BLAS routine (falls back to defaults)."""
        key = routine.lower()
        # Strip the precision prefix (dgemm -> gemm) if present.
        if key and key[0] in "sd" and key[1:] in self.routine_profiles:
            key = key[1:]
        return self.routine_profiles.get(key, RoutineEfficiency())

    def validate(self) -> None:
        """Sanity-check the topology; raises ``ValueError`` on inconsistency."""
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("sockets and cores_per_socket must be positive")
        if self.smt < 1:
            raise ValueError("smt level must be at least 1")
        if self.numa_domains < self.sockets:
            raise ValueError("numa_domains must be at least the socket count")
        if self.numa_domains % self.sockets != 0:
            raise ValueError("numa_domains must divide evenly across sockets")
        if self.physical_cores % self.numa_domains != 0:
            raise ValueError("cores must divide evenly across NUMA domains")
        if self.clock_ghz <= 0 or self.flops_per_cycle <= 0:
            raise ValueError("clock and flops_per_cycle must be positive")
        if self.memory_bandwidth_gbs_per_socket <= 0:
            raise ValueError("memory bandwidth must be positive")

    def describe(self) -> str:
        """Human-readable summary matching the paper's platform bullet lists."""
        lines = [
            f"{self.name}: {self.sockets}x {self.cpu_model} "
            f"({self.cores_per_socket} cores/socket, {self.clock_ghz} GHz)",
            f"  physical cores: {self.physical_cores}, SMT level {self.smt} "
            f"-> up to {self.max_threads} threads",
            f"  NUMA domains: {self.numa_domains} "
            f"({self.numa_domains // self.sockets} per socket)",
            f"  L3: {self.l3_cache_mb_per_group} MB per group of "
            f"{self.cores_per_cache_group} cores",
            f"  memory: {self.memory_gb} GB, "
            f"{self.memory_channels_per_socket} channels/socket, "
            f"{self.total_memory_bandwidth_gbs:.0f} GB/s aggregate",
            f"  baseline BLAS: {self.baseline_blas.upper()}",
        ]
        return "\n".join(lines)
