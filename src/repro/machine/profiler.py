"""Profiling records mirroring the paper's Table VIII measurements.

The paper profiles selected GEMM/SYMM/SYRK calls with Intel VTune/Advisor,
repeating each call 100 times, and reports the wall-clock decomposition into
total / thread-sync / kernel / data-copy time, with and without the ML
thread selection.  :func:`profile_call` produces the same rows from the
timing simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machine.simulator import TimingSimulator

__all__ = ["ProfileRecord", "profile_call"]


@dataclass(frozen=True)
class ProfileRecord:
    """One row of a Table VIII-style profile."""

    routine: str
    dims: Dict[str, int]
    threads: int
    repeats: int
    total_seconds: float
    sync_seconds: float
    kernel_seconds: float
    copy_seconds: float

    @property
    def other_seconds(self) -> float:
        return self.total_seconds - (
            self.sync_seconds + self.kernel_seconds + self.copy_seconds
        )

    def as_row(self) -> Dict[str, object]:
        """Row dict matching the Table VIII column layout."""
        dims_label = ",".join(str(v) for v in self.dims.values())
        return {
            "case": f"{self.routine} {dims_label}",
            "threads": self.threads,
            "total_s": round(self.total_seconds, 4),
            "thread_sync_s": round(self.sync_seconds, 4),
            "kernel_call_s": round(self.kernel_seconds, 4),
            "data_copy_s": round(self.copy_seconds, 4),
        }


def profile_call(
    simulator: TimingSimulator,
    routine: str,
    dims: Dict[str, int],
    threads: int,
    repeats: int = 100,
) -> ProfileRecord:
    """Profile ``repeats`` executions of one call at a fixed thread count."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    breakdown = simulator.breakdown(routine, dims, threads).scaled(repeats)
    return ProfileRecord(
        routine=routine,
        dims=dict(dims),
        threads=threads,
        repeats=repeats,
        total_seconds=breakdown.total,
        sync_seconds=breakdown.sync,
        kernel_seconds=breakdown.kernel,
        copy_seconds=breakdown.copy,
    )
