"""Hardware substrate: machine models and the timing simulator.

The paper gathers its training data by timing real MKL/BLIS executions on
two supercomputers (Setonix: 2x 64-core AMD EPYC Milan; Gadi: 2x 24-core
Intel Cascade Lake).  Neither machine — nor a vendor BLAS with a freely
settable thread count — is available in this reproduction environment, so
this subpackage provides:

* :mod:`repro.machine.topology` — a declarative machine description
  (sockets, NUMA domains, cores, SMT, caches, memory channels),
* :mod:`repro.machine.platforms` — presets for Setonix, Gadi and a small
  generic "laptop" machine used in tests,
* :mod:`repro.machine.perfmodel` — an analytic cost model decomposing a
  multi-threaded BLAS L3 call into data-copy, thread-synchronisation and
  kernel components (the same decomposition as the paper's Table VIII),
* :mod:`repro.machine.simulator` — :class:`TimingSimulator`, which adds
  reproducible noise and localized "abnormal patches" and acts as the
  timing program of the ADSALA installation workflow,
* :mod:`repro.machine.profiler` — profile records used to regenerate
  Table VIII.
"""

from repro.machine.topology import MachineTopology, RoutineEfficiency
from repro.machine.platforms import (
    get_platform,
    list_platforms,
    SETONIX,
    GADI,
    LAPTOP,
)
from repro.machine.perfmodel import PerformanceModel, CostBreakdown
from repro.machine.simulator import TimingSimulator
from repro.machine.profiler import ProfileRecord, profile_call

__all__ = [
    "MachineTopology",
    "RoutineEfficiency",
    "get_platform",
    "list_platforms",
    "SETONIX",
    "GADI",
    "LAPTOP",
    "PerformanceModel",
    "CostBreakdown",
    "TimingSimulator",
    "ProfileRecord",
    "profile_call",
]
