"""Analytic cost model for multi-threaded BLAS Level 3 calls.

The model decomposes the wall-clock time of one call into the same three
components the paper measures with VTune (Table VIII):

``total = kernel + copy + sync (+ other)``

* **kernel** — floating-point work, limited by per-core peak throughput,
  the achievable parallelism (how many output tiles exist), SMT yield,
  Amdahl's law and the memory-bandwidth roofline;
* **copy** — packing of operand panels into per-thread buffers, limited by
  copy bandwidth that saturates with the memory channels and grows with the
  number of pack buffers;
* **sync** — fork/join and barrier costs that grow super-linearly with the
  thread count and pay an extra penalty once threads span both sockets;
* **other** — small per-call bookkeeping (dispatch, page faults).

Every coefficient is taken from the :class:`~repro.machine.topology.MachineTopology`
and its per-routine :class:`~repro.machine.topology.RoutineEfficiency`
profile, so the same code models both Setonix and Gadi.

The model is *not* meant to predict absolute runtimes of the real machines;
it is meant to reproduce the qualitative structure that makes ADSALA's
thread-count prediction worthwhile: non-monotone runtime in the thread
count, overhead-dominated small/skinny problems and compute-dominated large
problems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.blas.api import RoutineSpec, parse_routine, precision_bytes
from repro.machine.topology import MachineTopology
from repro.routines.spec import tiling_schema

__all__ = [
    "CostBreakdown",
    "CostBreakdownBatch",
    "PerformanceModel",
    "normalize_batch_inputs",
    "MODEL_TILE",
    "MODEL_KC",
]


#: Output-tile edge used to estimate the available task parallelism.
MODEL_TILE = 128
#: k-panel depth used to estimate the number of synchronisation episodes.
MODEL_KC = 256


def _pow065(x):
    """``x ** 0.65`` through the NumPy ufunc for scalars and arrays alike.

    NumPy's vectorised ``power`` loop and libm's ``pow`` can disagree by one
    ulp; routing the scalar path through the same ufunc keeps the scalar and
    batch cost models bit-identical.
    """
    return np.power(np.asarray(x, dtype=np.float64), 0.65)


@dataclass(frozen=True)
class CostBreakdown:
    """Per-component wall-clock times (seconds) of one simulated call."""

    kernel: float
    copy: float
    sync: float
    other: float

    @property
    def total(self) -> float:
        return self.kernel + self.copy + self.sync + self.other

    def scaled(self, factor: float) -> "CostBreakdown":
        """Return a breakdown with every component multiplied by ``factor``."""
        return CostBreakdown(
            kernel=self.kernel * factor,
            copy=self.copy * factor,
            sync=self.sync * factor,
            other=self.other * factor,
        )


@dataclass(frozen=True)
class CostBreakdownBatch:
    """Vectorised counterpart of :class:`CostBreakdown`.

    Every component is a ``(n_rows,)`` float array; row ``i`` holds the same
    values the scalar :meth:`PerformanceModel.breakdown` /
    :meth:`repro.machine.simulator.TimingSimulator.breakdown` call would
    produce for the ``i``-th (dims, threads) configuration.
    """

    kernel: np.ndarray
    copy: np.ndarray
    sync: np.ndarray
    other: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.kernel + self.copy + self.sync + self.other

    def __len__(self) -> int:
        return self.kernel.shape[0]

    def row(self, i: int) -> CostBreakdown:
        """The scalar breakdown of one row."""
        return CostBreakdown(
            kernel=float(self.kernel[i]),
            copy=float(self.copy[i]),
            sync=float(self.sync[i]),
            other=float(self.other[i]),
        )


def normalize_batch_inputs(
    spec: RoutineSpec,
    dims: Mapping[str, object] | Sequence[Dict[str, int]],
    threads,
    max_threads: int | None = None,
) -> Tuple[Dict[str, np.ndarray], np.ndarray, int]:
    """Validate and broadcast batch timing inputs to aligned int64 arrays.

    ``dims`` is either a mapping ``{dim_name: array_like}`` (scalars are
    broadcast) or a sequence of per-row dimension dicts; ``threads`` is a
    scalar or a 1-D array.  Every array must have length 1 (broadcast) or the
    common batch length.  Returns ``(dim_arrays, threads_array, n_rows)``.
    """
    if isinstance(dims, Mapping):
        missing = [d for d in spec.dim_names if d not in dims]
        if missing:
            raise ValueError(f"{spec.name} missing dimensions: {missing}")
        extra = [d for d in dims if d not in spec.dim_names]
        if extra:
            raise ValueError(f"{spec.name} got unexpected dimensions: {extra}")
        arrays = {
            name: np.atleast_1d(np.asarray(dims[name], dtype=np.int64))
            for name in spec.dim_names
        }
    else:
        rows = [spec.dims_from_args(**row) for row in dims]
        if not rows:
            raise ValueError("dims must not be empty")
        arrays = {
            name: np.asarray([row[name] for row in rows], dtype=np.int64)
            for name in spec.dim_names
        }
    threads_arr = np.atleast_1d(np.asarray(threads, dtype=np.int64))

    lengths = {a.shape[0] for a in arrays.values()} | {threads_arr.shape[0]}
    lengths.discard(1)
    if len(lengths) > 1:
        raise ValueError(f"Mismatched batch lengths: {sorted(lengths)}")
    n = lengths.pop() if lengths else 1

    def _broadcast(a: np.ndarray) -> np.ndarray:
        if a.ndim != 1:
            raise ValueError("batch inputs must be scalars or 1-D arrays")
        return np.broadcast_to(a, (n,)) if a.shape[0] == 1 and n > 1 else a

    arrays = {name: _broadcast(a) for name, a in arrays.items()}
    threads_arr = _broadcast(threads_arr)

    for name, a in arrays.items():
        if np.any(a < 1):
            raise ValueError(f"Dimension {name} must be positive")
    if np.any(threads_arr < 1):
        raise ValueError("threads must be at least 1")
    if max_threads is not None and np.any(threads_arr > max_threads):
        raise ValueError(
            f"threads exceed the platform maximum ({max_threads})"
        )
    return arrays, threads_arr, n


class PerformanceModel:
    """Analytic copy/sync/kernel model for one machine."""

    def __init__(self, platform: MachineTopology):
        platform.validate()
        self.platform = platform

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _output_grid(spec: RoutineSpec, dims: Dict[str, int]) -> float:
        """Number of independent output tiles the routine exposes.

        Derived from the spec's operand table via
        :func:`repro.routines.spec.tiling_schema`: the product of tile
        counts over the output dimensions, or the triangular count when the
        output is a symmetric square (SYRK/SYR2K).
        """
        tile_dims, triangular, _ = tiling_schema(spec)
        if triangular:
            n_tiles = math.ceil(dims[tile_dims[0]] / MODEL_TILE)
            return float(n_tiles * (n_tiles + 1) / 2)
        tiles = math.ceil(dims[tile_dims[0]] / MODEL_TILE)
        for name in tile_dims[1:]:
            tiles = tiles * math.ceil(dims[name] / MODEL_TILE)
        return float(tiles)

    @staticmethod
    def _panel_depth(spec: RoutineSpec, dims: Dict[str, int]) -> int:
        """Length of the accumulation dimension (drives barrier count)."""
        _, _, panel_dim = tiling_schema(spec)
        return dims[panel_dim]

    def _spans_sockets(self, threads: int) -> bool:
        per_socket_threads = self.platform.cores_per_socket * self.platform.smt
        return threads > per_socket_threads

    # -- components -------------------------------------------------------------
    def kernel_time(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        prefix, base, spec = parse_routine(routine)
        profile = self.platform.routine_profile(base)
        flops = float(spec.flops(dims))
        itemsize = precision_bytes(prefix)

        peak_per_core = self.platform.peak_gflops_per_core * 1e9
        if prefix == "s":
            peak_per_core *= 2.0  # twice the SIMD lanes in single precision
        rate_per_core = peak_per_core * profile.kernel_efficiency

        physical = self.platform.physical_cores
        busy_cores = min(threads, physical)
        smt_extra = max(0, threads - physical)
        core_capacity = busy_cores + profile.smt_yield * smt_extra

        # Parallelism actually available in the tiled algorithm.
        max_tasks = self._output_grid(spec, dims)
        workers = min(core_capacity, max_tasks)

        # Baseline-library scaling saturation: beyond `saturation_threads`
        # the implementation's partitioning stops improving and extra
        # threads only add contention.
        saturation = profile.saturation_threads
        saturation_penalty = 1.0
        if threads > saturation:
            workers = min(workers, saturation + 0.3 * (workers - saturation))
            saturation_penalty = 1.0 + profile.oversaturation_penalty * math.log2(
                threads / saturation
            )

        # Load imbalance: tasks are executed in waves of `min(threads, tasks)`.
        concurrent = max(1, min(threads, int(max_tasks)))
        waves = math.ceil(max_tasks / concurrent)
        imbalance = waves * concurrent / max_tasks if max_tasks > 0 else 1.0

        # Cache pressure: once the per-task panel working set exceeds the L3
        # slice shared by a cache group, the effective rate drops.
        panel_words = MODEL_TILE * self._panel_depth(spec, dims)
        l3_words = (
            self.platform.l3_cache_mb_per_group
            * 1e6
            / itemsize
            / max(1, self.platform.cores_per_cache_group)
        )
        cache_penalty = 1.15 if panel_words > l3_words else 1.0

        serial_fraction = 1.0 - profile.parallel_fraction
        serial_time = flops * serial_fraction / rate_per_core
        parallel_time = (
            flops
            * profile.parallel_fraction
            / (rate_per_core * max(workers, 1e-9))
            * imbalance
            * cache_penalty
            * saturation_penalty
        )

        # Roofline: kernel streaming traffic cannot exceed memory bandwidth.
        bytes_streamed = float(spec.memory_words(dims)) * itemsize
        bandwidth = self._aggregate_bandwidth(threads)
        bandwidth_time = bytes_streamed / bandwidth

        return serial_time + max(parallel_time, bandwidth_time)

    def _aggregate_bandwidth(self, threads: int) -> float:
        """Memory bandwidth (bytes/s) reachable by ``threads`` active threads."""
        physical = min(threads, self.platform.physical_cores)
        per_core = self.platform.copy_bandwidth_gbs_per_core * 1e9
        cap = self.platform.total_memory_bandwidth_gbs * 1e9 * 0.85
        return min(physical * per_core, cap)

    def copy_time(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        prefix, base, spec = parse_routine(routine)
        profile = self.platform.routine_profile(base)
        itemsize = precision_bytes(prefix)
        bytes_moved = float(spec.memory_words(dims)) * itemsize

        # Shared streaming of the operands into pack buffers.
        stream_time = bytes_moved / self._aggregate_bandwidth(threads)

        # Per-thread pack-buffer population: every worker allocates and
        # first-touches its own pack buffer (capped at a few MB).  The
        # aggregate copy cost grows sub-linearly with the thread count
        # (buffers are filled concurrently but contend for bandwidth and
        # remote NUMA pages) — this is the "Data Copy" component of the
        # paper's Table VIII, which shrinks by ~2x when the ML-selected
        # thread count replaces the maximum.
        buffer_bytes = min(bytes_moved, 4.0e6)
        per_core_bw = self.platform.copy_bandwidth_gbs_per_core * 1e9
        replication = 0.15 * math.sqrt(threads) + 0.1 * math.log2(threads + 1)
        pack_time = buffer_bytes / per_core_bw * replication

        return profile.copy_factor * (stream_time + pack_time)

    def sync_time(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        _, base, spec = parse_routine(routine)
        profile = self.platform.routine_profile(base)

        # A BLAS call synchronises its worker team a handful of times (team
        # wake-up, per-panel barriers, final join); the count grows with the
        # accumulation depth but saturates — vendor BLAS fuses panels into a
        # single parallel region rather than re-synchronising per k-block.
        n_barriers = min(6.0, 1.0 + self._panel_depth(spec, dims) / (4.0 * MODEL_KC))
        socket_penalty = (
            self.platform.cross_socket_sync_penalty if self._spans_sockets(threads) else 1.0
        )
        # Barrier latency grows sub-linearly with the team size (tree
        # barriers / hierarchical wake-up), so oversubscribing never costs
        # the pathological factor-of-threads the naive model would predict —
        # real MKL/BLIS stay within a small factor of optimal even when the
        # thread count is far too high (paper Table VIII: 2-3x, not 50x).
        team_scale = float(_pow065(threads))
        barrier_cost = self.platform.sync_cost_per_thread * team_scale * socket_penalty

        # Oversubscription: threads beyond the available tile parallelism
        # spin at the barrier while the useful work finishes.
        max_tasks = self._output_grid(spec, dims)
        idle_threads = max(0.0, threads - max_tasks)
        oversubscription = (
            self.platform.sync_cost_per_thread
            * 3.0
            * float(_pow065(idle_threads))
            * socket_penalty
        )

        fork_cost = self.platform.fork_cost_per_thread * math.sqrt(threads)
        return profile.sync_factor * (
            n_barriers * barrier_cost + oversubscription + fork_cost
        )

    def other_time(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        prefix, _, spec = parse_routine(routine)
        itemsize = precision_bytes(prefix)
        bytes_moved = float(spec.memory_words(dims)) * itemsize
        # Library dispatch + first-touch page faults.  The constant floor is
        # paid regardless of the thread count, which is what keeps the
        # speedup on the very smallest problems bounded (paper Table VII:
        # maxima around 3-12x rather than orders of magnitude).
        return 6e-5 + 2e-6 * math.sqrt(threads) + bytes_moved / 80e9

    # -- vectorised batch path ---------------------------------------------------
    # The *_batch methods mirror their scalar counterparts operation for
    # operation (same association order, same libm calls) so that
    # ``breakdown_batch(...).row(i)`` reproduces ``breakdown(...)`` exactly;
    # the scalar methods above stay as the reference implementation and the
    # equivalence is asserted in tests/machine/test_batch_timing.py.
    @staticmethod
    def _output_grid_batch(spec: RoutineSpec, dims: Dict[str, np.ndarray]) -> np.ndarray:
        tile_dims, triangular, _ = tiling_schema(spec)
        if triangular:
            n_tiles = np.ceil(dims[tile_dims[0]] / MODEL_TILE)
            return n_tiles * (n_tiles + 1) / 2
        tiles = np.ceil(dims[tile_dims[0]] / MODEL_TILE)
        for name in tile_dims[1:]:
            tiles = tiles * np.ceil(dims[name] / MODEL_TILE)
        return tiles

    @staticmethod
    def _panel_depth_batch(spec: RoutineSpec, dims: Dict[str, np.ndarray]) -> np.ndarray:
        _, _, panel_dim = tiling_schema(spec)
        return dims[panel_dim]

    def _aggregate_bandwidth_batch(self, threads: np.ndarray) -> np.ndarray:
        physical = np.minimum(threads, self.platform.physical_cores)
        per_core = self.platform.copy_bandwidth_gbs_per_core * 1e9
        cap = self.platform.total_memory_bandwidth_gbs * 1e9 * 0.85
        return np.minimum(physical * per_core, cap)

    def kernel_time_batch(
        self, routine: str, dims: Dict[str, np.ndarray], threads: np.ndarray
    ) -> np.ndarray:
        prefix, base, spec = parse_routine(routine)
        profile = self.platform.routine_profile(base)
        flops = spec.flops(dims)
        itemsize = precision_bytes(prefix)

        peak_per_core = self.platform.peak_gflops_per_core * 1e9
        if prefix == "s":
            peak_per_core *= 2.0
        rate_per_core = peak_per_core * profile.kernel_efficiency

        physical = self.platform.physical_cores
        busy_cores = np.minimum(threads, physical)
        smt_extra = np.maximum(0, threads - physical)
        core_capacity = busy_cores + profile.smt_yield * smt_extra

        max_tasks = self._output_grid_batch(spec, dims)
        workers = np.minimum(core_capacity, max_tasks)

        saturation = profile.saturation_threads
        saturation_penalty = np.ones_like(workers)
        if math.isfinite(saturation):
            over = threads > saturation
            if np.any(over):
                capped = np.minimum(
                    workers, saturation + 0.3 * (workers - saturation)
                )
                workers = np.where(over, capped, workers)
                penalty = 1.0 + profile.oversaturation_penalty * np.log2(
                    threads / saturation
                )
                saturation_penalty = np.where(over, penalty, 1.0)

        concurrent = np.maximum(1, np.minimum(threads, max_tasks.astype(np.int64)))
        waves = np.ceil(max_tasks / concurrent)
        imbalance = np.where(max_tasks > 0, waves * concurrent / max_tasks, 1.0)

        panel_words = MODEL_TILE * self._panel_depth_batch(spec, dims)
        l3_words = (
            self.platform.l3_cache_mb_per_group
            * 1e6
            / itemsize
            / max(1, self.platform.cores_per_cache_group)
        )
        cache_penalty = np.where(panel_words > l3_words, 1.15, 1.0)

        serial_fraction = 1.0 - profile.parallel_fraction
        serial_time = flops * serial_fraction / rate_per_core
        parallel_time = (
            flops
            * profile.parallel_fraction
            / (rate_per_core * np.maximum(workers, 1e-9))
            * imbalance
            * cache_penalty
            * saturation_penalty
        )

        bytes_streamed = spec.memory_words(dims) * itemsize
        bandwidth = self._aggregate_bandwidth_batch(threads)
        bandwidth_time = bytes_streamed / bandwidth

        return serial_time + np.maximum(parallel_time, bandwidth_time)

    def copy_time_batch(
        self, routine: str, dims: Dict[str, np.ndarray], threads: np.ndarray
    ) -> np.ndarray:
        prefix, base, spec = parse_routine(routine)
        profile = self.platform.routine_profile(base)
        itemsize = precision_bytes(prefix)
        bytes_moved = spec.memory_words(dims) * itemsize

        stream_time = bytes_moved / self._aggregate_bandwidth_batch(threads)

        buffer_bytes = np.minimum(bytes_moved, 4.0e6)
        per_core_bw = self.platform.copy_bandwidth_gbs_per_core * 1e9
        replication = 0.15 * np.sqrt(threads) + 0.1 * np.log2(threads + 1)
        pack_time = buffer_bytes / per_core_bw * replication

        return profile.copy_factor * (stream_time + pack_time)

    def sync_time_batch(
        self, routine: str, dims: Dict[str, np.ndarray], threads: np.ndarray
    ) -> np.ndarray:
        _, base, spec = parse_routine(routine)
        profile = self.platform.routine_profile(base)

        n_barriers = np.minimum(
            6.0, 1.0 + self._panel_depth_batch(spec, dims) / (4.0 * MODEL_KC)
        )
        per_socket_threads = self.platform.cores_per_socket * self.platform.smt
        socket_penalty = np.where(
            threads > per_socket_threads,
            self.platform.cross_socket_sync_penalty,
            1.0,
        )
        team_scale = _pow065(threads)
        barrier_cost = self.platform.sync_cost_per_thread * team_scale * socket_penalty

        max_tasks = self._output_grid_batch(spec, dims)
        idle_threads = np.maximum(0.0, threads - max_tasks)
        oversubscription = (
            self.platform.sync_cost_per_thread
            * 3.0
            * _pow065(idle_threads)
            * socket_penalty
        )

        fork_cost = self.platform.fork_cost_per_thread * np.sqrt(threads)
        return profile.sync_factor * (
            n_barriers * barrier_cost + oversubscription + fork_cost
        )

    def other_time_batch(
        self, routine: str, dims: Dict[str, np.ndarray], threads: np.ndarray
    ) -> np.ndarray:
        prefix, _, spec = parse_routine(routine)
        itemsize = precision_bytes(prefix)
        bytes_moved = spec.memory_words(dims) * itemsize
        return 6e-5 + 2e-6 * np.sqrt(threads) + bytes_moved / 80e9

    def breakdown_batch(
        self,
        routine: str,
        dims: Mapping[str, object] | Sequence[Dict[str, int]],
        threads,
    ) -> CostBreakdownBatch:
        """Noise-free per-component costs of many calls in one array pass.

        ``dims``/``threads`` follow :func:`normalize_batch_inputs`: aligned
        arrays, with scalars broadcast over the batch.
        """
        _, _, spec = parse_routine(routine)
        dim_arrays, threads_arr, _ = normalize_batch_inputs(
            spec, dims, threads, max_threads=self.platform.max_threads
        )
        return CostBreakdownBatch(
            kernel=self.kernel_time_batch(routine, dim_arrays, threads_arr),
            copy=self.copy_time_batch(routine, dim_arrays, threads_arr),
            sync=self.sync_time_batch(routine, dim_arrays, threads_arr),
            other=self.other_time_batch(routine, dim_arrays, threads_arr),
        )

    def time_batch(
        self,
        routine: str,
        dims: Mapping[str, object] | Sequence[Dict[str, int]],
        threads,
    ) -> np.ndarray:
        """Noise-free total runtimes (seconds) of many calls."""
        return self.breakdown_batch(routine, dims, threads).total

    # -- public API ---------------------------------------------------------------
    def breakdown(self, routine: str, dims: Dict[str, int], threads: int) -> CostBreakdown:
        """Noise-free per-component cost of one call."""
        if threads < 1:
            raise ValueError("threads must be at least 1")
        if threads > self.platform.max_threads:
            raise ValueError(
                f"threads={threads} exceeds the platform maximum "
                f"({self.platform.max_threads})"
            )
        _, _, spec = parse_routine(routine)
        dims = spec.dims_from_args(**dims)
        return CostBreakdown(
            kernel=self.kernel_time(routine, dims, threads),
            copy=self.copy_time(routine, dims, threads),
            sync=self.sync_time(routine, dims, threads),
            other=self.other_time(routine, dims, threads),
        )

    def time(self, routine: str, dims: Dict[str, int], threads: int) -> float:
        """Noise-free total runtime of one call (seconds)."""
        return self.breakdown(routine, dims, threads).total
