"""Platform presets: Setonix, Gadi and a small generic test machine.

The numeric topology values come straight from the paper's Section V-A;
the per-routine efficiency profiles are calibrated so that the simulator
reproduces the qualitative optimal-thread and speedup patterns of the
paper's Figs. 4-7 and Tables VII-VIII:

* On **Setonix** (BLIS baseline) SYRK/TRMM/TRSM frequently prefer *more*
  threads than physical cores (SMT pays off), while SYMM scales poorly and
  shows the largest ADSALA speedups.
* On **Gadi** (MKL baseline) SYRK/SYR2K/TRMM prefer *fewer* threads than
  physical cores, GEMM is already well tuned (small speedups, especially in
  single precision), and SYMM again shows the largest speedups.
"""

from __future__ import annotations

from typing import Dict, List

from repro.machine.topology import MachineTopology, RoutineEfficiency

__all__ = ["SETONIX", "GADI", "LAPTOP", "get_platform", "list_platforms"]


SETONIX = MachineTopology(
    name="setonix",
    vendor="AMD",
    cpu_model="EPYC 7763 64-Core (Milan, Zen 3)",
    sockets=2,
    cores_per_socket=64,
    smt=2,
    numa_domains=8,
    clock_ghz=2.55,
    flops_per_cycle=16.0,                 # 2x 256-bit FMA per cycle (FP64)
    l3_cache_mb_per_group=32.0,
    cores_per_cache_group=8,
    memory_channels_per_socket=8,
    memory_bandwidth_gbs_per_socket=204.8,
    memory_gb=256.0,
    baseline_blas="blis",
    copy_bandwidth_gbs_per_core=10.0,
    sync_cost_per_thread=2.0e-6,
    fork_cost_per_thread=2.5e-6,
    cross_socket_sync_penalty=1.8,
    routine_profiles={
        # BLIS GEMM is well optimised; moderate SMT benefit.
        "gemm": RoutineEfficiency(
            kernel_efficiency=0.88,
            smt_yield=0.20,
            sync_factor=1.0,
            copy_factor=1.0,
            parallel_fraction=0.995,
            saturation_threads=192,
            oversaturation_penalty=0.06,
        ),
        # BLIS SYMM threads poorly: heavy packing of the symmetric operand
        # and frequent barriers -> the largest ADSALA speedups (Table VII).
        "symm": RoutineEfficiency(
            kernel_efficiency=0.62,
            smt_yield=0.15,
            sync_factor=3.2,
            copy_factor=2.4,
            parallel_fraction=0.96,
            saturation_threads=20,
            oversaturation_penalty=0.45,
        ),
        # SYRK/TRMM/TRSM on Setonix often want more threads than cores
        # (paper Fig. 4) -> relatively high SMT yield.
        "syrk": RoutineEfficiency(
            kernel_efficiency=0.74,
            smt_yield=0.55,
            sync_factor=1.5,
            copy_factor=1.3,
            parallel_fraction=0.99,
            saturation_threads=176,
            oversaturation_penalty=0.12,
        ),
        "syr2k": RoutineEfficiency(
            kernel_efficiency=0.72,
            smt_yield=0.35,
            sync_factor=1.6,
            copy_factor=1.5,
            parallel_fraction=0.99,
            saturation_threads=112,
            oversaturation_penalty=0.15,
        ),
        "trmm": RoutineEfficiency(
            kernel_efficiency=0.70,
            smt_yield=0.55,
            sync_factor=1.8,
            copy_factor=1.4,
            parallel_fraction=0.975,
            saturation_threads=160,
            oversaturation_penalty=0.15,
        ),
        "trsm": RoutineEfficiency(
            kernel_efficiency=0.68,
            smt_yield=0.50,
            sync_factor=2.0,
            copy_factor=1.4,
            parallel_fraction=0.965,
            saturation_threads=144,
            oversaturation_penalty=0.18,
        ),
    },
)


GADI = MachineTopology(
    name="gadi",
    vendor="Intel",
    cpu_model="Xeon Platinum 8274 24-Core (Cascade Lake)",
    sockets=2,
    cores_per_socket=24,
    smt=2,
    numa_domains=4,
    clock_ghz=3.2,
    flops_per_cycle=32.0,                 # 2x AVX-512 FMA per cycle (FP64)
    l3_cache_mb_per_group=35.75,
    cores_per_cache_group=24,
    memory_channels_per_socket=6,
    memory_bandwidth_gbs_per_socket=140.8,
    memory_gb=192.0,
    baseline_blas="mkl",
    copy_bandwidth_gbs_per_core=14.0,
    sync_cost_per_thread=2.5e-6,
    fork_cost_per_thread=2.0e-6,
    cross_socket_sync_penalty=1.5,
    routine_profiles={
        # MKL GEMM is extremely well tuned: little room for ADSALA,
        # especially in single precision (paper Table VII: sgemm mean 1.07).
        "gemm": RoutineEfficiency(
            kernel_efficiency=0.92,
            smt_yield=0.10,
            sync_factor=0.9,
            copy_factor=0.9,
            parallel_fraction=0.997,
            saturation_threads=72,
            oversaturation_penalty=0.08,
        ),
        "symm": RoutineEfficiency(
            kernel_efficiency=0.60,
            smt_yield=0.08,
            sync_factor=3.0,
            copy_factor=2.6,
            parallel_fraction=0.955,
            saturation_threads=12,
            oversaturation_penalty=0.5,
        ),
        # On Gadi the optimum sits below the physical core count
        # (paper Fig. 4) -> SMT yield near zero, stronger bandwidth pressure.
        "syrk": RoutineEfficiency(
            kernel_efficiency=0.78,
            smt_yield=0.05,
            sync_factor=1.4,
            copy_factor=1.5,
            parallel_fraction=0.985,
            saturation_threads=40,
            oversaturation_penalty=0.25,
        ),
        "syr2k": RoutineEfficiency(
            kernel_efficiency=0.76,
            smt_yield=0.05,
            sync_factor=1.5,
            copy_factor=1.7,
            parallel_fraction=0.985,
            saturation_threads=40,
            oversaturation_penalty=0.25,
        ),
        "trmm": RoutineEfficiency(
            kernel_efficiency=0.72,
            smt_yield=0.06,
            sync_factor=1.6,
            copy_factor=1.3,
            parallel_fraction=0.97,
            saturation_threads=36,
            oversaturation_penalty=0.28,
        ),
        "trsm": RoutineEfficiency(
            kernel_efficiency=0.70,
            smt_yield=0.10,
            sync_factor=1.7,
            copy_factor=1.3,
            parallel_fraction=0.96,
            saturation_threads=32,
            oversaturation_penalty=0.3,
        ),
    },
)


#: A small 8-core machine used by the test-suite and the quickstart example
#: so that full install->predict cycles finish in seconds.
LAPTOP = MachineTopology(
    name="laptop",
    vendor="Generic",
    cpu_model="Generic 8-Core",
    sockets=1,
    cores_per_socket=8,
    smt=2,
    numa_domains=1,
    clock_ghz=3.0,
    flops_per_cycle=16.0,
    l3_cache_mb_per_group=16.0,
    cores_per_cache_group=8,
    memory_channels_per_socket=2,
    memory_bandwidth_gbs_per_socket=40.0,
    memory_gb=32.0,
    baseline_blas="openblas",
    sync_cost_per_thread=1.5e-6,
    fork_cost_per_thread=1.5e-6,
    cross_socket_sync_penalty=1.0,
    routine_profiles={
        "gemm": RoutineEfficiency(kernel_efficiency=0.85, smt_yield=0.2),
        "symm": RoutineEfficiency(
            kernel_efficiency=0.6,
            smt_yield=0.1,
            sync_factor=2.5,
            copy_factor=2.0,
            saturation_threads=5,
            oversaturation_penalty=0.3,
        ),
        "syrk": RoutineEfficiency(
            kernel_efficiency=0.75, smt_yield=0.3, sync_factor=1.4,
            saturation_threads=10, oversaturation_penalty=0.15,
        ),
        "syr2k": RoutineEfficiency(
            kernel_efficiency=0.73, smt_yield=0.25, sync_factor=1.5,
            saturation_threads=10, oversaturation_penalty=0.15,
        ),
        "trmm": RoutineEfficiency(
            kernel_efficiency=0.7, smt_yield=0.3, sync_factor=1.6,
            saturation_threads=9, oversaturation_penalty=0.18,
        ),
        "trsm": RoutineEfficiency(
            kernel_efficiency=0.68, smt_yield=0.3, sync_factor=1.8,
            saturation_threads=8, oversaturation_penalty=0.2,
        ),
    },
)


_REGISTRY: Dict[str, MachineTopology] = {
    "setonix": SETONIX,
    "gadi": GADI,
    "laptop": LAPTOP,
}


def get_platform(name: str) -> MachineTopology:
    """Look up a platform preset by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"Unknown platform {name!r}; available: {sorted(_REGISTRY)}"
        )
    platform = _REGISTRY[key]
    platform.validate()
    return platform


def list_platforms() -> List[str]:
    """Names of all registered platform presets."""
    return sorted(_REGISTRY)
