"""Yeo-Johnson power transformation with maximum-likelihood λ estimation.

The Yeo-Johnson transform (paper Section II-C) generalises Box-Cox to
non-positive values and is fitted per feature by maximising the Gaussian
log-likelihood of the transformed values over λ.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = [
    "yeo_johnson_transform",
    "yeo_johnson_transform_matrix",
    "yeo_johnson_inverse",
    "YeoJohnsonTransformer",
]


def yeo_johnson_transform(x: np.ndarray, lmbda: float) -> np.ndarray:
    """Apply the Yeo-Johnson transform with parameter ``lmbda`` elementwise."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0

    if abs(lmbda) > 1e-12:
        out[positive] = ((x[positive] + 1.0) ** lmbda - 1.0) / lmbda
    else:
        out[positive] = np.log1p(x[positive])

    if abs(lmbda - 2.0) > 1e-12:
        out[~positive] = -(((-x[~positive] + 1.0) ** (2.0 - lmbda)) - 1.0) / (2.0 - lmbda)
    else:
        out[~positive] = -np.log1p(-x[~positive])
    return out


def yeo_johnson_transform_matrix(X: np.ndarray, lambdas: np.ndarray) -> np.ndarray:
    """Apply per-column Yeo-Johnson transforms to a whole matrix at once.

    Vectorised equivalent of calling :func:`yeo_johnson_transform` column by
    column with ``lambdas[j]``: every element goes through the exact same
    scalar operations, so the result is bit-identical to the column loop.
    This is the transform used by the compiled prediction hot path
    (:mod:`repro.core.compiled`), where the per-column Python loop would
    dominate the µs-scale latency budget.
    """
    X = np.asarray(X, dtype=np.float64)
    lambdas = np.asarray(lambdas, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != lambdas.shape[0]:
        raise ValueError(
            f"X must have shape (n, {lambdas.shape[0]}), got {X.shape}"
        )
    lam_row = lambdas[None, :]
    nonzero = np.abs(lambdas) > 1e-12
    not_two = np.abs(lambdas - 2.0) > 1e-12
    positive = X >= 0

    # Positive branch, evaluated on inputs clipped to the branch's domain so
    # the unused lane never produces invalid intermediates.
    Xp = np.where(positive, X, 0.0)
    lam_safe = np.where(nonzero, lam_row, 1.0)
    pos_out = np.where(
        nonzero[None, :],
        ((Xp + 1.0) ** lam_safe - 1.0) / lam_safe,
        np.log1p(Xp),
    )
    if bool(positive.all()):
        out = pos_out
    else:
        Xn = np.where(positive, 0.0, X)
        two_safe = np.where(not_two, 2.0 - lam_row, 1.0)
        neg_out = np.where(
            not_two[None, :],
            -(((-Xn + 1.0) ** two_safe) - 1.0) / two_safe,
            -np.log1p(-Xn),
        )
        out = np.where(positive, pos_out, neg_out)

    # NumPy's ``**`` takes exact fast paths for *scalar* exponents in
    # {-1, 0.5, 1, 2} (reciprocal/sqrt/copy/square) that the array-exponent
    # ufunc above does not, so those columns — λ itself, or 2-λ on the
    # negative branch — could drift by one ULP from the scalar column loop.
    # They are rare (MLE lambdas are continuous; constant columns pin λ=1),
    # so recompute just those columns through the scalar reference.
    special = (
        (lambdas == -1.0)
        | (lambdas == 0.5)
        | (lambdas == 1.0)
        | (lambdas == 2.0)
        | (lambdas == 0.0)
        | (lambdas == 1.5)
        | (lambdas == 3.0)
    )
    if special.any():
        for j in np.flatnonzero(special):
            out[:, j] = yeo_johnson_transform(X[:, j], lambdas[j])
    return out


def yeo_johnson_inverse(y: np.ndarray, lmbda: float) -> np.ndarray:
    """Inverse of :func:`yeo_johnson_transform`."""
    y = np.asarray(y, dtype=np.float64)
    out = np.empty_like(y)
    positive = y >= 0

    if abs(lmbda) > 1e-12:
        out[positive] = (y[positive] * lmbda + 1.0) ** (1.0 / lmbda) - 1.0
    else:
        out[positive] = np.expm1(y[positive])

    if abs(lmbda - 2.0) > 1e-12:
        out[~positive] = 1.0 - (1.0 - (2.0 - lmbda) * y[~positive]) ** (1.0 / (2.0 - lmbda))
    else:
        out[~positive] = -np.expm1(-y[~positive])
    return out


def _negative_log_likelihood(lmbda: float, x: np.ndarray) -> float:
    """Negative Gaussian log-likelihood of the transformed data."""
    transformed = yeo_johnson_transform(x, lmbda)
    n = x.shape[0]
    variance = transformed.var()
    if variance <= 0:
        return np.inf
    loglike = -0.5 * n * np.log(variance)
    # Jacobian term of the transform.
    loglike += (lmbda - 1.0) * np.sum(np.sign(x) * np.log1p(np.abs(x)))
    return -loglike


def estimate_lambda(x: np.ndarray, bracket: tuple[float, float] = (-3.0, 5.0)) -> float:
    """MLE estimate of λ for one feature (bounded scalar minimisation)."""
    x = np.asarray(x, dtype=np.float64)
    if np.allclose(x, x[0]):
        return 1.0
    result = optimize.minimize_scalar(
        _negative_log_likelihood,
        bounds=bracket,
        args=(x,),
        method="bounded",
        options={"xatol": 1e-5},
    )
    return float(result.x)


class YeoJohnsonTransformer:
    """Per-feature Yeo-Johnson transform fitted by maximum likelihood.

    Parameters
    ----------
    standardize:
        When true (default, as in the paper), the transformed features are
        additionally centred and scaled to unit variance.
    """

    def __init__(self, standardize: bool = True):
        self.standardize = standardize

    def fit(self, X: np.ndarray) -> "YeoJohnsonTransformer":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] < 2:
            raise ValueError("Need at least two samples to fit the transformer")
        self.lambdas_ = np.array(
            [estimate_lambda(X[:, j]) for j in range(X.shape[1])]
        )
        transformed = self._apply(X)
        if self.standardize:
            self.mean_ = transformed.mean(axis=0)
            self.scale_ = transformed.std(axis=0)
            self.scale_[self.scale_ == 0] = 1.0
        else:
            self.mean_ = np.zeros(X.shape[1])
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def _apply(self, X: np.ndarray) -> np.ndarray:
        transformed = np.empty_like(X, dtype=np.float64)
        for j, lmbda in enumerate(self.lambdas_):
            transformed[:, j] = yeo_johnson_transform(X[:, j], lmbda)
        return transformed

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "lambdas_"):
            raise RuntimeError("YeoJohnsonTransformer is not fitted yet")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_in_}), got {X.shape}"
            )
        return (self._apply(X) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Invert standardisation and the power transform."""
        if not hasattr(self, "lambdas_"):
            raise RuntimeError("YeoJohnsonTransformer is not fitted yet")
        X = np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_
        out = np.empty_like(X)
        for j, lmbda in enumerate(self.lambdas_):
            out[:, j] = yeo_johnson_inverse(X[:, j], lmbda)
        return out

    def flat_state(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fitted state as flat arrays ``(lambdas, shift, scale)``.

        The transform is then the two vectorised expressions
        ``(yeo_johnson_transform_matrix(X, lambdas) - shift) / scale`` —
        no per-column Python loop.  Used by the compiled prediction path.
        """
        if not hasattr(self, "lambdas_"):
            raise RuntimeError("YeoJohnsonTransformer is not fitted yet")
        return self.lambdas_, self.mean_, self.scale_

    # -- serialisation -------------------------------------------------------
    def to_config(self) -> dict:
        """Serialisable fitted state (used by the runtime config file)."""
        return {
            "standardize": self.standardize,
            "lambdas": self.lambdas_.tolist(),
            "mean": self.mean_.tolist(),
            "scale": self.scale_.tolist(),
        }

    @classmethod
    def from_config(cls, config: dict) -> "YeoJohnsonTransformer":
        transformer = cls(standardize=config["standardize"])
        transformer.lambdas_ = np.asarray(config["lambdas"], dtype=float)
        transformer.mean_ = np.asarray(config["mean"], dtype=float)
        transformer.scale_ = np.asarray(config["scale"], dtype=float)
        transformer.n_features_in_ = transformer.lambdas_.shape[0]
        return transformer
