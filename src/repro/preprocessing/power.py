"""Yeo-Johnson power transformation with maximum-likelihood λ estimation.

The Yeo-Johnson transform (paper Section II-C) generalises Box-Cox to
non-positive values and is fitted per feature by maximising the Gaussian
log-likelihood of the transformed values over λ.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["yeo_johnson_transform", "yeo_johnson_inverse", "YeoJohnsonTransformer"]


def yeo_johnson_transform(x: np.ndarray, lmbda: float) -> np.ndarray:
    """Apply the Yeo-Johnson transform with parameter ``lmbda`` elementwise."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0

    if abs(lmbda) > 1e-12:
        out[positive] = ((x[positive] + 1.0) ** lmbda - 1.0) / lmbda
    else:
        out[positive] = np.log1p(x[positive])

    if abs(lmbda - 2.0) > 1e-12:
        out[~positive] = -(((-x[~positive] + 1.0) ** (2.0 - lmbda)) - 1.0) / (2.0 - lmbda)
    else:
        out[~positive] = -np.log1p(-x[~positive])
    return out


def yeo_johnson_inverse(y: np.ndarray, lmbda: float) -> np.ndarray:
    """Inverse of :func:`yeo_johnson_transform`."""
    y = np.asarray(y, dtype=np.float64)
    out = np.empty_like(y)
    positive = y >= 0

    if abs(lmbda) > 1e-12:
        out[positive] = (y[positive] * lmbda + 1.0) ** (1.0 / lmbda) - 1.0
    else:
        out[positive] = np.expm1(y[positive])

    if abs(lmbda - 2.0) > 1e-12:
        out[~positive] = 1.0 - (1.0 - (2.0 - lmbda) * y[~positive]) ** (1.0 / (2.0 - lmbda))
    else:
        out[~positive] = -np.expm1(-y[~positive])
    return out


def _negative_log_likelihood(lmbda: float, x: np.ndarray) -> float:
    """Negative Gaussian log-likelihood of the transformed data."""
    transformed = yeo_johnson_transform(x, lmbda)
    n = x.shape[0]
    variance = transformed.var()
    if variance <= 0:
        return np.inf
    loglike = -0.5 * n * np.log(variance)
    # Jacobian term of the transform.
    loglike += (lmbda - 1.0) * np.sum(np.sign(x) * np.log1p(np.abs(x)))
    return -loglike


def estimate_lambda(x: np.ndarray, bracket: tuple[float, float] = (-3.0, 5.0)) -> float:
    """MLE estimate of λ for one feature (bounded scalar minimisation)."""
    x = np.asarray(x, dtype=np.float64)
    if np.allclose(x, x[0]):
        return 1.0
    result = optimize.minimize_scalar(
        _negative_log_likelihood,
        bounds=bracket,
        args=(x,),
        method="bounded",
        options={"xatol": 1e-5},
    )
    return float(result.x)


class YeoJohnsonTransformer:
    """Per-feature Yeo-Johnson transform fitted by maximum likelihood.

    Parameters
    ----------
    standardize:
        When true (default, as in the paper), the transformed features are
        additionally centred and scaled to unit variance.
    """

    def __init__(self, standardize: bool = True):
        self.standardize = standardize

    def fit(self, X: np.ndarray) -> "YeoJohnsonTransformer":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] < 2:
            raise ValueError("Need at least two samples to fit the transformer")
        self.lambdas_ = np.array(
            [estimate_lambda(X[:, j]) for j in range(X.shape[1])]
        )
        transformed = self._apply(X)
        if self.standardize:
            self.mean_ = transformed.mean(axis=0)
            self.scale_ = transformed.std(axis=0)
            self.scale_[self.scale_ == 0] = 1.0
        else:
            self.mean_ = np.zeros(X.shape[1])
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def _apply(self, X: np.ndarray) -> np.ndarray:
        transformed = np.empty_like(X, dtype=np.float64)
        for j, lmbda in enumerate(self.lambdas_):
            transformed[:, j] = yeo_johnson_transform(X[:, j], lmbda)
        return transformed

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "lambdas_"):
            raise RuntimeError("YeoJohnsonTransformer is not fitted yet")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_in_}), got {X.shape}"
            )
        return (self._apply(X) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Invert standardisation and the power transform."""
        if not hasattr(self, "lambdas_"):
            raise RuntimeError("YeoJohnsonTransformer is not fitted yet")
        X = np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_
        out = np.empty_like(X)
        for j, lmbda in enumerate(self.lambdas_):
            out[:, j] = yeo_johnson_inverse(X[:, j], lmbda)
        return out

    # -- serialisation -------------------------------------------------------
    def to_config(self) -> dict:
        """Serialisable fitted state (used by the runtime config file)."""
        return {
            "standardize": self.standardize,
            "lambdas": self.lambdas_.tolist(),
            "mean": self.mean_.tolist(),
            "scale": self.scale_.tolist(),
        }

    @classmethod
    def from_config(cls, config: dict) -> "YeoJohnsonTransformer":
        transformer = cls(standardize=config["standardize"])
        transformer.lambdas_ = np.asarray(config["lambdas"], dtype=float)
        transformer.mean_ = np.asarray(config["mean"], dtype=float)
        transformer.scale_ = np.asarray(config["scale"], dtype=float)
        transformer.n_features_in_ = transformer.lambdas_.shape[0]
        return transformer
