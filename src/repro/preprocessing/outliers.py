"""Local Outlier Factor (Breunig et al., 2000) for density-based outlier removal.

The paper removes local outliers from the gathered timing data before model
training (Section II-C).  This implementation follows the original LOF
definition: reachability distance → local reachability density → LOF score,
with outliers flagged by a contamination quantile or an absolute threshold.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LocalOutlierFactor"]


class LocalOutlierFactor:
    """Compute LOF scores and flag local outliers.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size (the ``k`` of k-distance).
    contamination:
        Expected fraction of outliers; used to set the score threshold when
        ``threshold`` is not given.
    threshold:
        Absolute LOF score above which a point is an outlier (overrides
        ``contamination`` when provided).
    """

    def __init__(
        self,
        n_neighbors: int = 20,
        contamination: float = 0.05,
        threshold: float | None = None,
    ):
        self.n_neighbors = n_neighbors
        self.contamination = contamination
        self.threshold = threshold

    def fit(self, X: np.ndarray) -> "LocalOutlierFactor":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        n_samples = X.shape[0]
        if n_samples < 3:
            raise ValueError("LOF needs at least three samples")
        if not 0.0 < self.contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        k = min(self.n_neighbors, n_samples - 1)

        # Pairwise Euclidean distances.
        sq = np.einsum("ij,ij->i", X, X)
        distances = np.sqrt(
            np.maximum(sq[:, None] - 2.0 * (X @ X.T) + sq[None, :], 0.0)
        )
        np.fill_diagonal(distances, np.inf)

        # k nearest neighbours of every point.
        neighbor_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
        neighbor_dist = np.take_along_axis(distances, neighbor_idx, axis=1)

        # k-distance of each point = distance to its k-th nearest neighbour.
        k_distance = np.max(neighbor_dist, axis=1)

        # Reachability distance of p w.r.t. o: max(k-distance(o), d(p, o)).
        reach = np.maximum(k_distance[neighbor_idx], neighbor_dist)
        lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-300)

        # LOF score: average ratio of neighbour densities to own density.
        lof = (lrd[neighbor_idx].mean(axis=1)) / lrd

        self.negative_outlier_factor_ = -lof
        self.lof_scores_ = lof
        if self.threshold is not None:
            cutoff = self.threshold
        else:
            cutoff = float(np.quantile(lof, 1.0 - self.contamination))
            cutoff = max(cutoff, 1.0 + 1e-9)
        self.cutoff_ = cutoff
        self.inlier_mask_ = lof <= cutoff
        return self

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Return +1 for inliers and -1 for outliers (scikit-learn convention)."""
        self.fit(X)
        return np.where(self.inlier_mask_, 1, -1)

    def filter(self, X: np.ndarray, *arrays: np.ndarray):
        """Fit on ``X`` and return ``X`` (and any aligned arrays) without outliers."""
        self.fit(X)
        filtered = [np.asarray(X)[self.inlier_mask_]]
        for array in arrays:
            array = np.asarray(array)
            if array.shape[0] != self.inlier_mask_.shape[0]:
                raise ValueError("Aligned array has mismatched length")
            filtered.append(array[self.inlier_mask_])
        if not arrays:
            return filtered[0]
        return tuple(filtered)
