"""Zero-mean / unit-variance feature standardisation."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Standardise features by removing the mean and scaling to unit variance.

    Constant features (zero variance) are centred but left unscaled so the
    transform never divides by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] == 0:
            raise ValueError("X must not be empty")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted yet")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_in_}), got {X.shape}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted yet")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_

    def flat_state(self) -> tuple[np.ndarray, np.ndarray]:
        """Fitted state as a fused affine ``(shift, scale)``.

        ``transform(X) == (X - shift) / scale`` elementwise; used by the
        compiled prediction path in place of the object transform.
        """
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted yet")
        return self.mean_, self.scale_

    def to_config(self) -> dict:
        return {
            "with_mean": self.with_mean,
            "with_std": self.with_std,
            "mean": self.mean_.tolist(),
            "scale": self.scale_.tolist(),
        }

    @classmethod
    def from_config(cls, config: dict) -> "StandardScaler":
        scaler = cls(with_mean=config["with_mean"], with_std=config["with_std"])
        scaler.mean_ = np.asarray(config["mean"], dtype=float)
        scaler.scale_ = np.asarray(config["scale"], dtype=float)
        scaler.n_features_in_ = scaler.mean_.shape[0]
        return scaler
