"""Composable preprocessing pipeline with a serialisable configuration.

This is the "Config File (For data preprocessing)" of the paper's Fig. 1:
everything the runtime library must re-apply to a fresh feature vector
(Yeo-Johnson λs, standardisation statistics, which features survived the
correlation filter) is captured in :class:`PreprocessingConfig` and can be
round-tripped through JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.preprocessing.correlation import CorrelationFilter
from repro.preprocessing.outliers import LocalOutlierFactor
from repro.preprocessing.power import YeoJohnsonTransformer, yeo_johnson_transform_matrix
from repro.preprocessing.scaler import StandardScaler

__all__ = ["PreprocessingPipeline", "PreprocessingConfig", "FusedTransform"]


@dataclass(frozen=True)
class FusedTransform:
    """A fitted pipeline collapsed into flat arrays over the *kept* columns.

    The object pipeline transforms every feature column in a Python loop and
    slices the survivors afterwards.  Both steps commute column-wise, so the
    fused form (a) restricts all state to the correlation filter's kept
    columns and (b) evaluates the whole transform as two vectorised
    expressions:

    1. ``T = yeo_johnson_transform_matrix(X_kept, lambdas)`` (skipped for
       plain-scaler pipelines),
    2. ``(T - shift) / scale``.

    Outputs are bit-identical to ``PreprocessingPipeline.transform`` on the
    same input.  ``kept_indices`` maps back into the full feature set;
    :meth:`transform_kept` is the hot-path entry for callers (the compiled
    predictor) that materialise only the kept feature columns up front.

    The native ``fused_transform`` kernel in :mod:`repro.ml._native`
    reproduces :meth:`transform_kept` bit-identically in C (verified by a
    probe at kernel load); :meth:`flat_arrays` exports the state it reads.
    """

    kept_indices: np.ndarray
    lambdas: np.ndarray | None
    shift: np.ndarray
    scale: np.ndarray

    @property
    def n_features_out(self) -> int:
        return int(self.kept_indices.shape[0])

    def transform_kept(self, X_kept: np.ndarray) -> np.ndarray:
        """Transform a matrix that already holds only the kept columns."""
        if self.lambdas is not None:
            X_kept = yeo_johnson_transform_matrix(X_kept, self.lambdas)
        return (X_kept - self.shift) / self.scale

    def flat_arrays(
        self,
    ) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
        """C-contiguous ``(lambdas, shift, scale)`` for the native kernel.

        The native ``fused_transform`` stage reads these through raw
        pointers; shared-memory mapped state can be non-owning views, so
        contiguity is re-asserted here (a no-op for the common case —
        ``PreprocessingPipeline.compile`` fancy-indexes, which copies).
        """
        lambdas = (
            None
            if self.lambdas is None
            else np.ascontiguousarray(self.lambdas, dtype=np.float64)
        )
        return (
            lambdas,
            np.ascontiguousarray(self.shift, dtype=np.float64),
            np.ascontiguousarray(self.scale, dtype=np.float64),
        )

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Transform a full-width feature matrix (selects kept columns first)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return self.transform_kept(X[:, self.kept_indices])

    # -- shared-memory export -----------------------------------------------
    def to_shared(self, registry) -> dict:
        """Export the flat transform state into ``registry`` segments."""
        return {
            "kept_indices": registry.export_array(self.kept_indices),
            "lambdas": None
            if self.lambdas is None
            else registry.export_array(self.lambdas),
            "shift": registry.export_array(self.shift),
            "scale": registry.export_array(self.scale),
        }

    @classmethod
    def from_shared(cls, state: dict, registry) -> "FusedTransform":
        """Rebuild a transform whose arrays view mapped segments."""
        return cls(
            kept_indices=registry.map_array(state["kept_indices"]),
            lambdas=None
            if state["lambdas"] is None
            else registry.map_array(state["lambdas"]),
            shift=registry.map_array(state["shift"]),
            scale=registry.map_array(state["scale"]),
        )


@dataclass
class PreprocessingConfig:
    """Serialisable description of a fitted preprocessing pipeline."""

    feature_names: List[str]
    use_yeo_johnson: bool
    correlation_threshold: float
    yeo_johnson: dict | None
    scaler: dict | None
    correlation: dict

    def to_dict(self) -> dict:
        return {
            "feature_names": list(self.feature_names),
            "use_yeo_johnson": self.use_yeo_johnson,
            "correlation_threshold": self.correlation_threshold,
            "yeo_johnson": self.yeo_johnson,
            "scaler": self.scaler,
            "correlation": self.correlation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PreprocessingConfig":
        return cls(
            feature_names=list(data["feature_names"]),
            use_yeo_johnson=data["use_yeo_johnson"],
            correlation_threshold=data["correlation_threshold"],
            yeo_johnson=data["yeo_johnson"],
            scaler=data["scaler"],
            correlation=data["correlation"],
        )


class PreprocessingPipeline:
    """Yeo-Johnson (+ standardisation) → correlation pruning, with LOF on fit.

    Parameters
    ----------
    use_yeo_johnson:
        Apply the power transform (paper default).  When false a plain
        :class:`StandardScaler` is used instead, which is the configuration
        exercised by the Yeo-Johnson ablation benchmark.
    correlation_threshold:
        |r| threshold for redundant-feature pruning (paper: 0.8).
    lof_neighbors / lof_contamination:
        Local Outlier Factor parameters used during ``fit`` to drop outlier
        *rows*; outlier removal never applies at predict time.
    feature_names:
        Optional names carried through to the fitted config.
    """

    def __init__(
        self,
        use_yeo_johnson: bool = True,
        correlation_threshold: float = 0.8,
        lof_neighbors: int = 20,
        lof_contamination: float = 0.05,
        remove_outliers: bool = True,
        feature_names: Sequence[str] | None = None,
    ):
        self.use_yeo_johnson = use_yeo_johnson
        self.correlation_threshold = correlation_threshold
        self.lof_neighbors = lof_neighbors
        self.lof_contamination = lof_contamination
        self.remove_outliers = remove_outliers
        self.feature_names = list(feature_names) if feature_names is not None else None

    # -- fitting -------------------------------------------------------------
    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None):
        """Fit the pipeline and return transformed ``X`` (and filtered ``y``).

        Outlier rows identified by LOF on the raw features are removed from
        both ``X`` and ``y`` before the transforms are fitted.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if y is not None:
            y = np.asarray(y, dtype=np.float64).ravel()
            if y.shape[0] != X.shape[0]:
                raise ValueError("X and y length mismatch")

        if self.feature_names is None:
            self.feature_names = [f"f{i}" for i in range(X.shape[1])]
        elif len(self.feature_names) != X.shape[1]:
            raise ValueError("feature_names length does not match X")

        if self.remove_outliers and X.shape[0] > max(10, self.lof_neighbors + 1):
            lof = LocalOutlierFactor(
                n_neighbors=self.lof_neighbors,
                contamination=self.lof_contamination,
            )
            lof.fit(X)
            mask = lof.inlier_mask_
            self.n_outliers_removed_ = int((~mask).sum())
            X = X[mask]
            if y is not None:
                y = y[mask]
        else:
            self.n_outliers_removed_ = 0

        if self.use_yeo_johnson:
            self._power = YeoJohnsonTransformer(standardize=True)
            transformed = self._power.fit_transform(X)
            self._scaler = None
        else:
            self._power = None
            self._scaler = StandardScaler()
            transformed = self._scaler.fit_transform(X)

        self._correlation = CorrelationFilter(threshold=self.correlation_threshold)
        transformed = self._correlation.fit_transform(transformed, self.feature_names)
        self.kept_feature_names_ = [
            self.feature_names[i] for i in self._correlation.kept_indices_
        ]
        self.n_features_out_ = transformed.shape[1]

        if y is None:
            return transformed
        return transformed, y

    # -- transform -----------------------------------------------------------
    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_correlation"):
            raise RuntimeError("PreprocessingPipeline is not fitted yet")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if self._power is not None:
            transformed = self._power.transform(X)
        else:
            transformed = self._scaler.transform(X)
        return self._correlation.transform(transformed)

    # -- compilation -----------------------------------------------------------
    def compile(self) -> FusedTransform:
        """Collapse the fitted pipeline into a :class:`FusedTransform`.

        The flat form holds per-kept-column Yeo-Johnson lambdas (or none for
        the plain-scaler configuration), the fused standardisation affine and
        the correlation keep-indices; its ``transform`` is bit-identical to
        the object path here.
        """
        if not hasattr(self, "_correlation"):
            raise RuntimeError("PreprocessingPipeline is not fitted yet")
        kept = self._correlation.keep_indices()
        if self._power is not None:
            lambdas, shift, scale = self._power.flat_state()
        else:
            lambdas = None
            shift, scale = self._scaler.flat_state()
        return FusedTransform(
            kept_indices=kept,
            lambdas=None if lambdas is None else lambdas[kept],
            shift=shift[kept],
            scale=scale[kept],
        )

    # -- serialisation ---------------------------------------------------------
    def to_config(self) -> PreprocessingConfig:
        if not hasattr(self, "_correlation"):
            raise RuntimeError("PreprocessingPipeline is not fitted yet")
        return PreprocessingConfig(
            feature_names=list(self.feature_names),
            use_yeo_johnson=self.use_yeo_johnson,
            correlation_threshold=self.correlation_threshold,
            yeo_johnson=self._power.to_config() if self._power is not None else None,
            scaler=self._scaler.to_config() if self._scaler is not None else None,
            correlation=self._correlation.to_config(),
        )

    @classmethod
    def from_config(cls, config: PreprocessingConfig | dict) -> "PreprocessingPipeline":
        if isinstance(config, dict):
            config = PreprocessingConfig.from_dict(config)
        pipeline = cls(
            use_yeo_johnson=config.use_yeo_johnson,
            correlation_threshold=config.correlation_threshold,
            feature_names=config.feature_names,
        )
        if config.yeo_johnson is not None:
            pipeline._power = YeoJohnsonTransformer.from_config(config.yeo_johnson)
            pipeline._scaler = None
        else:
            pipeline._power = None
            pipeline._scaler = StandardScaler.from_config(config.scaler)
        pipeline._correlation = CorrelationFilter.from_config(config.correlation)
        pipeline.kept_feature_names_ = [
            config.feature_names[i] for i in pipeline._correlation.kept_indices_
        ]
        pipeline.n_features_out_ = len(pipeline._correlation.kept_indices_)
        pipeline.n_outliers_removed_ = 0
        return pipeline
