"""Correlation-based redundant-feature pruning.

Paper Section IV-C: "we eliminate features that have correlation coefficients
with other features exceeding a threshold of 80 %...  For each correlated
feature pair, we remove the feature with the larger total correlation with
the other features."
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["CorrelationFilter"]


class CorrelationFilter:
    """Drop one member of every feature pair with |Pearson r| above a threshold.

    Parameters
    ----------
    threshold:
        Absolute correlation above which a pair is considered redundant
        (the paper uses 0.8).
    """

    def __init__(self, threshold: float = 0.8):
        self.threshold = threshold

    def fit(self, X: np.ndarray, feature_names: Sequence[str] | None = None) -> "CorrelationFilter":
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        n_features = X.shape[1]
        if feature_names is not None and len(feature_names) != n_features:
            raise ValueError("feature_names length does not match X")

        # Pearson correlation; constant columns correlate with nothing.
        std = X.std(axis=0)
        corr = np.zeros((n_features, n_features))
        varying = std > 0
        if varying.sum() >= 2:
            sub_corr = np.corrcoef(X[:, varying], rowvar=False)
            sub_corr = np.atleast_2d(sub_corr)
            idx = np.flatnonzero(varying)
            corr[np.ix_(idx, idx)] = sub_corr
        np.fill_diagonal(corr, 1.0)
        abs_corr = np.abs(corr)

        dropped: List[int] = []
        active = list(range(n_features))
        while True:
            # Highest-correlation pair among active features.
            best_pair = None
            best_value = self.threshold
            for i_pos, i in enumerate(active):
                for j in active[i_pos + 1 :]:
                    if abs_corr[i, j] > best_value:
                        best_value = abs_corr[i, j]
                        best_pair = (i, j)
            if best_pair is None:
                break
            i, j = best_pair
            # Drop the member with larger total correlation to the others.
            total_i = abs_corr[i, active].sum()
            total_j = abs_corr[j, active].sum()
            victim = i if total_i >= total_j else j
            dropped.append(victim)
            active.remove(victim)

        self.correlation_matrix_ = corr
        self.dropped_indices_ = sorted(dropped)
        self.kept_indices_ = sorted(active)
        self.n_features_in_ = n_features
        if feature_names is not None:
            self.kept_feature_names_ = [feature_names[i] for i in self.kept_indices_]
            self.dropped_feature_names_ = [feature_names[i] for i in self.dropped_indices_]
        else:
            self.kept_feature_names_ = None
            self.dropped_feature_names_ = None
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "kept_indices_"):
            raise RuntimeError("CorrelationFilter is not fitted yet")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must have shape (n, {self.n_features_in_}), got {X.shape}"
            )
        # Fancy indexing on axis 1 yields an F-ordered result; normalise to
        # C order so downstream BLAS calls (X @ coef, kernel matrices) take
        # the same code path as matrices built column-subset-first — keeps
        # the compiled prediction kernel bit-identical to this object path.
        return np.ascontiguousarray(X[:, self.kept_indices_])

    def fit_transform(self, X: np.ndarray, feature_names: Sequence[str] | None = None) -> np.ndarray:
        return self.fit(X, feature_names).transform(X)

    def keep_indices(self) -> np.ndarray:
        """Surviving feature columns as a sorted index array.

        The compiled prediction path uses this mask to build (and transform)
        only the kept columns in the first place, instead of materialising
        all features and slicing afterwards.
        """
        if not hasattr(self, "kept_indices_"):
            raise RuntimeError("CorrelationFilter is not fitted yet")
        return np.asarray(self.kept_indices_, dtype=np.intp)

    def keep_mask(self) -> np.ndarray:
        """Boolean mask over the input features (True = column survives)."""
        kept = self.keep_indices()
        mask = np.zeros(self.n_features_in_, dtype=bool)
        mask[kept] = True
        return mask

    def to_config(self) -> dict:
        return {
            "threshold": self.threshold,
            "kept_indices": list(self.kept_indices_),
            "n_features_in": self.n_features_in_,
            "kept_feature_names": self.kept_feature_names_,
        }

    @classmethod
    def from_config(cls, config: dict) -> "CorrelationFilter":
        instance = cls(threshold=config["threshold"])
        instance.kept_indices_ = list(config["kept_indices"])
        instance.n_features_in_ = config["n_features_in"]
        instance.kept_feature_names_ = config.get("kept_feature_names")
        instance.dropped_indices_ = [
            i for i in range(instance.n_features_in_) if i not in instance.kept_indices_
        ]
        return instance
