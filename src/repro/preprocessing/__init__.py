"""Data-preprocessing substrate for the ADSALA installation workflow.

Implements the preprocessing steps of the paper's Section II-C / IV-C:

* :class:`~repro.preprocessing.power.YeoJohnsonTransformer` — per-feature
  power transform with MLE-estimated λ (maps skewed features toward a
  Gaussian shape),
* :class:`~repro.preprocessing.scaler.StandardScaler` — zero-mean /
  unit-variance standardisation,
* :class:`~repro.preprocessing.outliers.LocalOutlierFactor` — density-based
  local-outlier removal,
* :class:`~repro.preprocessing.correlation.CorrelationFilter` — drops one
  feature of every pair whose |Pearson r| exceeds 0.8,
* :class:`~repro.preprocessing.pipeline.PreprocessingPipeline` — the
  composition of the above with a serialisable configuration, which becomes
  the "config file" the ADSALA runtime loads (paper Fig. 1).
"""

from repro.preprocessing.power import YeoJohnsonTransformer, yeo_johnson_transform
from repro.preprocessing.scaler import StandardScaler
from repro.preprocessing.outliers import LocalOutlierFactor
from repro.preprocessing.correlation import CorrelationFilter
from repro.preprocessing.pipeline import PreprocessingPipeline, PreprocessingConfig

__all__ = [
    "YeoJohnsonTransformer",
    "yeo_johnson_transform",
    "StandardScaler",
    "LocalOutlierFactor",
    "CorrelationFilter",
    "PreprocessingPipeline",
    "PreprocessingConfig",
]
