"""Online serving telemetry: error tracking, drift detection, counters.

The installer fits each routine's model once, offline; under real traffic
the hardware, library versions or workload mix can move away from the
training distribution.  The serving engine therefore records, per routine,
the *observed* runtime of executed calls against the *predicted* runtime of
the plan that scheduled them.  A rolling window of absolute relative errors
yields a drift statistic, and routines whose rolling error exceeds a
threshold are flagged as re-install candidates — the online counterpart of
the paper's offline model-selection criterion.

Everything here is plain bookkeeping with no locks of its own: the engine
drives it while holding its coarse engine lock, which serialises every
batch/plan/observation update (see :class:`~repro.serving.engine.ServingEngine`).
Do not mutate these objects from outside the owning engine's lock.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import BucketHistogram

__all__ = [
    "FaultTelemetry",
    "RollingStats",
    "ShapeHistogram",
    "TrafficRecord",
    "RoutineTelemetry",
    "EngineTelemetry",
]


class RollingStats:
    """Streaming mean/extrema over a bounded window of float samples.

    The windowed sum is maintained incrementally (subtract the evicted
    sample, add the new one), which is O(1) but accumulates floating-point
    rounding error without bound over a long stream.  Every ``window``
    evictions the sum is therefore recomputed exactly from the live window
    with compensated summation (:func:`math.fsum`) — amortised O(1) per
    sample — so ``mean`` stays within a few ULPs of the true window mean
    over arbitrarily many observations.
    """

    def __init__(self, window: int = 256):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = int(window)
        self._values: Deque[float] = deque(maxlen=self.window)
        self._sum = 0.0
        self._evictions_since_resync = 0
        self.n_total = 0

    def add(self, value: float) -> None:
        value = float(value)
        if len(self._values) == self.window:
            self._sum -= self._values[0]
            self._evictions_since_resync += 1
        self._values.append(value)
        self._sum += value
        self.n_total += 1
        if self._evictions_since_resync >= self.window:
            self._sum = math.fsum(self._values)
            self._evictions_since_resync = 0

    def __len__(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self._sum / len(self._values)

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def last(self) -> float:
        return self._values[-1] if self._values else 0.0

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the live window (0.0 when empty).

        Sorted linear interpolation, matching ``numpy.quantile``'s default
        method bit-for-bit on the same samples — the telemetry tests pin
        this.  O(n log n) per call, so callers take it at snapshot time,
        not per observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._values:
            return 0.0
        values = sorted(self._values)
        position = q * (len(values) - 1)
        lower = int(position)
        upper = min(lower + 1, len(values) - 1)
        fraction = position - lower
        return values[lower] + (values[upper] - values[lower]) * fraction

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": len(self._values),
            "total": self.n_total,
            "mean": self.mean,
            "max": self.max,
            "last": self.last,
        }


class ShapeHistogram:
    """Bounded frequency histogram of observed problem shapes for one routine.

    The adaptive re-gather seeds its timing campaign from the shapes real
    traffic actually asked for, instead of the static Halton training grid —
    so the retrained model is most accurate exactly where the workload
    lives.  Keys are canonical ``dims_key`` tuples (sorted ``(name, value)``
    pairs, the same form :class:`~repro.serving.engine.PlanRequest` carries);
    the map is LRU-bounded so an adversarial stream of unique shapes cannot
    grow it without limit (the evicted tail is the least recently *seen*
    shape, which under skewed real traffic is also the coldest).
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self._counts: "OrderedDict[tuple, int]" = OrderedDict()
        self.n_recorded = 0
        self.n_evicted = 0

    def __len__(self) -> int:
        return len(self._counts)

    def record(self, dims_key: tuple) -> None:
        count = self._counts.get(dims_key)
        if count is None:
            if len(self._counts) >= self.capacity:
                self._counts.popitem(last=False)
                self.n_evicted += 1
            self._counts[dims_key] = 1
        else:
            self._counts[dims_key] = count + 1
            self._counts.move_to_end(dims_key)
        self.n_recorded += 1

    def shapes(self) -> List[Dict[str, int]]:
        """Every tracked shape as a dims dict (insertion/recency order)."""
        return [dict(key) for key in self._counts]

    def top(self, n: int) -> List[Tuple[Dict[str, int], int]]:
        """The ``n`` most frequent shapes with their counts, hottest first."""
        ranked = sorted(self._counts.items(), key=lambda item: (-item[1], item[0]))
        return [(dict(key), count) for key, count in ranked[:n]]

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> List[Dict[str, int]]:
        """Draw ``n`` shapes (with replacement) weighted by observed frequency."""
        if n < 1:
            raise ValueError("n must be positive")
        if not self._counts:
            raise ValueError("cannot sample from an empty histogram")
        keys = list(self._counts)
        weights = np.fromiter(
            (self._counts[k] for k in keys), dtype=float, count=len(keys)
        )
        weights /= weights.sum()
        picks = rng.choice(len(keys), size=n, p=weights)
        return [dict(keys[int(i)]) for i in picks]

    def snapshot(self) -> Dict[str, object]:
        return {
            "distinct": len(self._counts),
            "recorded": self.n_recorded,
            "evicted": self.n_evicted,
            "top": [
                {"dims": dims, "count": count} for dims, count in self.top(5)
            ],
        }


@dataclass(frozen=True)
class TrafficRecord:
    """One executed call: the plan that scheduled it and its measured runtime.

    The bounded per-routine traffic log is what the shadow evaluator replays
    through a candidate model: the candidate's runtime prediction *at the
    executed thread count* is compared against the observed runtime, so no
    call is ever executed twice.
    """

    dims: Dict[str, int]
    threads: int
    predicted: float
    observed: float


class RoutineTelemetry:
    """Per-routine serving statistics.

    Tracks how many plans were produced (and by which fallback path), the
    rolling observed-vs-predicted error (each observation contributes
    ``|observed - predicted| / observed`` to a bounded window), the observed
    shape distribution (:class:`ShapeHistogram`) and a bounded traffic log
    of executed calls for shadow evaluation.
    """

    def __init__(self, routine: str, window: int = 256, shape_capacity: int = 512):
        self.routine = routine
        self.window = int(window)
        self.n_plans = 0
        self.n_cache_hits = 0
        self.n_fallback_plans = 0
        self.n_heuristic_plans = 0
        self.n_observations = 0
        self.n_invalid_observations = 0
        self.errors = RollingStats(window)
        self.shapes = ShapeHistogram(shape_capacity)
        self.traffic: Deque[TrafficRecord] = deque(maxlen=self.window)
        #: Per-plan share of the micro-batch planning pass, fixed buckets —
        #: the live p50/p99 plan-latency source for the metrics exporter.
        self.latency = BucketHistogram()

    def record_plan(
        self,
        from_cache: bool,
        fallback: bool,
        heuristic: bool,
        dims_key: tuple | None = None,
    ) -> None:
        self.n_plans += 1
        if from_cache:
            self.n_cache_hits += 1
        if fallback:
            self.n_fallback_plans += 1
        if heuristic:
            self.n_heuristic_plans += 1
        if dims_key is not None:
            self.shapes.record(dims_key)

    def record_latency(self, seconds: float) -> None:
        """Fold one plan's share of its batch's planning time into the
        latency histogram (engine lock held, like every mutator here)."""
        self.latency.observe(seconds)

    def record_observation(
        self,
        predicted: float,
        observed: float,
        dims: Optional[Dict[str, int]] = None,
        threads: Optional[int] = None,
    ) -> None:
        """Fold one executed call's measured runtime into the drift window."""
        if observed <= 0 or predicted < 0:
            self.n_invalid_observations += 1
            return
        self.n_observations += 1
        self.errors.add(abs(observed - predicted) / observed)
        if dims is not None and threads is not None:
            self.traffic.append(
                TrafficRecord(
                    dims=dict(dims),
                    threads=int(threads),
                    predicted=float(predicted),
                    observed=float(observed),
                )
            )

    def reset_window(self) -> None:
        """Forget the rolling error window and traffic log (not the counters).

        Called after a model promotion: errors measured against the replaced
        model would otherwise keep the drift flag lit (and poison the next
        shadow evaluation) long after the new model took over.  The shape
        histogram survives — the workload distribution is a property of the
        traffic, not of the model serving it.
        """
        self.errors = RollingStats(self.window)
        self.traffic.clear()

    @property
    def mean_abs_rel_error(self) -> float:
        return self.errors.mean

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this routine's plans answered from the LRU cache."""
        if self.n_plans == 0:
            return 0.0
        return self.n_cache_hits / self.n_plans

    def drifting(self, threshold: float, min_observations: int) -> bool:
        """True when the rolling error is trustworthy and above threshold."""
        return (
            len(self.errors) >= min_observations
            and self.errors.mean > threshold
        )

    def snapshot(self) -> Dict[str, object]:
        return {
            "routine": self.routine,
            "plans": self.n_plans,
            "cache_hits": self.n_cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "fallback_plans": self.n_fallback_plans,
            "heuristic_plans": self.n_heuristic_plans,
            "observations": self.n_observations,
            "invalid_observations": self.n_invalid_observations,
            "mean_abs_rel_error": self.mean_abs_rel_error,
            "p50_abs_rel_error": self.errors.quantile(0.5),
            "p99_abs_rel_error": self.errors.quantile(0.99),
            "max_abs_rel_error": self.errors.max,
            "latency": self.latency.snapshot(),
            "shapes": self.shapes.snapshot(),
            "traffic_records": len(self.traffic),
        }


class EngineTelemetry:
    """Aggregate serving statistics for one :class:`ServingEngine`.

    Parameters
    ----------
    drift_threshold:
        Rolling mean absolute relative error above which a routine is
        flagged as a re-install candidate.
    min_observations:
        Observations required in the window before the drift flag can fire
        (guards against flagging on a handful of noisy calls).
    window:
        Rolling window length for per-routine errors, traffic logs and
        batch sizes.
    shape_capacity:
        Bound on distinct shapes tracked per routine's
        :class:`ShapeHistogram`.
    """

    def __init__(
        self,
        drift_threshold: float = 0.25,
        min_observations: int = 20,
        window: int = 256,
        shape_capacity: int = 512,
    ):
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        self.drift_threshold = float(drift_threshold)
        self.min_observations = int(min_observations)
        self.window = int(window)
        self.shape_capacity = int(shape_capacity)
        self.n_requests = 0
        self.n_batches = 0
        self.batch_sizes = RollingStats(window)
        self.routines: "OrderedDict[str, RoutineTelemetry]" = OrderedDict()

    def _routine(self, routine: str) -> RoutineTelemetry:
        telemetry = self.routines.get(routine)
        if telemetry is None:
            telemetry = RoutineTelemetry(
                routine, window=self.window, shape_capacity=self.shape_capacity
            )
            self.routines[routine] = telemetry
        return telemetry

    def record_batch(self, size: int) -> None:
        self.n_batches += 1
        self.n_requests += size
        self.batch_sizes.add(size)

    def record_plan(
        self,
        routine: str,
        from_cache: bool,
        fallback: bool,
        heuristic: bool,
        dims_key: tuple | None = None,
    ) -> None:
        self._routine(routine).record_plan(
            from_cache, fallback, heuristic, dims_key=dims_key
        )

    def record_latency(self, routine: str, seconds: float) -> None:
        self._routine(routine).record_latency(seconds)

    def record_observation(
        self,
        routine: str,
        predicted: float,
        observed: float,
        dims: Optional[Dict[str, int]] = None,
        threads: Optional[int] = None,
    ) -> None:
        self._routine(routine).record_observation(
            predicted, observed, dims=dims, threads=threads
        )

    def reset_routine(self, routine: str) -> bool:
        """Reset one routine's drift window after its model was replaced."""
        telemetry = self.routines.get(routine)
        if telemetry is None:
            return False
        telemetry.reset_window()
        return True

    def reinstall_candidates(self) -> List[str]:
        """Routines whose rolling prediction error drifted past threshold."""
        return [
            routine
            for routine, telemetry in self.routines.items()
            if telemetry.drifting(self.drift_threshold, self.min_observations)
        ]

    def drift_report(self, routine: str) -> Optional[Dict[str, object]]:
        telemetry = self.routines.get(routine)
        return None if telemetry is None else telemetry.snapshot()

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serialisable summary of everything tracked."""
        return {
            "requests": self.n_requests,
            "batches": self.n_batches,
            "mean_batch_size": self.batch_sizes.mean,
            "max_batch_size": self.batch_sizes.max,
            "drift_threshold": self.drift_threshold,
            "reinstall_candidates": self.reinstall_candidates(),
            "routines": {
                routine: telemetry.snapshot()
                for routine, telemetry in self.routines.items()
            },
        }


class FaultTelemetry:
    """Supervision counters for one shard, owned by the shard supervisor.

    Like every other class here this carries no locks of its own — the
    :class:`~repro.serving.supervisor.ShardSupervisor` mutates it under its
    own lock.  ``recovery`` tracks the seconds from the first failure of an
    episode to the first healthy batch afterwards, over a bounded window,
    so the merged stats (and ``bench_fault_recovery``) can report
    time-to-recovery without unbounded growth.
    """

    def __init__(self, index: int, recovery_window: int = 64):
        self.index = int(index)
        self.n_failures = 0
        self.n_restarts = 0
        self.n_redispatched = 0
        self.n_rerouted = 0
        self.n_hangs = 0
        self.consecutive_failures = 0
        self.quarantined = False
        self.last_error: Optional[str] = None
        #: Monotonic instant the current failure episode started (None when healthy).
        self.failure_started: Optional[float] = None
        self.recovery = RollingStats(recovery_window)

    def snapshot(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "failures": self.n_failures,
            "restarts": self.n_restarts,
            "redispatched": self.n_redispatched,
            "rerouted": self.n_rerouted,
            "hangs": self.n_hangs,
            "consecutive_failures": self.consecutive_failures,
            "quarantined": self.quarantined,
            "last_error": self.last_error,
            "recovering": self.failure_started is not None,
            "recovery": self.recovery.snapshot(),
        }
