"""Deterministic, seeded fault injection for the sharded serving stack.

Chaos that cannot be replayed cannot be debugged.  The
:class:`FaultInjector` therefore draws its whole schedule up front from a
seeded RNG: given the same spec and seed, fault *k* always fires on the
*k*-th scheduled dispatch (a global batch counter incremented on every
shard dispatch), so a failing chaos run reproduces exactly.

Fault kinds (spec syntax ``"kind:count,kind:count"``):

* ``kill`` — SIGKILL a process shard's worker just before the batch is
  sent (the dispatch then fails with
  :class:`~repro.serving.procshard.WorkerDiedError`); on a thread shard,
  raise :class:`InjectedFault` instead (threads cannot be killed).
* ``hang`` — sleep ``hang_seconds`` inside the dispatch while the
  in-flight marker is set, so the supervisor's liveness monitor sees a
  stuck batch and runs its hung-worker recovery.
* ``corrupt`` — arm the process shard to truncate the next plans frame
  after it leaves the pipe
  (:class:`~repro.serving.procshard.FrameCorruptionError`, worker
  terminated for restart); :class:`InjectedFault` on a thread shard.
* ``shm`` — unlink the shard's shared-memory model segments, then kill
  the worker: the restart path must detect the dead segments and
  re-export the model state from the retained source.
* ``slow`` — sleep ``slow_seconds`` before the batch (degrades
  throughput; nothing to recover).

Worker-side fault config rides the spawn spec (``worker_faults=`` on
:func:`~repro.serving.procshard.export_source_spec`); the only knob today
is ``ignore_stop`` — a worker that ignores STOP frames and SIGTERM, used
by the ``close()`` terminate→kill escalation regression test.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, Optional, Union

import numpy as np

from repro.serving.shard import ShardBase, ShardFailure

__all__ = ["FAULT_KINDS", "FaultInjector", "InjectedFault", "parse_fault_spec"]

FAULT_KINDS = ("kill", "hang", "corrupt", "shm", "slow")


class InjectedFault(ShardFailure):
    """A deterministic chaos event standing in for a worker failure."""


def parse_fault_spec(spec: str) -> Dict[str, int]:
    """Parse ``"kill:3,hang:1"`` into ``{"kill": 3, "hang": 1}``."""
    counts: Dict[str, int] = {}
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        kind, _, count_text = part.partition(":")
        kind = kind.strip().lower()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(
                f"fault count for {kind!r} must be an integer, got {count_text!r}"
            ) from None
        if count < 0:
            raise ValueError(f"fault count for {kind!r} must be non-negative")
        counts[kind] = counts.get(kind, 0) + count
    if not counts:
        raise ValueError(f"empty fault spec {spec!r}")
    return counts


class FaultInjector:
    """Seeded chaos source shared by every shard of one frontend.

    The schedule maps global dispatch ordinals to fault kinds: ``total``
    events are placed on distinct ordinals drawn uniformly from
    ``[warmup, warmup + horizon)`` and the kind order is a seeded shuffle.
    Two runs with the same spec/seed/horizon fire the same kinds at the
    same dispatch ordinals — which shard each ordinal lands on depends on
    thread interleaving, but the *number and kind* of injected faults is
    exact, which is what the equivalence and recovery assertions need.
    """

    def __init__(
        self,
        spec: Union[str, Dict[str, int]],
        seed: int = 0,
        horizon: Optional[int] = None,
        warmup: int = 2,
        hang_seconds: float = 1.0,
        slow_seconds: float = 0.02,
    ):
        self.spec = parse_fault_spec(spec) if isinstance(spec, str) else {
            kind: int(count) for kind, count in spec.items()
        }
        for kind in self.spec:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
        self.seed = int(seed)
        self.warmup = max(0, int(warmup))
        total = sum(self.spec.values())
        self.horizon = max(int(horizon) if horizon is not None else 8 * total, total)
        self.hang_seconds = float(hang_seconds)
        self.slow_seconds = float(slow_seconds)
        rng = np.random.default_rng(self.seed)
        ordinals = rng.choice(self.horizon, size=total, replace=False) + self.warmup
        kinds = [kind for kind, count in sorted(self.spec.items()) for _ in range(count)]
        rng.shuffle(kinds)
        self._schedule: Dict[int, str] = {
            int(ordinal): kind for ordinal, kind in zip(sorted(ordinals), kinds)
        }
        self._lock = threading.Lock()
        self._dispatches = 0
        self.injected: Dict[str, int] = {kind: 0 for kind in self.spec}

    @property
    def remaining(self) -> int:
        with self._lock:
            return len(self._schedule)

    def schedule(self) -> Dict[int, str]:
        """The (remaining) ordinal → kind map; deterministic for a seed."""
        with self._lock:
            return dict(self._schedule)

    def before_batch(self, shard: ShardBase) -> None:
        """Shard dispatch hook: fire the fault scheduled for this ordinal."""
        with self._lock:
            ordinal = self._dispatches
            self._dispatches += 1
            kind = self._schedule.pop(ordinal, None)
            if kind is not None:
                self.injected[kind] = self.injected.get(kind, 0) + 1
        if kind is not None:
            self._apply(kind, shard)

    def _apply(self, kind: str, shard: ShardBase) -> None:
        if kind == "slow":
            time.sleep(self.slow_seconds)
            return
        if kind == "hang":
            # The in-flight marker is already set (before_batch runs inside
            # _dispatch), so the supervisor's monitor sees a stuck batch.
            time.sleep(self.hang_seconds)
            return
        if kind == "shm":
            self._unlink_segments(shard)
            # fall through: kill the worker so a fresh one must re-attach
        if shard.backend == "process":
            if kind == "corrupt":
                shard._corrupt_next_reply = True
                return
            pid = shard.worker_pid
            if pid is not None and pid != os.getpid():
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError, OSError):
                    pass
                return
            # No live worker to kill yet: simulate the death instead.
        raise InjectedFault(f"injected {kind} fault on shard {shard.index}")

    @staticmethod
    def _unlink_segments(shard: ShardBase) -> None:
        """Unlink the shard's shared model segments (simulating their death)."""
        export = getattr(shard, "_export", None)
        if export is None:
            return
        for name in export.registry.segment_names():
            try:
                segment = SharedMemory(name=name)
            except FileNotFoundError:
                continue
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - raced another unlink
                pass
            segment.close()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "spec": dict(self.spec),
                "injected": dict(self.injected),
                "remaining": len(self._schedule),
                "dispatches": self._dispatches,
            }
