"""One serving shard: an inbox drain worker in front of an engine runtime.

A shard owns an inbox of ``(request, future)`` pairs and a worker thread
that blocks on it, opportunistically coalesces whatever else is already
queued into one micro-batch (up to the shard's ``max_batch_size``) and
answers the batch through the shard's execution backend — so a burst of
concurrent submissions is amortised exactly like the single-engine queue
drain, while a lone request is answered immediately instead of waiting for
peers.

Two backends implement the interface:

* :class:`EngineShard` (here) runs a
  :class:`~repro.serving.engine.ServingEngine` in-process; batches execute
  on the drain thread under the engine's own lock.  N in-process shards
  scale on real cores because the whole evaluate span (feature fill →
  fused transform → stacked descent) runs as one GIL-free native call
  (:mod:`repro.ml._native`); only per-batch Python bookkeeping
  serialises.
* :class:`~repro.serving.procshard.ProcessShard` runs the engine in a
  worker *process*; batches cross a pipe as compact framed arrays and the
  compiled model state is mapped from shared memory.

The :class:`~repro.serving.frontend.ShardedFrontend` talks only to the
:class:`ShardBase` interface — routing, admission control and statistics
merging are identical for both backends.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runtime import ExecutionPlan
from repro.serving.engine import PlanRequest, ServingEngine

__all__ = ["EngineShard", "ShardBase"]

#: Inbox sentinel that tells the worker to drain leftovers and exit.
_STOP = object()


class ShardBase:
    """Inbox, drain worker and lifecycle shared by every shard backend.

    Subclasses provide :meth:`_execute_batch` (answer a list of requests
    with a list of plans), the :attr:`max_batch_size` coalescing bound, the
    statistics accessors, and optionally :meth:`_on_start` /
    :meth:`_on_stop` lifecycle hooks.  The worker is started lazily by
    :meth:`start` (the frontend does this on first use) and stopped by
    :meth:`stop`, which processes every request already enqueued before
    joining — no accepted request is ever dropped by a shutdown.
    """

    #: Short backend tag reported by describe()/stats().
    backend = "abstract"

    def __init__(self, index: int):
        self.index = int(index)
        self._inbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self._worker: Optional[threading.Thread] = None
        # Serialises start/stop: two lazy starters racing would otherwise
        # both spawn a worker on the same inbox, and the orphan could eat
        # the stop sentinel meant for the tracked one.
        self._lifecycle_lock = threading.Lock()
        # Touched only by the worker thread; read by stats snapshots.
        self.n_batches_drained = 0
        self.n_requests_drained = 0

    # -- backend contract ----------------------------------------------------------
    @property
    def max_batch_size(self) -> int:
        raise NotImplementedError

    def _execute_batch(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        """Answer one micro-batch (at most ``max_batch_size`` requests)."""
        raise NotImplementedError

    def _on_start(self) -> None:
        """Hook run under the lifecycle lock before the drain worker spawns."""

    def _on_stop(self) -> None:
        """Hook run under the lifecycle lock after the drain worker joined."""

    # -- lifecycle -----------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._worker is not None

    def start(self) -> None:
        with self._lifecycle_lock:
            if self._worker is None:
                self._on_start()
                worker = threading.Thread(
                    target=self._drain_loop,
                    name=f"adsala-shard-{self.index}",
                    daemon=True,
                )
                self._worker = worker
                worker.start()

    def stop(self) -> None:
        """Answer everything already enqueued, then join the worker."""
        with self._lifecycle_lock:
            worker = self._worker
            if worker is not None:
                self._inbox.put(_STOP)
                worker.join()
                self._worker = None
            self._on_stop()

    # -- intake --------------------------------------------------------------------
    def enqueue(self, request: PlanRequest, future) -> None:
        """Hand one routed request (and the future to resolve) to the worker."""
        self._inbox.put((request, future))

    def execute(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        """Synchronous bulk path: answer ``requests`` on the caller's thread.

        Bypasses the inbox entirely; safe to run concurrently with the
        worker because the backend serialises batches itself (the engine
        lock in-process, the pipe lock for a worker process).
        """
        plans: List[ExecutionPlan] = []
        limit = self.max_batch_size
        for start in range(0, len(requests), limit):
            plans.extend(self._execute_batch(requests[start : start + limit]))
        return plans

    # -- worker --------------------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            item = self._inbox.get()
            stopping = item is _STOP
            batch: List[Tuple[PlanRequest, object]] = [] if stopping else [item]
            while len(batch) < self.max_batch_size:
                try:
                    extra = self._inbox.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            if batch:
                self._answer(batch)
            if stopping:
                leftovers: List[Tuple[PlanRequest, object]] = []
                while True:
                    try:
                        extra = self._inbox.get_nowait()
                    except queue.Empty:
                        break
                    if extra is not _STOP:
                        leftovers.append(extra)
                if leftovers:
                    self._answer(leftovers)
                return

    def _answer(self, batch: List[Tuple[PlanRequest, object]]) -> None:
        requests = [request for request, _ in batch]
        try:
            plans = self._execute_batch(requests)
        except BaseException as exc:  # resolve futures even on backend bugs
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), plan in zip(batch, plans):
            future.set_result(plan)
        self.n_batches_drained += 1
        self.n_requests_drained += len(batch)

    # -- statistics interface ------------------------------------------------------
    # The frontend merges these without ever touching a backend's engine
    # object (a process shard has none in the parent).
    def stats(self) -> Dict[str, object]:
        raise NotImplementedError

    def cache_statistics(self) -> Dict[str, object]:
        raise NotImplementedError

    def reinstall_candidates(self) -> List[str]:
        raise NotImplementedError

    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        raise NotImplementedError

    def fallback_describe(self) -> str:
        raise NotImplementedError

    @property
    def n_pending(self) -> int:
        raise NotImplementedError

    @property
    def worker_pid(self) -> int:
        """PID of the process executing this shard's batches."""
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "index": self.index,
            "backend": self.backend,
            "worker": f"adsala-shard-{self.index}",
            "pid": self.worker_pid,
            "running": self.running,
            "batches_drained": self.n_batches_drained,
            "requests_drained": self.n_requests_drained,
            "pending": self.n_pending,
        }


class EngineShard(ShardBase):
    """Thread-backed shard: the engine executes in the serving process.

    Batches run on the drain thread (or the caller's thread for the bulk
    path) under the engine's own lock; the ``engine`` attribute stays
    public for in-process telemetry and cache inspection.
    """

    backend = "thread"

    def __init__(self, index: int, engine: ServingEngine):
        super().__init__(index)
        self.engine = engine

    @property
    def max_batch_size(self) -> int:
        return self.engine.max_batch_size

    def _execute_batch(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        return self.engine.execute(requests)

    # -- statistics interface ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return self.engine.stats()

    def cache_statistics(self) -> Dict[str, object]:
        return self.engine.cache_statistics()

    def reinstall_candidates(self) -> List[str]:
        return self.engine.reinstall_candidates()

    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        self.engine.record_observation(plan, observed_time)

    def fallback_describe(self) -> str:
        return self.engine.fallback.describe()

    @property
    def n_pending(self) -> int:
        return self.engine.n_pending

    @property
    def worker_pid(self) -> int:
        return os.getpid()
