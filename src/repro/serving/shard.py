"""One serving shard: a thread-safe engine plus its drain worker.

A shard owns one :class:`~repro.serving.engine.ServingEngine` and an inbox
of ``(request, future)`` pairs.  Its worker thread blocks on the inbox,
opportunistically coalesces whatever else is already queued into one
micro-batch (up to the engine's ``max_batch_size``) and answers the batch
through :meth:`ServingEngine.execute` — so a burst of concurrent
submissions is amortised exactly like the single-engine queue drain, while
a lone request is answered immediately instead of waiting for peers.

The :class:`~repro.serving.frontend.ShardedFrontend` routes each request to
a fixed shard by a deterministic hash of ``(routine, dims_key)``, so a
given problem shape always lands on the same engine and that engine's
per-routine prediction LRU and timing memo stay hot for it.
"""

from __future__ import annotations

import queue
import threading
from typing import List, Optional, Sequence, Tuple

from repro.core.runtime import ExecutionPlan
from repro.serving.engine import PlanRequest, ServingEngine

__all__ = ["EngineShard"]

#: Inbox sentinel that tells the worker to drain leftovers and exit.
_STOP = object()


class EngineShard:
    """One engine plus the worker thread that drains its inbox.

    The worker is started lazily by :meth:`start` (the frontend does this
    on first use) and stopped by :meth:`stop`, which processes every
    request already enqueued before joining — no accepted request is ever
    dropped by a shutdown.
    """

    def __init__(self, index: int, engine: ServingEngine):
        self.index = int(index)
        self.engine = engine
        self._inbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self._worker: Optional[threading.Thread] = None
        # Serialises start/stop: two lazy starters racing would otherwise
        # both spawn a worker on the same inbox, and the orphan could eat
        # the stop sentinel meant for the tracked one.
        self._lifecycle_lock = threading.Lock()
        # Touched only by the worker thread; read by stats snapshots.
        self.n_batches_drained = 0
        self.n_requests_drained = 0

    # -- lifecycle -----------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._worker is not None

    def start(self) -> None:
        with self._lifecycle_lock:
            if self._worker is None:
                worker = threading.Thread(
                    target=self._drain_loop,
                    name=f"adsala-shard-{self.index}",
                    daemon=True,
                )
                self._worker = worker
                worker.start()

    def stop(self) -> None:
        """Answer everything already enqueued, then join the worker."""
        with self._lifecycle_lock:
            worker = self._worker
            if worker is None:
                return
            self._inbox.put(_STOP)
            worker.join()
            self._worker = None

    # -- intake --------------------------------------------------------------------
    def enqueue(self, request: PlanRequest, future) -> None:
        """Hand one routed request (and the future to resolve) to the worker."""
        self._inbox.put((request, future))

    def execute(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        """Synchronous bulk path: answer ``requests`` on the caller's thread.

        Bypasses the inbox entirely; safe to run concurrently with the
        worker because the engine serialises on its own lock.
        """
        return self.engine.execute(requests)

    # -- worker --------------------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            item = self._inbox.get()
            stopping = item is _STOP
            batch: List[Tuple[PlanRequest, object]] = [] if stopping else [item]
            while len(batch) < self.engine.max_batch_size:
                try:
                    extra = self._inbox.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            if batch:
                self._answer(batch)
            if stopping:
                leftovers: List[Tuple[PlanRequest, object]] = []
                while True:
                    try:
                        extra = self._inbox.get_nowait()
                    except queue.Empty:
                        break
                    if extra is not _STOP:
                        leftovers.append(extra)
                if leftovers:
                    self._answer(leftovers)
                return

    def _answer(self, batch: List[Tuple[PlanRequest, object]]) -> None:
        requests = [request for request, _ in batch]
        try:
            plans = self.engine.execute(requests)
        except BaseException as exc:  # resolve futures even on engine bugs
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), plan in zip(batch, plans):
            future.set_result(plan)
        self.n_batches_drained += 1
        self.n_requests_drained += len(batch)

    def describe(self) -> dict:
        return {
            "index": self.index,
            "running": self.running,
            "batches_drained": self.n_batches_drained,
            "requests_drained": self.n_requests_drained,
            "pending": self.engine.n_pending,
        }
