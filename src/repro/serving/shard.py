"""One serving shard: an inbox drain worker in front of an engine runtime.

A shard owns an inbox of ``(request, future)`` pairs and a worker thread
that blocks on it, opportunistically coalesces whatever else is already
queued into one micro-batch (up to the shard's ``max_batch_size``) and
answers the batch through the shard's execution backend — so a burst of
concurrent submissions is amortised exactly like the single-engine queue
drain, while a lone request is answered immediately instead of waiting for
peers.

Two backends implement the interface:

* :class:`EngineShard` (here) runs a
  :class:`~repro.serving.engine.ServingEngine` in-process; batches execute
  on the drain thread under the engine's own lock.  N in-process shards
  scale on real cores because the whole evaluate span (feature fill →
  fused transform → stacked descent) runs as one GIL-free native call
  (:mod:`repro.ml._native`); only per-batch Python bookkeeping
  serialises.
* :class:`~repro.serving.procshard.ProcessShard` runs the engine in a
  worker *process*; batches cross a pipe as compact framed arrays and the
  compiled model state is mapped from shared memory.

The :class:`~repro.serving.frontend.ShardedFrontend` talks only to the
:class:`ShardBase` interface — routing, admission control and statistics
merging are identical for both backends.

Fault tolerance
---------------
Backends raise :class:`ShardFailure` (or a subclass) for *transport*
failures — a dead worker process, a corrupted pipe frame, a failed worker
init — that a restart can heal, and plain exceptions for genuine request
errors.  When a :class:`~repro.serving.supervisor.ShardSupervisor` is
attached, the drain loop hands failed batches to it for restart +
redispatch instead of failing the futures; without one, behaviour is
unchanged (the error surfaces on every affected future).  Futures are
resolved at-most-once via the future's own atomicity: a request that was
redispatched *and* answered late by the original worker keeps the first
answer and the duplicate is counted, never raised.  Requests carry an
optional deadline; the drain loop sheds expired entries with
:class:`DeadlineExceededError` before they cost a micro-batch slot.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import zlib
from concurrent.futures import InvalidStateError
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.runtime import ExecutionPlan
from repro.serving.engine import PlanRequest, ServingEngine

__all__ = [
    "DeadlineExceededError",
    "EngineShard",
    "ShardBase",
    "ShardFailure",
    "shard_index",
]

#: Inbox sentinel that tells the worker to drain leftovers and exit.
_STOP = object()


class ShardFailure(RuntimeError):
    """A shard's execution backend failed in a restartable way.

    Raised for transport-level faults (dead worker process, corrupted pipe
    frame, failed worker initialisation, injected chaos) — failures a
    supervisor can heal by restarting the worker and redispatching the
    batch.  Engine-level errors (bad requests, model bugs) stay plain
    exceptions and always surface on the affected futures.
    """


class DeadlineExceededError(TimeoutError):
    """A request's deadline passed before a plan could be produced."""


def shard_index(routine: str, dims_key: tuple, n_shards: int) -> int:
    """Deterministic shard for one request.

    CRC-32 over the canonical ``(routine, dims_key)`` repr: stable across
    processes, runs and Python hash randomisation, so replaying a stream
    always produces the same shard assignment (and the same per-shard
    cache behaviour).
    """
    digest = zlib.crc32(repr((routine, dims_key)).encode("utf-8"))
    return digest % n_shards


class ShardBase:
    """Inbox, drain worker and lifecycle shared by every shard backend.

    Subclasses provide :meth:`_execute_batch` (answer a list of requests
    with a list of plans), the :attr:`max_batch_size` coalescing bound, the
    statistics accessors, and optionally :meth:`_on_start` /
    :meth:`_on_stop` lifecycle hooks.  The worker is started lazily by
    :meth:`start` (the frontend does this on first use) and stopped by
    :meth:`stop`, which processes every request already enqueued before
    joining — no accepted request is ever dropped by a shutdown.
    """

    #: Short backend tag reported by describe()/stats().
    backend = "abstract"

    def __init__(self, index: int):
        self.index = int(index)
        self._inbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self._worker: Optional[threading.Thread] = None
        # Serialises start/stop: two lazy starters racing would otherwise
        # both spawn a worker on the same inbox, and the orphan could eat
        # the stop sentinel meant for the tracked one.
        self._lifecycle_lock = threading.Lock()
        # Bumped when a hung worker is abandoned: the zombie notices the
        # stale generation and exits instead of stealing inbox traffic
        # from its replacement.
        self._generation = 0
        # In-flight dispatches keyed by an opaque token: the supervisor's
        # liveness monitor reads the oldest start time to detect a hung
        # batch, and harvests the batches themselves for redispatch.
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[object, Tuple[float, Optional[list]]] = {}
        #: Attached by the supervisor/frontend; None means unsupervised.
        self.supervisor = None
        #: Optional deterministic chaos source (see serving/faults.py).
        self.injector = None
        # Touched only by the worker thread; read by stats snapshots.
        self.n_batches_drained = 0
        self.n_requests_drained = 0
        self.n_deadline_expired = 0
        self.n_duplicate_answers = 0

    # -- backend contract ----------------------------------------------------------
    @property
    def max_batch_size(self) -> int:
        raise NotImplementedError

    def _execute_batch(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        """Answer one micro-batch (at most ``max_batch_size`` requests)."""
        raise NotImplementedError

    def restart(self) -> None:
        """Recover the execution backend after a :class:`ShardFailure`."""
        raise NotImplementedError

    def _on_start(self) -> None:
        """Hook run under the lifecycle lock before the drain worker spawns."""

    def _on_stop(self) -> None:
        """Hook run under the lifecycle lock after the drain worker joined."""

    # -- lifecycle -----------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._worker is not None

    def start(self) -> None:
        with self._lifecycle_lock:
            if self._worker is None:
                self._on_start()
                worker = threading.Thread(
                    target=self._drain_loop,
                    args=(self._generation,),
                    name=f"adsala-shard-{self.index}",
                    daemon=True,
                )
                self._worker = worker
                worker.start()

    def stop(self) -> None:
        """Answer everything already enqueued, then join the worker."""
        with self._lifecycle_lock:
            worker = self._worker
            if worker is not None:
                self._inbox.put(_STOP)
                worker.join()
                self._worker = None
            self._on_stop()

    def abandon_worker(self) -> List[list]:
        """Give up on a hung drain worker (thread backends only).

        Bumps the generation — the zombie thread exits (or has its late
        answers suppressed) as soon as it unblocks — forgets the thread so
        :meth:`start` can spawn a replacement on the same inbox, and
        harvests the stuck in-flight batches so the caller can redispatch
        them.  The zombie itself is left to the OS: a daemon thread wedged
        inside a hung engine cannot be killed from Python.
        """
        with self._lifecycle_lock:
            self._generation += 1
            self._worker = None
        with self._inflight_lock:
            batches = [
                batch for _, batch in self._inflight.values() if batch is not None
            ]
            self._inflight.clear()
        return batches

    # -- intake --------------------------------------------------------------------
    def enqueue(self, request: PlanRequest, future) -> None:
        """Hand one routed request (and the future to resolve) to the worker."""
        self._inbox.put((request, future))

    def requeue(self, batch: Sequence[Tuple[PlanRequest, object]]) -> None:
        """Put a harvested/failed batch back on the inbox for redispatch."""
        for item in batch:
            self._inbox.put(item)

    def execute(
        self,
        requests: Sequence[PlanRequest],
        deadline: Optional[float] = None,
    ) -> List[ExecutionPlan]:
        """Synchronous bulk path: answer ``requests`` on the caller's thread.

        Bypasses the inbox entirely; safe to run concurrently with the
        worker because the backend serialises batches itself (the engine
        lock in-process, the pipe lock for a worker process).  When a
        supervisor is attached, failed micro-batches are retried through
        its restart/quarantine machinery instead of raising.  ``deadline``
        (absolute monotonic time) bounds the whole drain: micro-batches
        not yet dispatched when it passes raise
        :class:`DeadlineExceededError`.
        """
        plans: List[ExecutionPlan] = []
        limit = self.max_batch_size
        supervisor = self.supervisor
        for start in range(0, len(requests), limit):
            chunk = requests[start : start + limit]
            if deadline is not None and time.monotonic() > deadline:
                raise DeadlineExceededError(
                    f"request {chunk[0].request_id} missed its deadline before "
                    f"execution on shard {self.index} "
                    f"({len(requests) - start} of {len(requests)} still queued)"
                )
            if supervisor is not None:
                plans.extend(supervisor.execute_batch(self, chunk, deadline=deadline))
            else:
                plans.extend(self._dispatch(chunk))
        return plans

    # -- worker --------------------------------------------------------------------
    def _drain_loop(self, generation: int) -> None:
        while True:
            if generation != self._generation:
                return  # abandoned: a replacement owns the inbox now
            item = self._inbox.get()
            if generation != self._generation:
                # Abandoned while blocked on the inbox: hand the item to
                # the replacement worker and bow out.  Re-queueing may
                # reorder, which is harmless — plans are pure functions of
                # each request.
                self._inbox.put(item)
                return
            stopping = item is _STOP
            batch: List[Tuple[PlanRequest, object]] = [] if stopping else [item]
            while len(batch) < self.max_batch_size:
                try:
                    extra = self._inbox.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stopping = True
                    break
                batch.append(extra)
            if batch:
                self._answer(batch)
            if stopping:
                leftovers: List[Tuple[PlanRequest, object]] = []
                while True:
                    try:
                        extra = self._inbox.get_nowait()
                    except queue.Empty:
                        break
                    if extra is not _STOP:
                        leftovers.append(extra)
                if leftovers:
                    self._answer(leftovers)
                return

    def _dispatch(
        self,
        requests: Sequence[PlanRequest],
        batch: Optional[list] = None,
    ) -> List[ExecutionPlan]:
        """Execute one micro-batch with liveness tracking + chaos hook."""
        token = object()
        with self._inflight_lock:
            self._inflight[token] = (time.monotonic(), batch)
        try:
            injector = self.injector
            if injector is not None:
                injector.before_batch(self)
            return self._execute_batch(requests)
        finally:
            with self._inflight_lock:
                self._inflight.pop(token, None)

    def stalled_for(self, now: Optional[float] = None) -> Optional[float]:
        """Age in seconds of the oldest in-flight dispatch, or ``None``."""
        with self._inflight_lock:
            if not self._inflight:
                return None
            oldest = min(since for since, _ in self._inflight.values())
        return (time.monotonic() if now is None else now) - oldest

    def _resolve(self, future, plan=None, error: Optional[BaseException] = None):
        """Resolve a future at-most-once; count (never raise on) duplicates."""
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(plan)
        except InvalidStateError:
            # A redispatched request was already answered by the original
            # worker (or vice versa).  Both answers are bit-identical —
            # plans are pure functions of the request — so keeping the
            # first is exactly-once delivery, not data loss.
            self.n_duplicate_answers += 1

    def _fail_batch(self, batch, exc: BaseException) -> None:
        for _, future in batch:
            self._resolve(future, error=exc)

    def _shed_expired(self, batch):
        """Resolve expired entries with DeadlineExceededError; return the rest."""
        if all(request.deadline is None for request, _ in batch):
            return batch
        now = time.monotonic()
        live = []
        for request, future in batch:
            if request.deadline is not None and now > request.deadline:
                self.n_deadline_expired += 1
                self._resolve(
                    future,
                    error=DeadlineExceededError(
                        f"request {request.request_id} missed its deadline "
                        f"before execution on shard {self.index}"
                    ),
                )
            else:
                live.append((request, future))
        return live

    def _answer(self, batch: List[Tuple[PlanRequest, object]]) -> None:
        batch = self._shed_expired(batch)
        if not batch:
            return
        requests = [request for request, _ in batch]
        try:
            plans = self._dispatch(requests, batch)
        except ShardFailure as exc:
            supervisor = self.supervisor
            if supervisor is not None:
                # Recoverable transport failure: the supervisor restarts
                # the backend and redispatches the batch — the futures
                # stay pending until a healthy worker answers them.
                supervisor.on_batch_failure(self, batch, exc)
                return
            self._fail_batch(batch, exc)
            return
        except BaseException as exc:  # resolve futures even on backend bugs
            self._fail_batch(batch, exc)
            return
        for (_, future), plan in zip(batch, plans):
            self._resolve(future, plan=plan)
        self.n_batches_drained += 1
        self.n_requests_drained += len(batch)
        supervisor = self.supervisor
        if supervisor is not None:
            supervisor.on_batch_success(self)

    # -- statistics interface ------------------------------------------------------
    # The frontend merges these without ever touching a backend's engine
    # object (a process shard has none in the parent).
    def stats(self) -> Dict[str, object]:
        raise NotImplementedError

    def cache_statistics(self) -> Dict[str, object]:
        raise NotImplementedError

    def reinstall_candidates(self) -> List[str]:
        raise NotImplementedError

    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        raise NotImplementedError

    def fallback_describe(self) -> str:
        raise NotImplementedError

    @property
    def n_pending(self) -> int:
        raise NotImplementedError

    @property
    def worker_pid(self) -> int:
        """PID of the process executing this shard's batches."""
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "index": self.index,
            "backend": self.backend,
            "worker": f"adsala-shard-{self.index}",
            "pid": self.worker_pid,
            "running": self.running,
            "batches_drained": self.n_batches_drained,
            "requests_drained": self.n_requests_drained,
            "pending": self.n_pending,
            "deadline_expired": self.n_deadline_expired,
            "duplicate_answers": self.n_duplicate_answers,
        }


class EngineShard(ShardBase):
    """Thread-backed shard: the engine executes in the serving process.

    Batches run on the drain thread (or the caller's thread for the bulk
    path) under the engine's own lock; the ``engine`` attribute stays
    public for in-process telemetry and cache inspection.

    ``engine_factory`` (optional) builds a replacement engine for
    :meth:`restart`: after a hung worker is abandoned the old engine may be
    wedged (its lock held forever by the zombie), so recovery swaps in a
    fresh engine over an independent copy of the model state.  Without a
    factory, restart keeps the existing engine — correct for injected
    faults (which fire before the engine is entered) but unable to heal a
    genuine engine hang.
    """

    backend = "thread"

    def __init__(
        self,
        index: int,
        engine: ServingEngine,
        engine_factory: Optional[Callable[[], ServingEngine]] = None,
    ):
        super().__init__(index)
        self.engine = engine
        self._engine_factory = engine_factory

    @property
    def max_batch_size(self) -> int:
        return self.engine.max_batch_size

    def _execute_batch(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        return self.engine.execute(requests)

    def restart(self) -> None:
        if self._engine_factory is not None:
            self.engine = self._engine_factory()

    # -- statistics interface ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return self.engine.stats()

    def cache_statistics(self) -> Dict[str, object]:
        return self.engine.cache_statistics()

    def reinstall_candidates(self) -> List[str]:
        return self.engine.reinstall_candidates()

    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        self.engine.record_observation(plan, observed_time)

    def fallback_describe(self) -> str:
        return self.engine.fallback.describe()

    @property
    def n_pending(self) -> int:
        return self.engine.n_pending

    @property
    def worker_pid(self) -> int:
        return os.getpid()
