"""Process-backed serving shard: a ServingEngine behind a pipe, GIL-free.

The thread backend (:class:`~repro.serving.shard.EngineShard`) keeps every
engine in one interpreter, so CPU-bound plan batches serialise on the GIL
and N shards can run *slower* than one engine.  This backend moves each
shard's engine into a worker **process**:

* **Shared model state** — the compiled per-routine state
  (:class:`~repro.ml.tree.StackedTrees` struct-of-arrays,
  :class:`~repro.preprocessing.pipeline.FusedTransform` flat arrays,
  AdaBoost weights, linear coefficients) is exported once into
  ``multiprocessing.shared_memory`` segments by
  :func:`export_source_spec` and mapped zero-copy in every worker — N
  shards share one copy of the model pages instead of N pickled clones.
  Segment lifetime is refcounted by the
  :class:`~repro.shm.SharedSegmentRegistry`; the last shard's ``stop()``
  unlinks everything.
* **Pickle-free framing** — requests and plans cross the pipe as compact
  little-endian array frames (request ids / routine indices / flat dims one
  way; ids / threads / times / policy table the other), batched per
  micro-batch.  No pickling on the hot path, and the parent rebuilds each
  :class:`~repro.core.runtime.ExecutionPlan` against the dims dict it
  already holds.
* **Same semantics** — the worker runs a stock
  :class:`~repro.serving.engine.ServingEngine` over the mapped state, so
  plans are bit-identical (routine/dims/threads/times/policy) to the
  thread backend and to a sequential single-engine replay; only
  ``from_cache`` flags may differ because each worker warms its own LRU.

* **Prebuilt native kernel** — the parent compiles the fused native
  kernel (:mod:`repro.ml._native`) once while building the spec and ships
  the cached ``.so`` path; workers adopt it via
  :func:`repro.ml._native.adopt_library` instead of racing the compiler
  N-way on spawn.

Workers are started with the ``spawn`` method by default (see
:func:`repro.parallel.worker_context`): the frontend launches them lazily
from a process that already runs drain threads, where ``fork`` is unsafe.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.blas.api import parse_routine
from repro.core.compiled import (
    CompiledPredictor,
    export_model_evaluator,
    model_kernel_from_state,
)
from repro.ml import _native
from repro.core.features import feature_names
from repro.core.predictor import ThreadPredictor
from repro.core.runtime import ExecutionPlan
from repro.machine.simulator import TimingSimulator
from repro.parallel import worker_context
from repro.preprocessing.pipeline import FusedTransform
from repro.serving.engine import PlanRequest, ServingEngine
from repro.serving.fallback import default_serving_chain
from repro.serving.shard import ShardBase, ShardFailure
from repro.serving.telemetry import EngineTelemetry
from repro.shm import SharedSegmentRegistry

__all__ = [
    "FrameCorruptionError",
    "ProcessShard",
    "SharedSourceExport",
    "WorkerDiedError",
    "WorkerInitError",
    "export_source_spec",
]


class WorkerDiedError(ShardFailure):
    """The shard's worker process exited (or its pipe broke) mid-operation."""


class WorkerInitError(ShardFailure):
    """The worker came up but could not initialise its engine.

    The classic cause is shared-memory segments that died between spawn
    and attach; recovery re-exports the model state and respawns.
    """


class FrameCorruptionError(ShardFailure):
    """A pipe frame failed to decode; the transport is desynchronised."""


# ---------------------------------------------------------------------------
# Wire protocol: 16-byte header (kind, count as little-endian i64) + payload.
# ---------------------------------------------------------------------------
KIND_REQUESTS = 1
KIND_PLANS = 2
KIND_ERROR = 3
KIND_STATS = 4
KIND_JSON = 5
KIND_OBSERVE = 6
KIND_STOP = 7

#: Stats opcodes (payload of a KIND_STATS frame).
STATS_SNAPSHOT = 0
STATS_CACHE = 1
STATS_REINSTALL = 2
STATS_FALLBACK = 3

_I8 = np.dtype("<i8")
_F8 = np.dtype("<f8")

_SPEC_CACHE: Dict[str, tuple] = {}


def _dim_names(routine: str) -> tuple:
    names = _SPEC_CACHE.get(routine)
    if names is None:
        _, _, spec = parse_routine(routine)
        names = tuple(spec.dim_names)
        _SPEC_CACHE[routine] = names
    return names


def _frame(kind: int, count: int, payload: bytes = b"") -> bytes:
    return np.array([kind, count], dtype=_I8).tobytes() + payload


def _string_table(strings: Sequence[str]) -> bytes:
    """Length-prefixed newline-joined table (same shape as the policy table).

    Routine keys ride the pipe as per-frame deduplicated string tables
    rather than a fixed builtin-key numbering, so plugin routines the
    static BLAS-12 never heard of serialise without both pipe ends having
    to agree on a catalog order.
    """
    table = "\n".join(strings).encode("utf-8")
    return np.array([len(table)], dtype=_I8).tobytes() + table


def _read_string_table(payload: bytes, offset: int):
    """Decode a :func:`_string_table` at ``offset``; returns (strings, end)."""
    (length,) = np.frombuffer(payload, dtype=_I8, count=1, offset=offset)
    end = offset + 8 + int(length)
    table = payload[offset + 8 : end]
    return (table.decode("utf-8").split("\n") if table else []), end


def _intern_keys(values) -> tuple:
    """Map each value through a per-frame dedup table; returns (indices, keys)."""
    keys: List[str] = []
    index: Dict[str, int] = {}
    slots: List[int] = []
    for value in values:
        slot = index.get(value)
        if slot is None:
            slot = len(keys)
            index[value] = slot
            keys.append(value)
        slots.append(slot)
    return np.asarray(slots, dtype=_I8), keys


def _parse_frame(data: bytes):
    header = np.frombuffer(data, dtype=_I8, count=2)
    return int(header[0]), int(header[1]), data[16:]


def encode_requests(requests: Sequence[PlanRequest]) -> bytes:
    """REQUESTS frame: ids · routine table refs · flat dims (spec order)."""
    n = len(requests)
    ids = np.fromiter((r.request_id for r in requests), dtype=_I8, count=n)
    routine_idx, routine_keys = _intern_keys(r.routine for r in requests)
    dims_flat: List[int] = []
    for request in requests:
        dims = request.dims
        dims_flat.extend(dims[name] for name in _dim_names(request.routine))
    dims_arr = np.asarray(dims_flat, dtype=_I8)
    return _frame(
        KIND_REQUESTS,
        n,
        ids.tobytes()
        + routine_idx.tobytes()
        + _string_table(routine_keys)
        + dims_arr.tobytes(),
    )


def decode_requests(count: int, payload: bytes) -> List[PlanRequest]:
    ids = np.frombuffer(payload, dtype=_I8, count=count)
    routine_idx = np.frombuffer(payload, dtype=_I8, count=count, offset=8 * count)
    routine_keys, dims_offset = _read_string_table(payload, 16 * count)
    dims_flat = np.frombuffer(payload, dtype=_I8, offset=dims_offset)
    requests: List[PlanRequest] = []
    position = 0
    for i in range(count):
        routine = routine_keys[int(routine_idx[i])]
        names = _dim_names(routine)
        values = dims_flat[position : position + len(names)]
        position += len(names)
        dims = {name: int(value) for name, value in zip(names, values)}
        requests.append(
            PlanRequest(
                request_id=int(ids[i]),
                routine=routine,
                dims=dims,
                dims_key=tuple(sorted(dims.items())),
            )
        )
    return requests


def encode_plans(plans: Sequence[ExecutionPlan]) -> bytes:
    """PLANS frame: per-plan arrays plus a deduplicated policy-name table.

    Dims are *not* echoed — the parent rebuilds each plan against the
    request dims it retained (the engine answers with ``plan.dims ==
    request.dims`` always).
    """
    n = len(plans)
    policies: List[str] = []
    policy_index: Dict[str, int] = {}
    policy_idx = np.empty(n, dtype=_I8)
    for i, plan in enumerate(plans):
        slot = policy_index.get(plan.policy)
        if slot is None:
            slot = len(policies)
            policy_index[plan.policy] = slot
            policies.append(plan.policy)
        policy_idx[i] = slot
    # ExecutionPlan carries no request id; plans ride in request order (the
    # engine answers one plan per request in order; decode re-checks counts).
    threads = np.fromiter((p.threads for p in plans), dtype=_I8, count=n)
    # Routine keys and fallback sources share one per-frame dedup table;
    # fallback slot -1 encodes "no substitution".
    both = [p.routine for p in plans] + [
        p.fallback_from for p in plans if p.fallback_from is not None
    ]
    _, routine_keys = _intern_keys(both)
    key_index = {key: slot for slot, key in enumerate(routine_keys)}
    routine_idx = np.fromiter(
        (key_index[p.routine] for p in plans), dtype=_I8, count=n
    )
    fallback_idx = np.fromiter(
        (
            -1 if p.fallback_from is None else key_index[p.fallback_from]
            for p in plans
        ),
        dtype=_I8,
        count=n,
    )
    predicted = np.fromiter((p.predicted_time for p in plans), dtype=_F8, count=n)
    baseline = np.fromiter((p.baseline_time for p in plans), dtype=_F8, count=n)
    from_cache = np.fromiter((p.from_cache for p in plans), dtype=np.uint8, count=n)
    table = "\n".join(policies).encode("utf-8")
    payload = (
        threads.tobytes()
        + routine_idx.tobytes()
        + fallback_idx.tobytes()
        + policy_idx.tobytes()
        + predicted.tobytes()
        + baseline.tobytes()
        + from_cache.tobytes()
        + np.array([len(table)], dtype=_I8).tobytes()
        + table
        + _string_table(routine_keys)
    )
    return _frame(KIND_PLANS, n, payload)


def decode_plans(
    count: int, payload: bytes, requests: Sequence[PlanRequest]
) -> List[ExecutionPlan]:
    if count != len(requests):
        raise RuntimeError(
            f"worker answered {count} plans for {len(requests)} requests"
        )
    threads = np.frombuffer(payload, dtype=_I8, count=count)
    routine_idx = np.frombuffer(payload, dtype=_I8, count=count, offset=8 * count)
    fallback_idx = np.frombuffer(payload, dtype=_I8, count=count, offset=16 * count)
    policy_idx = np.frombuffer(payload, dtype=_I8, count=count, offset=24 * count)
    predicted = np.frombuffer(payload, dtype=_F8, count=count, offset=32 * count)
    baseline = np.frombuffer(payload, dtype=_F8, count=count, offset=40 * count)
    from_cache = np.frombuffer(
        payload, dtype=np.uint8, count=count, offset=48 * count
    )
    offset = 49 * count
    (table_length,) = np.frombuffer(payload, dtype=_I8, count=1, offset=offset)
    table = payload[offset + 8 : offset + 8 + int(table_length)]
    policies = table.decode("utf-8").split("\n") if table else []
    routine_keys, _ = _read_string_table(payload, offset + 8 + int(table_length))
    plans: List[ExecutionPlan] = []
    for i, request in enumerate(requests):
        fb = int(fallback_idx[i])
        plans.append(
            ExecutionPlan(
                routine=routine_keys[int(routine_idx[i])],
                dims=request.dims,
                threads=int(threads[i]),
                predicted_time=float(predicted[i]),
                baseline_time=float(baseline[i]),
                from_cache=bool(from_cache[i]),
                fallback_from=None if fb < 0 else routine_keys[fb],
                policy=policies[int(policy_idx[i])],
            )
        )
    return plans


def encode_observation(plan: ExecutionPlan, observed_time: float) -> bytes:
    """OBSERVE frame (no reply): routine key · threads · dims · predicted/observed."""
    names = _dim_names(plan.routine)
    key = plan.routine.encode("utf-8")
    head = np.array([len(key), plan.threads, len(names)], dtype=_I8)
    dims = np.asarray([plan.dims[name] for name in names], dtype=_I8)
    tail = np.array([plan.predicted_time, observed_time], dtype=_F8)
    return _frame(
        KIND_OBSERVE, 1, head.tobytes() + key + dims.tobytes() + tail.tobytes()
    )


def _apply_observation(engine: ServingEngine, payload: bytes) -> None:
    head = np.frombuffer(payload, dtype=_I8, count=3)
    key_length = int(head[0])
    routine = payload[24 : 24 + key_length].decode("utf-8")
    n_dims = int(head[2])
    offset = 24 + key_length
    values = np.frombuffer(payload, dtype=_I8, count=n_dims, offset=offset)
    tail = np.frombuffer(payload, dtype=_F8, count=2, offset=offset + 8 * n_dims)
    dims = {
        name: int(value) for name, value in zip(_dim_names(routine), values)
    }
    plan = ExecutionPlan(
        routine=routine,
        dims=dims,
        threads=int(head[1]),
        predicted_time=float(tail[0]),
        baseline_time=float(tail[0]),
        from_cache=False,
    )
    engine.record_observation(plan, float(tail[1]))


# ---------------------------------------------------------------------------
# Model-state export (parent side) and rebuild (worker side)
# ---------------------------------------------------------------------------
class SharedSourceExport:
    """One source's flattened model state plus its segment registry.

    Built once per frontend by :func:`export_source_spec` and shared by all
    process shards: each shard ``acquire()``s the registry at construction
    and ``release()``s it exactly once at stop, so the last shard's
    teardown unlinks the segments.

    The export also retains the original ``source`` (and the export
    parameters), so :meth:`ensure_alive` can rebuild the whole family of
    segments if they die while workers are being restarted — the registry
    hand-off keeps the outstanding shard refcount, so teardown semantics
    are unchanged after a re-export.
    """

    def __init__(
        self,
        registry: SharedSegmentRegistry,
        spec: dict,
        source=None,
        params: Optional[dict] = None,
    ):
        self.registry = registry
        self.spec = spec
        self._source = source
        self._params = dict(params or {})
        # Serialises acquire/release against a registry swap so a release
        # issued mid-re-export can never decrement the retiring registry
        # after its refcount was copied to the replacement.
        self._swap_lock = threading.Lock()
        self.n_reexports = 0

    @property
    def max_batch_size(self) -> int:
        return int(self.spec["engine"]["max_batch_size"])

    def acquire(self) -> "SharedSourceExport":
        with self._swap_lock:
            self.registry.acquire()
        return self

    def release(self) -> None:
        with self._swap_lock:
            self.registry.release()

    def ensure_alive(self) -> bool:
        """Re-export the model state if its shared segments died.

        A freshly spawned worker attaches segments *by name*; the parent's
        own mappings survive an unlink but a replacement worker would get
        ``FileNotFoundError`` at init.  Called before each restart: when
        any owned segment no longer resolves, the retained source is
        exported again into a new registry (which adopts the old one's
        refcount) and the worker spec is swapped.  Returns whether a
        re-export happened.
        """
        with self._swap_lock:
            registry = self.registry
            if not registry.missing_segments():
                return False
            if self._source is None:
                raise ShardFailure(
                    "shared model segments are gone and this export kept no "
                    "source to rebuild them from"
                )
            fresh = export_source_spec(self._source, **self._params)
            fresh.registry.adopt_refcount(registry.refcount)
            self.registry = fresh.registry
            self.spec = fresh.spec
            self.n_reexports += 1
            registry.adopt_refcount(0)
            registry.close()
            return True


def export_source_spec(
    source,
    max_batch_size: int = 64,
    use_cache: bool = True,
    timing_cache_capacity: int = 4096,
    drift_threshold: Optional[float] = None,
    worker_faults: Optional[dict] = None,
) -> SharedSourceExport:
    """Flatten a bundle/handle into a picklable worker spec + shared segments.

    Every routine's compiled state (fused preprocessing, model evaluator
    arrays) goes through the registry — large arrays become shared-memory
    refs, so the spec the spawn pickles is tiny and workers map the same
    model pages.  The platform and simulator parameters ride the pickle
    (they are ~1 KB of topology metadata, not model state).
    """
    registry = SharedSegmentRegistry()
    simulator = source.simulator
    routines: Dict[str, dict] = {}
    for key in sorted(source.routines):
        predictor = source.predictor(key)
        compiled = predictor.compile()
        routines[key] = {
            "candidate_threads": [int(t) for t in predictor.candidate_threads],
            "model_name": predictor.model_name,
            "cache_capacity": int(predictor.cache_capacity),
            "fused": compiled._fused.to_shared(registry),
            "evaluator": export_model_evaluator(predictor.model, registry),
        }
    spec = {
        "platform": source.platform,
        "simulator": {
            "platform": simulator.platform,
            "seed": simulator.seed,
            "noise_level": simulator.noise_level,
            "patch_probability": simulator.patch_probability,
            "patch_strength": simulator.patch_strength,
        },
        "engine": {
            "max_batch_size": int(max_batch_size),
            "use_cache": bool(use_cache),
            "timing_cache_capacity": int(timing_cache_capacity),
            "drift_threshold": drift_threshold,
        },
        "routines": routines,
        # Compile the native kernel once here, in the parent, before any
        # worker spawns: N workers adopt the finished .so instead of racing
        # the compiler (or re-hashing the source on cold temp dirs).
        "native_library": _native.library_path(),
        # Worker-side chaos knobs (see serving/faults.py); empty in production.
        "faults": dict(worker_faults or {}),
    }
    return SharedSourceExport(
        registry,
        spec,
        source=source,
        params={
            "max_batch_size": max_batch_size,
            "use_cache": use_cache,
            "timing_cache_capacity": timing_cache_capacity,
            "drift_threshold": drift_threshold,
            "worker_faults": worker_faults,
        },
    )


class _WorkerInstallation:
    """Minimal ``RoutineInstallation`` stand-in (just the predictor slot)."""

    __slots__ = ("predictor",)

    def __init__(self, predictor: ThreadPredictor):
        self.predictor = predictor


class _WorkerSource:
    """Bundle-protocol view over predictors rebuilt from a spawn spec."""

    def __init__(self, platform, simulator, installations: Dict[str, _WorkerInstallation]):
        self.platform = platform
        self.simulator = simulator
        self.routines = installations

    def predictor(self, routine: str) -> ThreadPredictor:
        key = routine.lower()
        installation = self.routines.get(key)
        if installation is None:
            raise KeyError(
                f"Routine {routine!r} was not installed; available: "
                f"{sorted(self.routines)}"
            )
        return installation.predictor


def _predictor_from_spec(key: str, rspec: dict, registry) -> ThreadPredictor:
    """Rebuild one routine's predictor over mapped shared-memory state.

    Bypasses ``ThreadPredictor.__init__`` — there is no pipeline or model
    object on this side, only the compiled kernel, so the skeleton carries
    the metadata the serving path reads (candidate threads, cache bounds,
    counters) and a pre-built :class:`CompiledPredictor`.
    """
    fused = FusedTransform.from_shared(rspec["fused"], registry)
    kernel = model_kernel_from_state(rspec["evaluator"], registry)
    candidate_threads = [int(t) for t in rspec["candidate_threads"]]
    compiled = CompiledPredictor.from_state(key, candidate_threads, fused, kernel)
    predictor = ThreadPredictor.__new__(ThreadPredictor)
    predictor.routine = key
    predictor.pipeline = None
    predictor.model = None
    predictor.candidate_threads = candidate_threads
    predictor.model_name = rspec["model_name"]
    predictor.cache_capacity = int(rspec["cache_capacity"])
    predictor.feature_names = feature_names(key)
    predictor._cache = OrderedDict()
    predictor._compiled = compiled
    predictor.n_model_evaluations = 0
    predictor.n_cache_hits = 0
    predictor.n_cache_misses = 0
    return predictor


def _engine_from_spec(spec: dict, registry) -> ServingEngine:
    simulator_spec = spec["simulator"]
    simulator = TimingSimulator(
        simulator_spec["platform"],
        seed=simulator_spec["seed"],
        noise_level=simulator_spec["noise_level"],
        patch_probability=simulator_spec["patch_probability"],
        patch_strength=simulator_spec["patch_strength"],
    )
    installations = {
        key: _WorkerInstallation(_predictor_from_spec(key, rspec, registry))
        for key, rspec in spec["routines"].items()
    }
    source = _WorkerSource(spec["platform"], simulator, installations)
    engine_spec = spec["engine"]
    drift_threshold = engine_spec["drift_threshold"]
    telemetry = (
        EngineTelemetry(drift_threshold=drift_threshold)
        if drift_threshold is not None
        else EngineTelemetry()
    )
    return ServingEngine(
        source,
        max_batch_size=engine_spec["max_batch_size"],
        use_cache=engine_spec["use_cache"],
        timing_cache_capacity=engine_spec["timing_cache_capacity"],
        telemetry=telemetry,
    )


def _worker_main(conn, spec: dict) -> None:
    """Worker-process entry: map shared state, serve frames until STOP."""
    faults = spec.get("faults") or {}
    if faults.get("ignore_stop"):
        # Chaos harness: simulate a worker wedged past graceful shutdown.
        # It keeps serving but ignores STOP frames and SIGTERM, so only the
        # parent's kill() escalation can end it (the close() backstop test).
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    registry = SharedSegmentRegistry()
    engine: Optional[ServingEngine] = None
    init_error: Optional[str] = None
    try:
        try:
            _native.adopt_library(spec.get("native_library"))
            engine = _engine_from_spec(spec, registry)
        except BaseException as exc:
            init_error = f"worker initialisation failed: {exc!r}"
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            kind, count, payload = _parse_frame(data)
            if kind == KIND_STOP:
                if faults.get("ignore_stop"):
                    continue
                break
            if kind == KIND_OBSERVE:
                if engine is not None:
                    try:
                        _apply_observation(engine, payload)
                    except BaseException:
                        pass  # fire-and-forget; never desync the pipe
                continue
            try:
                if init_error is not None:
                    conn.send_bytes(_frame(KIND_ERROR, 0, init_error.encode("utf-8")))
                    continue
                if kind == KIND_REQUESTS:
                    requests = decode_requests(count, payload)
                    plans = engine.execute(requests)
                    conn.send_bytes(encode_plans(plans))
                elif kind == KIND_STATS:
                    (opcode,) = np.frombuffer(payload, dtype=_I8, count=1)
                    if opcode == STATS_SNAPSHOT:
                        result = engine.stats()
                    elif opcode == STATS_CACHE:
                        result = engine.cache_statistics()
                    elif opcode == STATS_REINSTALL:
                        result = engine.reinstall_candidates()
                    elif opcode == STATS_FALLBACK:
                        result = engine.fallback.describe()
                    else:
                        raise ValueError(f"unknown stats opcode {int(opcode)}")
                    conn.send_bytes(
                        _frame(KIND_JSON, 0, json.dumps(result).encode("utf-8"))
                    )
                else:
                    raise ValueError(f"unknown frame kind {kind}")
            except BaseException as exc:
                conn.send_bytes(_frame(KIND_ERROR, 0, repr(exc).encode("utf-8")))
    finally:
        registry.close()
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent-side shard
# ---------------------------------------------------------------------------
class ProcessShard(ShardBase):
    """One engine in a worker process, spoken to over framed pipe messages.

    The worker is launched lazily on first use (spawn start method by
    default).  ``stop()`` captures the worker's final statistics snapshots
    *before* sending the STOP frame — so :meth:`stats` keeps answering
    after close, matching the thread backend where engines outlive their
    shards — then joins the worker and releases the shard's reference on
    the shared model export.  A worker that dies mid-batch surfaces a
    ``RuntimeError`` naming the pid and exit code on the affected futures;
    it never hangs them, and ``stop()`` afterwards stays idempotent.
    """

    backend = "process"

    def __init__(
        self,
        index: int,
        export: SharedSourceExport,
        start_method: Optional[str] = None,
        stop_timeout: float = 10.0,
    ):
        super().__init__(index)
        self._export = export.acquire()
        self._ctx = worker_context(start_method)
        self._proc = None
        self._conn = None
        # Serialises pipe round-trips: the drain worker, bulk execute()
        # callers and stats readers share one duplex pipe.
        self._pipe_lock = threading.Lock()
        self._dead = False
        self._released = False
        self._final: Optional[dict] = None
        self._stop_timeout = float(stop_timeout)
        # Chaos hook: the fault injector arms this to mangle the next
        # plans frame after it leaves the pipe (transport corruption).
        self._corrupt_next_reply = False
        #: Last close() escalation taken (None | "terminate" | "kill").
        self.stop_escalation: Optional[str] = None

    # -- backend contract ----------------------------------------------------------
    @property
    def max_batch_size(self) -> int:
        return self._export.max_batch_size

    def _execute_batch(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        with self._pipe_lock:
            self._ensure_worker()
            _, count, payload = self._roundtrip(encode_requests(requests), "mid-batch")
        if self._corrupt_next_reply:
            self._corrupt_next_reply = False
            payload = payload[:7]  # short buffer: every decode layout breaks
        try:
            return decode_plans(count, payload, requests)
        except Exception as exc:
            # The pipe may hold half-consumed garbage after a bad frame;
            # the worker has to go so a restart gets a clean transport.
            self._terminate_worker()
            raise FrameCorruptionError(
                f"process shard {self.index} received an undecodable plans "
                f"frame ({exc!r}); worker terminated for restart"
            ) from exc

    # -- worker lifecycle ----------------------------------------------------------
    def _ensure_worker(self) -> None:
        """Launch the worker process if needed (caller holds the pipe lock)."""
        if self._released:
            raise RuntimeError(f"process shard {self.index} is closed")
        if self._proc is None:
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._export.spec),
                name=f"adsala-procshard-{self.index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._proc = process
            self._conn = parent_conn

    def _roundtrip(self, data: bytes, doing: str):
        """One send/recv over the pipe (caller holds the pipe lock)."""
        try:
            self._conn.send_bytes(data)
            reply = self._conn.recv_bytes()
        except (BrokenPipeError, ConnectionResetError, EOFError, OSError) as exc:
            self._raise_dead(doing, exc)
        kind, count, payload = _parse_frame(reply)
        if kind == KIND_ERROR:
            message = payload.decode("utf-8", "replace")
            if message.startswith("worker initialisation failed"):
                # The worker process is up but its engine never built —
                # typically the shared segments it attaches by name are
                # gone.  Restartable: recovery re-exports and respawns.
                self._terminate_worker_locked()
                raise WorkerInitError(
                    f"process shard {self.index} worker could not initialise "
                    f"{doing}: {message}"
                )
            raise RuntimeError(
                f"process shard {self.index} worker error {doing}: " + message
            )
        return kind, count, payload

    def _raise_dead(self, doing: str, exc: BaseException) -> None:
        process = self._proc
        pid = process.pid if process is not None else None
        exitcode = None
        if process is not None:
            process.join(timeout=1.0)
            exitcode = process.exitcode
        self._dead = True
        raise WorkerDiedError(
            f"process shard {self.index} worker (pid {pid}) died {doing} "
            f"(exit code {exitcode})"
        ) from exc

    def _terminate_worker(self) -> None:
        with self._pipe_lock:
            self._terminate_worker_locked()

    def _terminate_worker_locked(self) -> None:
        """Force the worker down and mark the shard dead (restart() revives)."""
        process = self._proc
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=self._stop_timeout)
        conn = self._conn
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self._conn = None
        self._dead = True

    def restart(self) -> None:
        """Discard a dead/poisoned worker; the next batch spawns a fresh one.

        Verifies the shared model segments first: if they died with the
        worker (or were unlinked by chaos) the export rebuilds them from
        its retained source, so the replacement worker attaches live
        state.  Raises ``RuntimeError`` on a closed shard — a released
        export cannot be revived.
        """
        with self._pipe_lock:
            if self._released:
                raise RuntimeError(f"process shard {self.index} is closed")
            process = self._proc
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=self._stop_timeout)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=self._stop_timeout)
            if self._conn is not None:
                try:
                    self._conn.close()
                except OSError:
                    pass
            self._proc = None
            self._conn = None
            self._dead = False
            self._corrupt_next_reply = False
        self._export.ensure_alive()

    def _on_stop(self) -> None:
        """Capture final stats, stop the worker, release the shared export.

        Runs under the lifecycle lock; idempotent — repeated ``stop()``
        calls (including after a dead worker) release the shared-memory
        reference exactly once and never raise.
        """
        if self._released:
            return
        process = self._proc
        if process is not None:
            if not self._dead:
                self._final = self._capture_final()
                with self._pipe_lock:
                    try:
                        self._conn.send_bytes(_frame(KIND_STOP, 0))
                    except OSError:
                        pass
            process.join(timeout=self._stop_timeout)
            if process.is_alive():
                # Stuck worker: escalate with bounded joins so close() can
                # never hang the serving process.  SIGTERM first (lets a
                # live-but-slow worker flush), SIGKILL if that is ignored.
                self.stop_escalation = "terminate"
                process.terminate()
                process.join(timeout=self._stop_timeout)
                if process.is_alive():
                    self.stop_escalation = "kill"
                    process.kill()
                    process.join(timeout=self._stop_timeout)
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass
            self._proc = None
            self._conn = None
        self._released = True
        self._export.release()

    def _capture_final(self) -> dict:
        """Best-effort final statistics snapshot before the worker exits."""
        final: dict = {}
        queries = (
            ("stats", STATS_SNAPSHOT),
            ("cache", STATS_CACHE),
            ("reinstall", STATS_REINSTALL),
            ("fallback", STATS_FALLBACK),
        )
        try:
            with self._pipe_lock:
                for name, opcode in queries:
                    _, _, payload = self._roundtrip(
                        _frame(KIND_STATS, 1, np.array([opcode], dtype=_I8).tobytes()),
                        "capturing final statistics",
                    )
                    final[name] = json.loads(payload.decode("utf-8"))
        except RuntimeError:
            return self._empty_final()
        return final

    # -- statistics interface ------------------------------------------------------
    def _empty_engine_stats(self) -> dict:
        return {
            "requests": 0,
            "batches": 0,
            "mean_batch_size": 0.0,
            "max_batch_size": 0.0,
            "drift_threshold": self._export.spec["engine"]["drift_threshold"]
            or EngineTelemetry().drift_threshold,
            "reinstall_candidates": [],
            "routines": {},
            "pending": 0,
            "batch_size_limit": self.max_batch_size,
            "fallback_chain": default_serving_chain().describe(),
            "cache": self._empty_cache_stats(),
            # Same timestamp keys the live engine stamps, so merged
            # snapshots stay orderable even while a worker is down.
            "wall_time": time.time(),
            "monotonic_time": time.monotonic(),
        }

    def _empty_cache_stats(self) -> dict:
        return {
            "cache_hits": 0,
            "cache_misses": 0,
            "model_evaluations": 0,
            "routines": {},
            "timing": {
                "hits": 0,
                "misses": 0,
                "size": 0,
                "capacity": self._export.spec["engine"]["timing_cache_capacity"],
            },
        }

    def _empty_final(self) -> dict:
        return {
            "stats": self._empty_engine_stats(),
            "cache": self._empty_cache_stats(),
            "reinstall": [],
            "fallback": default_serving_chain().describe(),
        }

    def _query(self, name: str, opcode: int):
        """Live stats query, or the cached/empty snapshot when no worker."""
        if self._final is not None:
            return self._final[name]
        with self._pipe_lock:
            if self._final is not None:  # stop() raced us
                return self._final[name]
            if self._proc is None or self._dead:
                return self._empty_final()[name]
            _, _, payload = self._roundtrip(
                _frame(KIND_STATS, 1, np.array([opcode], dtype=_I8).tobytes()),
                "answering a statistics query",
            )
            return json.loads(payload.decode("utf-8"))

    def stats(self) -> Dict[str, object]:
        return self._query("stats", STATS_SNAPSHOT)

    def cache_statistics(self) -> Dict[str, object]:
        return self._query("cache", STATS_CACHE)

    def reinstall_candidates(self) -> List[str]:
        return self._query("reinstall", STATS_REINSTALL)

    def fallback_describe(self) -> str:
        return self._query("fallback", STATS_FALLBACK)

    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        with self._pipe_lock:
            if self._released or self._dead:
                return  # worker gone; nothing to feed
            self._ensure_worker()
            try:
                self._conn.send_bytes(encode_observation(plan, observed_time))
            except (BrokenPipeError, OSError) as exc:
                self._raise_dead("recording an observation", exc)

    @property
    def n_pending(self) -> int:
        return 0  # the worker executes synchronously; nothing queues in it

    @property
    def worker_pid(self) -> Optional[int]:
        process = self._proc
        return process.pid if process is not None else None

    def describe(self) -> dict:
        info = super().describe()
        info["worker"] = f"adsala-procshard-{self.index}"
        return info
