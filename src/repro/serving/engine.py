"""Micro-batching plan server over an installation bundle.

``AdsalaRuntime.plan()`` answers one request at a time: one model
evaluation, two scalar simulator calls.  Under serving traffic that is the
wrong shape — PR 1 built batch primitives
(:meth:`~repro.core.predictor.ThreadPredictor.predict_runtimes_batch`,
:meth:`~repro.machine.simulator.TimingSimulator.time_batch`) that amortise
the per-call overhead across whole arrays of problem shapes, and this
engine is the serving loop that feeds them:

1. requests enter a queue (:meth:`ServingEngine.submit`),
2. :meth:`ServingEngine.flush` drains the queue in micro-batches of at most
   ``max_batch_size`` requests,
3. each batch is routed through the :class:`~repro.serving.fallback.FallbackChain`
   and grouped by resolved routine,
4. each group is answered in **one** batched predictor evaluation plus one
   batched timing pass — bit-identical to the scalar path, so a micro-batch
   returns exactly the plans a ``plan()`` loop would have produced,
5. plans and (optionally) observed runtimes feed the
   :class:`~repro.serving.telemetry.EngineTelemetry` drift tracker.

The engine accepts either an in-memory
:class:`~repro.core.install.InstallationBundle` or a lazy registry
:class:`~repro.serving.registry.BundleHandle` — anything exposing
``routines`` / ``predictor()`` / ``platform`` / ``simulator``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.blas.api import parse_routine
from repro.core.runtime import ExecutionPlan
from repro.serving.fallback import FallbackChain, default_serving_chain
from repro.serving.telemetry import EngineTelemetry

__all__ = ["PlanRequest", "ServingEngine"]


@dataclass(frozen=True)
class PlanRequest:
    """One queued plan request (dimensions already normalized)."""

    request_id: int
    routine: str
    dims: Dict[str, int]


class ServingEngine:
    """Queue + micro-batch + fallback + telemetry around a bundle.

    Parameters
    ----------
    source:
        An :class:`~repro.core.install.InstallationBundle` or a
        :class:`~repro.serving.registry.BundleHandle`.
    fallback:
        The :class:`~repro.serving.fallback.FallbackChain` routing requests
        to installed models (default: :func:`default_serving_chain`, which
        never rejects a valid routine).
    max_batch_size:
        Upper bound on requests answered in one batched pass.
    telemetry:
        An :class:`~repro.serving.telemetry.EngineTelemetry`; a fresh one is
        created when omitted.
    use_cache:
        Whether plans may be served from / stored into each predictor's LRU
        cache (mirrors the ``use_cache`` flag of ``plan()``).
    """

    def __init__(
        self,
        source,
        fallback: Optional[FallbackChain] = None,
        max_batch_size: int = 64,
        telemetry: Optional[EngineTelemetry] = None,
        use_cache: bool = True,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        self.source = source
        self.fallback = fallback if fallback is not None else default_serving_chain()
        self.max_batch_size = int(max_batch_size)
        self.telemetry = telemetry if telemetry is not None else EngineTelemetry()
        self.use_cache = use_cache
        self._queue: List[PlanRequest] = []
        self._next_request_id = 0
        self._touched_routines: set[str] = set()

    # -- properties ----------------------------------------------------------------
    @property
    def platform(self):
        return self.source.platform

    @property
    def simulator(self):
        return self.source.simulator

    @property
    def n_pending(self) -> int:
        return len(self._queue)

    # -- request intake -------------------------------------------------------------
    def _make_request(self, routine: str, dims: Dict[str, int]) -> PlanRequest:
        """Validate and normalize one request (shared by submit and plan)."""
        prefix, base, spec = parse_routine(routine)
        request = PlanRequest(
            request_id=self._next_request_id,
            routine=prefix + base,
            dims=spec.dims_from_args(**dims),
        )
        self._next_request_id += 1
        return request

    def submit(self, routine: str, **dims: int) -> int:
        """Queue one plan request; returns its request id.

        Dimensions are validated and normalized immediately (bad requests
        fail at submission, not mid-batch).
        """
        request = self._make_request(routine, dims)
        self._queue.append(request)
        return request.request_id

    def flush(self) -> List[ExecutionPlan]:
        """Answer every queued request; plans come back in submission order."""
        plans: List[ExecutionPlan] = []
        while self._queue:
            batch = self._queue[: self.max_batch_size]
            del self._queue[: len(batch)]
            plans.extend(self._process_batch(batch))
        return plans

    def plan(self, routine: str, use_cache: Optional[bool] = None, **dims: int) -> ExecutionPlan:
        """Plan a single call through the batch path (micro-batch of one).

        Independent of the :meth:`submit` queue: pending requests stay
        queued for the next :meth:`flush` and are unaffected by a
        ``use_cache`` override, which applies to this call only.
        """
        request = self._make_request(routine, dims)
        return self._process_batch([request], use_cache=use_cache)[0]

    def plan_many(
        self, requests: Iterable[Tuple[str, Dict[str, int]]]
    ) -> List[ExecutionPlan]:
        """Submit ``(routine, dims)`` pairs and flush; a convenience wrapper."""
        for routine, dims in requests:
            self.submit(routine, **dims)
        return self.flush()

    # -- batch processing ------------------------------------------------------------
    def _process_batch(
        self, batch: Sequence[PlanRequest], use_cache: Optional[bool] = None
    ) -> List[ExecutionPlan]:
        use_cache = self.use_cache if use_cache is None else use_cache
        self.telemetry.record_batch(len(batch))
        resolutions = [
            self.fallback.resolve(request.routine, self.source) for request in batch
        ]
        groups: "OrderedDict[Tuple[str, bool], List[int]]" = OrderedDict()
        for index, resolution in enumerate(resolutions):
            groups.setdefault((resolution.key, resolution.heuristic), []).append(index)

        simulator = self.source.simulator
        plans: List[Optional[ExecutionPlan]] = [None] * len(batch)
        for (key, heuristic), indices in groups.items():
            dims_list = [batch[i].dims for i in indices]
            baselines = np.asarray(
                simulator.time_at_max_threads_batch(key, dims_list), dtype=float
            )
            if heuristic:
                threads = [self.source.platform.max_threads] * len(indices)
                predicted = baselines
                from_cache = [False] * len(indices)
            else:
                self._touched_routines.add(key)
                prediction_plans = self.source.predictor(key).plan_batch(
                    dims_list, use_cache=use_cache
                )
                threads = [p.threads for p in prediction_plans]
                from_cache = [p.from_cache for p in prediction_plans]
                predicted = np.asarray(
                    simulator.time_batch(key, dims_list, threads), dtype=float
                )
            for slot, index in enumerate(indices):
                resolution = resolutions[index]
                plan = ExecutionPlan(
                    routine=key,
                    dims=batch[index].dims,
                    threads=int(threads[slot]),
                    predicted_time=float(predicted[slot]),
                    baseline_time=float(baselines[slot]),
                    from_cache=bool(from_cache[slot]),
                    fallback_from=resolution.fallback_from,
                    policy=resolution.policy,
                )
                plans[index] = plan
                self.telemetry.record_plan(
                    routine=key,
                    from_cache=plan.from_cache,
                    fallback=plan.fallback_from is not None,
                    heuristic=resolution.heuristic,
                )
        return [plan for plan in plans if plan is not None]

    # -- online feedback -------------------------------------------------------------
    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        """Feed one executed call's measured runtime back into telemetry."""
        self.telemetry.record_observation(
            plan.routine, plan.predicted_time, observed_time
        )

    def reinstall_candidates(self) -> List[str]:
        """Routines whose observed-vs-predicted error drifted past threshold."""
        return self.telemetry.reinstall_candidates()

    # -- statistics -------------------------------------------------------------------
    def cache_statistics(self) -> Dict[str, int]:
        """Aggregate LRU cache counters over every routine this engine touched."""
        hits = misses = evaluations = 0
        for key in sorted(self._touched_routines):
            predictor = self.source.predictor(key)
            info = predictor.cache_info()
            hits += info["hits"]
            misses += info["misses"]
            evaluations += predictor.n_model_evaluations
        return {"cache_hits": hits, "cache_misses": misses, "model_evaluations": evaluations}

    def stats(self) -> Dict[str, object]:
        """Telemetry snapshot plus queue/cache counters (JSON-serialisable)."""
        snapshot = self.telemetry.snapshot()
        snapshot["pending"] = self.n_pending
        snapshot["batch_size_limit"] = self.max_batch_size
        snapshot["fallback_chain"] = self.fallback.describe()
        snapshot["cache"] = self.cache_statistics()
        return snapshot
