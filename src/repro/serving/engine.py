"""Micro-batching plan server over an installation bundle.

``AdsalaRuntime.plan()`` answers one request at a time: one model
evaluation, two scalar simulator calls.  Under serving traffic that is the
wrong shape — PR 1 built batch primitives
(:meth:`~repro.core.predictor.ThreadPredictor.predict_runtimes_batch`,
:meth:`~repro.machine.simulator.TimingSimulator.time_batch`) that amortise
the per-call overhead across whole arrays of problem shapes, and this
engine is the serving loop that feeds them:

1. requests enter a queue (:meth:`ServingEngine.submit`),
2. :meth:`ServingEngine.flush` drains the queue in micro-batches of at most
   ``max_batch_size`` requests,
3. each batch is routed through the :class:`~repro.serving.fallback.FallbackChain`
   and grouped by resolved routine,
4. each group is answered in **one** batched predictor evaluation plus one
   batched timing pass — bit-identical to the scalar path, so a micro-batch
   returns exactly the plans a ``plan()`` loop would have produced,
5. plans and (optionally) observed runtimes feed the
   :class:`~repro.serving.telemetry.EngineTelemetry` drift tracker.

The engine accepts either an in-memory
:class:`~repro.core.install.InstallationBundle` or a lazy registry
:class:`~repro.serving.registry.BundleHandle` — anything exposing
``routines`` / ``predictor()`` / ``platform`` / ``simulator``.

Concurrency
-----------
The engine is safe to drive from multiple threads: every mutating entry
point (``submit`` / ``flush`` / ``plan`` / ``plan_many`` / ``execute`` /
``record_observation`` / ``reload_source``) and every stats reader
serialises on one coarse engine lock, so batches, telemetry, the timing
memo and the per-routine predictor LRU caches never interleave.  Request
ids are allocated lock-free (an atomic counter), so ``submit`` callers
contend only for the queue append itself.  One engine still processes one
batch at a time — for CPU parallelism across requests, shard traffic over
several engines with :class:`~repro.serving.frontend.ShardedFrontend`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.blas.api import parse_routine
from repro.core.persistence import BundleFormatError
from repro.routines.catalog import UnknownRoutineError
from repro.core.runtime import ExecutionPlan
from repro.serving.fallback import FallbackChain, default_serving_chain
from repro.serving.telemetry import EngineTelemetry

__all__ = ["PlanRequest", "ServingEngine", "normalize_request"]


@dataclass(frozen=True)
class PlanRequest:
    """One queued plan request (dimensions already normalized).

    ``dims_key`` is the canonical hashable form of ``dims`` (sorted items),
    computed once at submission and reused by every cache probe downstream.
    ``deadline`` is an optional absolute :func:`time.monotonic` instant —
    the drain loop sheds a request whose deadline already passed instead of
    spending a micro-batch slot on an answer nobody is waiting for.  The
    deadline never crosses the process-shard pipe: shedding happens on the
    parent side, before dispatch.
    """

    request_id: int
    routine: str
    dims: Dict[str, int]
    dims_key: tuple = ()
    deadline: Optional[float] = None


def normalize_request(
    routine: str,
    dims: Dict[str, int],
    request_id: int,
    deadline: Optional[float] = None,
) -> PlanRequest:
    """Validate and normalize one request into a :class:`PlanRequest`.

    Shared by :meth:`ServingEngine.submit` (engine-local ids) and the
    sharded frontend (globally allocated ids): bad routines or dimensions
    raise here, at intake, never mid-batch.
    """
    prefix, base, spec = parse_routine(routine)
    normalized = spec.dims_from_args(**dims)
    return PlanRequest(
        request_id=request_id,
        routine=prefix + base,
        dims=normalized,
        dims_key=tuple(sorted(normalized.items())),
        deadline=deadline,
    )


class ServingEngine:
    """Queue + micro-batch + fallback + telemetry around a bundle.

    Safe for concurrent use: all mutating methods and stats readers hold a
    coarse per-engine :class:`threading.RLock`; request ids come from an
    atomic counter and never contend on the lock (see the module docstring).

    Parameters
    ----------
    source:
        An :class:`~repro.core.install.InstallationBundle` or a
        :class:`~repro.serving.registry.BundleHandle`.
    fallback:
        The :class:`~repro.serving.fallback.FallbackChain` routing requests
        to installed models (default: :func:`default_serving_chain`, which
        never rejects a valid routine).
    max_batch_size:
        Upper bound on requests answered in one batched pass.
    telemetry:
        An :class:`~repro.serving.telemetry.EngineTelemetry`; a fresh one is
        created when omitted.
    use_cache:
        Whether plans may be served from / stored into each predictor's LRU
        cache (mirrors the ``use_cache`` flag of ``plan()``).
    timing_cache_capacity:
        Bound on the engine's timing memo (distinct ``(routine, dims,
        threads)`` rows).  The timing simulator is deterministic, so
        re-simulating a shape the engine has already timed only burns
        latency; under cycling/skewed traffic this memo removes the
        simulator from the hot path entirely.  ``0`` disables it.
    """

    def __init__(
        self,
        source,
        fallback: Optional[FallbackChain] = None,
        max_batch_size: int = 64,
        telemetry: Optional[EngineTelemetry] = None,
        use_cache: bool = True,
        timing_cache_capacity: int = 4096,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if timing_cache_capacity < 0:
            raise ValueError("timing_cache_capacity must be non-negative")
        self.source = source
        self.fallback = fallback if fallback is not None else default_serving_chain()
        self.max_batch_size = int(max_batch_size)
        self.telemetry = telemetry if telemetry is not None else EngineTelemetry()
        self.use_cache = use_cache
        self.timing_cache_capacity = int(timing_cache_capacity)
        self._timing_cache: "OrderedDict[tuple, float]" = OrderedDict()
        self.n_timing_hits = 0
        self.n_timing_misses = 0
        self._queue: List[PlanRequest] = []
        self.n_rejected_unknown = 0
        # CPython guarantees next() on one iterator is atomic, so request-id
        # allocation never touches the engine lock.
        self._request_ids = itertools.count()
        self._touched_routines: set[str] = set()
        self._lock = threading.RLock()
        # In-memory bundles hold every predictor already; compile their
        # fused kernels up front so no request pays the one-off build cost.
        # Lazy registry handles compile per routine at model-load time
        # instead (see BundleHandle.installation).
        routines = getattr(source, "routines", None)
        if isinstance(routines, dict):
            for installation in routines.values():
                installation.predictor.compile()

    # -- properties ----------------------------------------------------------------
    @property
    def platform(self):
        return self.source.platform

    @property
    def simulator(self):
        return self.source.simulator

    @property
    def n_pending(self) -> int:
        return len(self._queue)

    # -- request intake -------------------------------------------------------------
    def _make_request(self, routine: str, dims: Dict[str, int]) -> PlanRequest:
        """Validate and normalize one request (shared by submit and plan).

        An unknown routine key raises the catalog's structured
        :class:`~repro.routines.catalog.UnknownRoutineError` (naming every
        registered routine key) and is counted in :meth:`stats` under
        ``rejected_unknown_routine``.
        """
        try:
            return normalize_request(routine, dims, next(self._request_ids))
        except UnknownRoutineError:
            with self._lock:
                self.n_rejected_unknown += 1
            raise

    def submit(self, routine: str, **dims: int) -> int:
        """Queue one plan request; returns its request id.

        Dimensions are validated and normalized immediately (bad requests
        fail at submission, not mid-batch).
        """
        request = self._make_request(routine, dims)
        with self._lock:
            self._queue.append(request)
        return request.request_id

    def flush(self) -> List[ExecutionPlan]:
        """Answer every queued request; plans come back in submission order.

        The lock is taken per micro-batch, so concurrent ``submit`` calls
        interleave with a long drain instead of stalling behind it; each
        dequeued request is answered exactly once whichever flusher drains
        it.
        """
        plans: List[ExecutionPlan] = []
        while True:
            with self._lock:
                if not self._queue:
                    break
                batch = self._queue[: self.max_batch_size]
                del self._queue[: len(batch)]
                plans.extend(self._process_batch(batch))
        return plans

    def plan(self, routine: str, use_cache: Optional[bool] = None, **dims: int) -> ExecutionPlan:
        """Plan a single call through the batch path (micro-batch of one).

        Independent of the :meth:`submit` queue: pending requests stay
        queued for the next :meth:`flush` and are unaffected by a
        ``use_cache`` override, which applies to this call only.
        """
        request = self._make_request(routine, dims)
        with self._lock:
            return self._process_batch([request], use_cache=use_cache)[0]

    def execute(self, requests: Sequence[PlanRequest]) -> List[ExecutionPlan]:
        """Answer pre-validated requests, bypassing the queue.

        Splits into micro-batches of at most ``max_batch_size`` and returns
        plans in request order (one per request, loudly enforced).  This is
        the sharded frontend's entry point: requests carry globally
        allocated ids, so they must not pass through :meth:`submit`.
        """
        plans: List[ExecutionPlan] = []
        for start in range(0, len(requests), self.max_batch_size):
            with self._lock:
                plans.extend(
                    self._process_batch(requests[start : start + self.max_batch_size])
                )
        return plans

    def plan_many(
        self, requests: Iterable[Tuple[str, Dict[str, int]]]
    ) -> List[ExecutionPlan]:
        """Submit ``(routine, dims)`` pairs and flush; a convenience wrapper."""
        for routine, dims in requests:
            self.submit(routine, **dims)
        return self.flush()

    # -- batch processing ------------------------------------------------------------
    def _timed_rows(
        self, key: str, rows: List[Tuple[Dict[str, int], tuple, int]]
    ) -> List[float]:
        """Runtimes for ``(dims, dims_key, threads)`` rows, memoised.

        Rows the engine already timed come straight from the LRU memo (the
        simulator is deterministic, so the values are identical); the
        remaining distinct rows are answered in **one** vectorised
        ``time_batch`` pass over column arrays — no per-row dict
        re-validation, no second baseline pass.
        """
        cache = self._timing_cache
        capacity = self.timing_cache_capacity
        times: List[Optional[float]] = [None] * len(rows)
        pending: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for slot, (dims, dims_key, threads) in enumerate(rows):
            memo_key = (key, dims_key, threads)
            if capacity:
                cached = cache.get(memo_key)
                if cached is not None:
                    cache.move_to_end(memo_key)
                    self.n_timing_hits += 1
                    times[slot] = cached
                    continue
            slots = pending.get(memo_key)
            if slots is None:
                # One miss per distinct simulated row; within-batch
                # duplicates (e.g. prediction == baseline threads) share
                # the row and count neither as hit nor miss.
                if capacity:
                    self.n_timing_misses += 1
                pending[memo_key] = [slot]
            else:
                slots.append(slot)

        if pending:
            _, _, spec = parse_routine(key)
            first_slots = [slots[0] for slots in pending.values()]
            columns = {
                name: np.fromiter(
                    (rows[slot][0][name] for slot in first_slots),
                    dtype=np.int64,
                    count=len(first_slots),
                )
                for name in spec.dim_names
            }
            threads_column = np.fromiter(
                (rows[slot][2] for slot in first_slots),
                dtype=np.int64,
                count=len(first_slots),
            )
            fresh = self.source.simulator.time_batch(key, columns, threads_column)
            for memo_key, value in zip(pending, fresh):
                value = float(value)
                for slot in pending[memo_key]:
                    times[slot] = value
                if capacity:
                    cache[memo_key] = value
                    cache.move_to_end(memo_key)
            if capacity:
                while len(cache) > capacity:
                    cache.popitem(last=False)
        return times  # type: ignore[return-value]

    def _process_batch(
        self, batch: Sequence[PlanRequest], use_cache: Optional[bool] = None
    ) -> List[ExecutionPlan]:
        use_cache = self.use_cache if use_cache is None else use_cache
        self.telemetry.record_batch(len(batch))
        resolutions = [
            self.fallback.resolve(request.routine, self.source) for request in batch
        ]
        groups: "OrderedDict[Tuple[str, bool], List[int]]" = OrderedDict()
        for index, resolution in enumerate(resolutions):
            groups.setdefault((resolution.key, resolution.heuristic), []).append(index)

        max_threads = self.source.platform.max_threads
        plans: List[Optional[ExecutionPlan]] = [None] * len(batch)
        for (key, heuristic), indices in groups.items():
            group_started = time.perf_counter()
            if heuristic:
                threads = [max_threads] * len(indices)
                from_cache = [False] * len(indices)
            else:
                self._touched_routines.add(key)
                dims_list = [batch[i].dims for i in indices]
                prediction_plans = self.source.predictor(key).plan_batch(
                    dims_list, use_cache=use_cache
                )
                threads = [p.threads for p in prediction_plans]
                from_cache = [p.from_cache for p in prediction_plans]

            # One memoised timing pass answers both the chosen-thread
            # prediction and the max-thread baseline; for heuristic groups
            # (and predictions that chose max threads) the rows coincide.
            timing_rows: List[Tuple[Dict[str, int], tuple, int]] = []
            for slot, index in enumerate(indices):
                request = batch[index]
                timing_rows.append((request.dims, request.dims_key, int(threads[slot])))
                timing_rows.append((request.dims, request.dims_key, max_threads))
            timed = self._timed_rows(key, timing_rows)

            for slot, index in enumerate(indices):
                resolution = resolutions[index]
                plan = ExecutionPlan(
                    routine=key,
                    dims=batch[index].dims,
                    threads=int(threads[slot]),
                    predicted_time=timed[2 * slot],
                    baseline_time=timed[2 * slot + 1],
                    from_cache=bool(from_cache[slot]),
                    fallback_from=resolution.fallback_from,
                    policy=resolution.policy,
                )
                plans[index] = plan
                self.telemetry.record_plan(
                    routine=key,
                    from_cache=plan.from_cache,
                    fallback=plan.fallback_from is not None,
                    heuristic=resolution.heuristic,
                    dims_key=batch[index].dims_key,
                )
            # Each plan's latency is its share of the group's batched
            # predictor + timing pass — the per-request number an external
            # scraper wants, not the whole batch's.
            per_plan_latency = (time.perf_counter() - group_started) / len(indices)
            for _ in indices:
                self.telemetry.record_latency(key, per_plan_latency)
        # Every request resolves to exactly one group slot, so every slot
        # must hold a plan; a silent filter here would turn a resolution
        # bug into lost requests.
        unanswered = [
            batch[index].request_id
            for index, plan in enumerate(plans)
            if plan is None
        ]
        if unanswered:
            raise RuntimeError(
                f"Batch processing dropped {len(unanswered)} of {len(batch)} "
                f"requests (ids {unanswered}); grouping/resolution invariant "
                "violated"
            )
        return plans  # type: ignore[return-value]

    # -- online feedback -------------------------------------------------------------
    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        """Feed one executed call's measured runtime back into telemetry."""
        with self._lock:
            self.telemetry.record_observation(
                plan.routine,
                plan.predicted_time,
                observed_time,
                dims=plan.dims,
                threads=plan.threads,
            )

    def reinstall_candidates(self) -> List[str]:
        """Routines whose observed-vs-predicted error drifted past threshold."""
        with self._lock:
            return self.telemetry.reinstall_candidates()

    # -- hot reload --------------------------------------------------------------------
    def clear_timing_cache(self) -> None:
        """Drop the timing memo (hit/miss counters survive).

        Must be called whenever the source's simulator may have changed —
        e.g. after a bundle promotion stamps a new machine calibration —
        because memoised rows would otherwise keep answering with the old
        machine's times.
        """
        with self._lock:
            self._timing_cache.clear()

    def reload_source(self, force: bool = False) -> bool:
        """Hot-reload a registry-backed source and invalidate stale caches.

        Returns whether the source actually changed.  In-memory
        :class:`~repro.core.install.InstallationBundle` sources have no
        on-disk state to reload and always return ``False``.
        """
        reload = getattr(self.source, "reload", None)
        if reload is None:
            return False
        with self._lock:
            changed = bool(reload(force=force))
            if changed:
                self.clear_timing_cache()
                # A reloaded bundle may no longer install every routine this
                # engine served; stale keys would make cache_statistics()
                # raise KeyError on source.predictor(key).
                routines = self.source.routines
                self._touched_routines = {
                    key for key in self._touched_routines if key in routines
                }
        return changed

    # -- statistics -------------------------------------------------------------------
    def cache_statistics(self) -> Dict[str, object]:
        """LRU cache counters, aggregate and per routine this engine touched.

        Each per-routine entry reports the predictor's hit/miss counters and
        the resulting ``hit_rate`` (hits over probes), so operators can see
        which routines actually benefit from the LRU plan cache.

        A routine this engine served that the (possibly hot-reloaded)
        source can no longer load is reported as ``{"unloadable": True}``
        instead of aborting the whole snapshot — e.g. a routine dropped
        from the bundle by a reload that raced this call, or a model file
        that fails checksum verification.
        """
        hits = misses = evaluations = 0
        per_routine: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for key in sorted(self._touched_routines):
                try:
                    predictor = self.source.predictor(key)
                except (KeyError, OSError, BundleFormatError):
                    # Dropped from a reloaded manifest, model file missing,
                    # or checksum/format verification failed at lazy load.
                    per_routine[key] = {"unloadable": True}
                    continue
                info = predictor.cache_info()
                probes = info["hits"] + info["misses"]
                per_routine[key] = {
                    "hits": info["hits"],
                    "misses": info["misses"],
                    "hit_rate": info["hits"] / probes if probes else 0.0,
                }
                hits += info["hits"]
                misses += info["misses"]
                evaluations += predictor.n_model_evaluations
            return {
                "cache_hits": hits,
                "cache_misses": misses,
                "model_evaluations": evaluations,
                "routines": per_routine,
                "timing": {
                    "hits": self.n_timing_hits,
                    "misses": self.n_timing_misses,
                    "size": len(self._timing_cache),
                    "capacity": self.timing_cache_capacity,
                },
            }

    def stats(self) -> Dict[str, object]:
        """Telemetry snapshot plus queue/cache counters (JSON-serialisable).

        Stamped with ``wall_time`` (orders snapshots across processes and
        machines) and ``monotonic_time`` (orders them within this process,
        immune to clock steps) so per-shard snapshots are orderable after
        the frontend merges them.
        """
        with self._lock:
            snapshot = self.telemetry.snapshot()
            snapshot["pending"] = self.n_pending
            snapshot["batch_size_limit"] = self.max_batch_size
            snapshot["fallback_chain"] = self.fallback.describe()
            snapshot["rejected_unknown_routine"] = self.n_rejected_unknown
            snapshot["cache"] = self.cache_statistics()
            snapshot["wall_time"] = time.time()
            snapshot["monotonic_time"] = time.monotonic()
            return snapshot
