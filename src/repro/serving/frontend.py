"""Concurrent sharded serving frontend over N engine shards.

One :class:`~repro.serving.engine.ServingEngine` answers one micro-batch at
a time behind its coarse lock; heavy multi-client traffic therefore wants
several engines side by side.  :class:`ShardedFrontend` is that layer:

* **Deterministic routing** — each request goes to the shard picked by a
  stable hash of ``(routine, dims_key)`` (CRC-32, not Python's salted
  ``hash``), so a given problem shape always lands on the same engine and
  that engine's per-routine prediction LRU and timing memo stay hot for
  it.  The same stream routes identically in every process and run.
* **Waitable submission** — :meth:`submit` validates the request, admits it
  against a bounded global in-flight budget and returns a
  :class:`PlanFuture` (a :class:`concurrent.futures.Future` carrying the
  request id); :meth:`plan` is the blocking convenience.  Each shard's
  worker thread coalesces queued submissions into micro-batches.
* **Admission control** — at most ``max_pending`` requests may be in
  flight at once.  ``backpressure="block"`` makes :meth:`submit` wait for
  a slot (bounded memory, lossless); ``backpressure="reject"`` raises
  :class:`QueueFullError` immediately and counts the shed request in the
  merged stats, for callers that prefer to degrade.
* **Merged observability** — :meth:`stats`, :meth:`cache_statistics` and
  :meth:`reinstall_candidates` aggregate every shard into one snapshot.

Determinism: predictor models and the timing simulator are pure functions
of the request, so the *plans* a sharded run produces are identical —
routine, dims, threads, predicted/baseline times, fallback policy — to a
sequential single-engine replay of the same stream (the stress tests
assert exactly this, keyed by request id).  Only the ``from_cache`` flags
may differ, because each shard warms its own LRU.

Fault tolerance: with ``supervise=True`` (the default) a
:class:`~repro.serving.supervisor.ShardSupervisor` health-checks the
shards, restarts dead/hung workers with capped exponential backoff,
redispatches the in-flight requests a failure stranded (each answered
exactly once, bit-identical to a healthy run) and quarantines a shard
whose restarts keep failing, rerouting its key range to the survivors.
Requests accept a per-request ``timeout=``: expired requests are shed
from the drain loop with :class:`~repro.serving.shard.DeadlineExceededError`
instead of wasting a micro-batch slot — deadlines bound *latency*, while
``max_pending`` backpressure bounds *memory*; the two compose.
"""

from __future__ import annotations

import copy
import itertools
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.runtime import ExecutionPlan
from repro.obs.metrics import BucketHistogram
from repro.parallel import map_parallel
from repro.routines.catalog import UnknownRoutineError
from repro.serving.engine import PlanRequest, ServingEngine, normalize_request
from repro.serving.procshard import ProcessShard, export_source_spec
from repro.serving.shard import (
    DeadlineExceededError,
    EngineShard,
    ShardBase,
    ShardFailure,
    shard_index,
)
from repro.serving.supervisor import RestartPolicy, ShardSupervisor
from repro.serving.telemetry import EngineTelemetry

__all__ = [
    "BACKPRESSURE_MODES",
    "SHARD_BACKENDS",
    "DeadlineExceededError",
    "QueueFullError",
    "PlanFuture",
    "ShardedFrontend",
    "shard_index",
]

BACKPRESSURE_MODES = ("block", "reject")

#: Shard execution backends: engines in-process vs. in worker processes.
SHARD_BACKENDS = ("thread", "process")


class QueueFullError(RuntimeError):
    """The frontend's bounded in-flight budget is exhausted (reject mode)."""


class PlanFuture(Future):
    """A waitable plan: ``result()`` blocks until the shard answers.

    Carries the globally allocated ``request_id`` and the index of the
    shard serving it, so callers can match answers back to submissions
    without extra bookkeeping — and so a timed-out ``result()`` can say
    *which* request is stuck *where* instead of raising a bare
    ``TimeoutError``.
    """

    def __init__(self, request_id: int, shard: Optional[int] = None):
        super().__init__()
        self.request_id = int(request_id)
        self.shard = shard

    def result(self, timeout: Optional[float] = None):
        try:
            return super().result(timeout)
        except DeadlineExceededError:
            raise  # shed by the drain loop; already names request and shard
        except TimeoutError:
            raise DeadlineExceededError(
                f"request {self.request_id} still unanswered after "
                f"{timeout}s waiting on shard {self.shard}"
            ) from None


class ShardedFrontend:
    """Partition plan traffic across N thread-safe engine shards.

    Parameters
    ----------
    sources:
        One engine source **per shard** — each an
        :class:`~repro.core.install.InstallationBundle`,
        :class:`~repro.serving.registry.BundleHandle`, or (thread backend
        only) a ready-made :class:`~repro.serving.engine.ServingEngine`.
        Under the thread backend sources must be distinct objects: two
        shards sharing one source would race on its predictor caches
        behind the engines' separate locks (use :meth:`from_bundle` /
        :meth:`from_directory` to build independent copies).  Under the
        process backend the *first* source is exported once into shared
        memory and every worker maps the same model state, so passing the
        same object N times is the expected shape.
    max_pending:
        Global bound on in-flight :meth:`submit` requests (admission
        control).
    backpressure:
        ``"block"`` (default) or ``"reject"`` — what :meth:`submit` does
        when ``max_pending`` requests are already in flight.
    max_batch_size / use_cache / timing_cache_capacity:
        Forwarded to each shard's :class:`ServingEngine` (ignored for
        pre-built engines).
    backend:
        ``"thread"`` (default) runs every engine in this process;
        ``"process"`` runs each engine in its own worker process with the
        compiled model state mapped from shared memory
        (:mod:`repro.serving.procshard`) — plan batches then execute on
        independent GILs.
    start_method:
        Process-backend worker start method (default ``spawn``; see
        :func:`repro.parallel.worker_context`).  Ignored for threads.
    drift_threshold:
        Optional telemetry drift threshold for engines this frontend
        builds (both backends; ``None`` keeps the telemetry default).
        Ignored for pre-built engines, which carry their own telemetry.
    supervise:
        ``True`` (default) attaches a
        :class:`~repro.serving.supervisor.ShardSupervisor`: dead or hung
        shard workers are restarted with capped exponential backoff, the
        requests they stranded are redispatched (answered exactly once),
        and a shard whose restarts keep failing is quarantined with its
        key range rerouted to the survivors.  ``False`` restores the
        fail-fast behaviour: a worker death errors its in-flight futures.
    restart_policy:
        Optional :class:`~repro.serving.supervisor.RestartPolicy`
        overriding the supervision thresholds (backoff, hang timeout,
        quarantine threshold).  Ignored when ``supervise=False``.
    injector:
        Optional :class:`~repro.serving.faults.FaultInjector` whose
        seeded chaos schedule fires on this frontend's shard dispatches
        (testing/benchmarking only).
    """

    def __init__(
        self,
        sources: Sequence,
        max_pending: int = 1024,
        backpressure: str = "block",
        max_batch_size: int = 64,
        use_cache: bool = True,
        timing_cache_capacity: int = 4096,
        backend: str = "thread",
        start_method: Optional[str] = None,
        drift_threshold: Optional[float] = None,
        supervise: bool = True,
        restart_policy: Optional[RestartPolicy] = None,
        injector=None,
    ):
        if not sources:
            raise ValueError("ShardedFrontend needs at least one source")
        if backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"Unknown backpressure mode {backpressure!r}; "
                f"expected one of {BACKPRESSURE_MODES}"
            )
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"Unknown shard backend {backend!r}; "
                f"expected one of {SHARD_BACKENDS}"
            )
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.backend = backend
        if backend == "process":
            if any(isinstance(source, ServingEngine) for source in sources):
                raise ValueError(
                    "The process backend builds its engines inside worker "
                    "processes; pass bundles or handles, not ServingEngine "
                    "instances"
                )
            export = export_source_spec(
                sources[0],
                max_batch_size=max_batch_size,
                use_cache=use_cache,
                timing_cache_capacity=timing_cache_capacity,
                drift_threshold=drift_threshold,
            )
            self.shards: List[ShardBase] = [
                ProcessShard(index, export, start_method=start_method)
                for index in range(len(sources))
            ]
        else:
            if len({id(source) for source in sources}) != len(sources):
                raise ValueError(
                    "Each shard needs its own source object; sharing one "
                    "source across shards would race on its predictor caches "
                    "(use from_bundle()/from_directory())"
                )

            def build_engine(source) -> ServingEngine:
                return ServingEngine(
                    source,
                    max_batch_size=max_batch_size,
                    use_cache=use_cache,
                    timing_cache_capacity=timing_cache_capacity,
                    telemetry=(
                        EngineTelemetry(drift_threshold=drift_threshold)
                        if drift_threshold is not None
                        else None
                    ),
                )

            def engine_factory(source) -> Optional[Callable[[], ServingEngine]]:
                # A restarted thread shard must NOT reuse the wedged
                # engine (a hung batch may still hold its lock); rebuild
                # from an independent copy of the source instead.
                # Pre-built engines have no retained source to rebuild
                # from, so their shards stay fail-fast on hangs.
                if isinstance(source, ServingEngine):
                    return None

                def rebuild() -> ServingEngine:
                    from repro.serving.registry import BundleHandle

                    if isinstance(source, BundleHandle):
                        fresh = BundleHandle(source.directory)
                    else:
                        fresh = copy.deepcopy(source)
                    return build_engine(fresh)

                return rebuild

            self.shards = [
                EngineShard(
                    index,
                    source
                    if isinstance(source, ServingEngine)
                    else build_engine(source),
                    engine_factory=engine_factory(source),
                )
                for index, source in enumerate(sources)
            ]
        self.max_pending = int(max_pending)
        self.backpressure = backpressure
        self._slots = threading.Semaphore(self.max_pending)
        self._request_ids = itertools.count()
        self._counters_lock = threading.Lock()
        # Makes the closed-check + enqueue atomic against close(): without
        # it a submit racing close() could land in a drained inbox and its
        # future would never resolve.
        self._lifecycle_lock = threading.Lock()
        self.n_submitted = 0
        self.n_completed = 0
        self.n_shed = 0
        self.n_rejected_unknown = 0
        self._closed = False
        self.supervisor: Optional[ShardSupervisor] = None
        if supervise:
            self.supervisor = ShardSupervisor(
                self.shards, policy=restart_policy, injector=injector
            )
            self.supervisor.attach()
        elif injector is not None:
            for shard in self.shards:
                shard.injector = injector

    # -- construction helpers -------------------------------------------------------
    @classmethod
    def from_bundle(cls, bundle, n_shards: int, **kwargs) -> "ShardedFrontend":
        """Shard an in-memory bundle.

        Thread backend: shard 0 serves ``bundle`` itself, the rest serve
        deep copies (independent models, caches and simulators).  Process
        backend: no copies — the bundle is exported once into shared
        memory and every worker maps it.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if kwargs.get("backend", "thread") == "process":
            sources = [bundle] * n_shards
        else:
            sources = [bundle] + [
                copy.deepcopy(bundle) for _ in range(n_shards - 1)
            ]
        return cls(sources, **kwargs)

    @classmethod
    def from_directory(
        cls, directory: str | Path, n_shards: int, **kwargs
    ) -> "ShardedFrontend":
        """Shard an on-disk bundle.

        Thread backend: one independent lazy
        :class:`~repro.serving.registry.BundleHandle` per shard.  Process
        backend: one handle, loaded once and exported into shared memory.
        """
        from repro.serving.registry import BundleHandle

        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if kwargs.get("backend", "thread") == "process":
            sources = [BundleHandle(directory)] * n_shards
        else:
            sources = [BundleHandle(directory) for _ in range(n_shards)]
        return cls(sources, **kwargs)

    # -- properties -----------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def in_flight(self) -> int:
        """Requests admitted by :meth:`submit` and not yet answered."""
        with self._counters_lock:
            return self.n_submitted - self.n_completed

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> None:
        """Start every shard worker (idempotent; submit() does this lazily)."""
        for shard in self.shards:
            shard.start()
        if self.supervisor is not None:
            self.supervisor.start()

    def close(self) -> None:
        """Answer everything in flight, then stop the shard workers.

        Setting the closed flag under the lifecycle lock fences out any
        in-progress :meth:`submit`: once the flag is visible, every request
        that passed the check has already been enqueued, so the shard
        drains answer it before the workers exit.
        """
        with self._lifecycle_lock:
            self._closed = True
        if self.supervisor is not None:
            self.supervisor.stop()
        for shard in self.shards:
            shard.stop()

    def __enter__(self) -> "ShardedFrontend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request path ----------------------------------------------------------------
    def _route(self, request: PlanRequest) -> ShardBase:
        primary = shard_index(request.routine, request.dims_key, len(self.shards))
        if self.supervisor is not None:
            return self.shards[self.supervisor.resolve_request(request, primary)]
        return self.shards[primary]

    @staticmethod
    def _deadline_from(timeout: Optional[float]) -> Optional[float]:
        if timeout is None:
            return None
        timeout = float(timeout)
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        return time.monotonic() + timeout

    def _admit(self) -> None:
        if self.backpressure == "block":
            self._slots.acquire()
            return
        if not self._slots.acquire(blocking=False):
            with self._counters_lock:
                self.n_shed += 1
            raise QueueFullError(
                f"{self.max_pending} requests already in flight and "
                "backpressure mode is 'reject'"
            )

    def _on_done(self, future: Future) -> None:
        self._slots.release()
        with self._counters_lock:
            self.n_completed += 1

    def submit(
        self, routine: str, timeout: Optional[float] = None, **dims: int
    ) -> PlanFuture:
        """Route one request to its shard; returns a waitable future.

        Validation happens first (bad requests raise ``ValueError`` without
        consuming an admission slot), then admission control, then the
        enqueue.  The slot is released when the future resolves — whether
        with a plan or an error.

        ``timeout`` (seconds) stamps an end-to-end deadline on the request:
        if it is still queued when the deadline passes, the drain loop
        sheds it and the future raises
        :class:`~repro.serving.shard.DeadlineExceededError` naming the
        request and shard.
        """
        try:
            request = normalize_request(
                routine, dims, next(self._request_ids),
                deadline=self._deadline_from(timeout),
            )
        except UnknownRoutineError:
            with self._counters_lock:
                self.n_rejected_unknown += 1
            raise
        self._admit()
        with self._lifecycle_lock:
            if self._closed:
                self._slots.release()  # the admission slot, no future to free it
                raise RuntimeError("ShardedFrontend is closed")
            try:
                shard = self._route(request)
            except ShardFailure:
                self._slots.release()  # never enqueued, no future to free it
                raise
            with self._counters_lock:
                self.n_submitted += 1
            future = PlanFuture(request.request_id, shard.index)
            future.add_done_callback(self._on_done)
            shard.start()
            shard.enqueue(request, future)
        return future

    def plan(
        self, routine: str, timeout: Optional[float] = None, **dims: int
    ) -> ExecutionPlan:
        """Blocking convenience: submit and wait for the plan.

        ``timeout`` both stamps the request deadline and bounds the wait.
        """
        return self.submit(routine, timeout=timeout, **dims).result(timeout)

    def plan_many(
        self,
        requests: Iterable[Tuple[str, Dict[str, int]]],
        timeout: Optional[float] = None,
    ) -> List[ExecutionPlan]:
        """Answer a whole stream synchronously; plans in request order.

        The bulk path: requests are routed into per-shard batches up front
        and the shards drain **in parallel** on a thread pool
        (:func:`repro.parallel.map_parallel`, thread backend — one worker
        per non-empty shard).  Bypasses the admission queue (the batch
        itself bounds memory) and is safe to run alongside concurrent
        :meth:`submit` traffic: the engines' locks serialise per shard.

        ``timeout`` is one end-to-end deadline for the whole stream: a
        chunk that has not started executing when it expires raises
        :class:`~repro.serving.shard.DeadlineExceededError`.
        """
        deadline = self._deadline_from(timeout)
        made = [
            normalize_request(
                routine, dims, next(self._request_ids), deadline=deadline
            )
            for routine, dims in requests
        ]
        per_shard: List[List[Tuple[int, PlanRequest]]] = [
            [] for _ in self.shards
        ]
        for slot, request in enumerate(made):
            primary = shard_index(
                request.routine, request.dims_key, len(self.shards)
            )
            if self.supervisor is not None:
                primary = self.supervisor.resolve_request(request, primary)
            per_shard[primary].append((slot, request))
        work = [
            (shard, assigned)
            for shard, assigned in zip(self.shards, per_shard)
            if assigned
        ]

        def drain(item: Tuple[ShardBase, List[Tuple[int, PlanRequest]]]):
            shard, assigned = item
            plans = shard.execute(
                [request for _, request in assigned], deadline=deadline
            )
            return [(slot, plan) for (slot, _), plan in zip(assigned, plans)]

        chunks = map_parallel(
            drain, work, n_jobs=max(1, len(work)), backend="thread"
        )
        plans: List[Optional[ExecutionPlan]] = [None] * len(made)
        for chunk in chunks:
            for slot, plan in chunk:
                plans[slot] = plan
        return plans  # type: ignore[return-value]

    def record_observation(self, plan: ExecutionPlan, observed_time: float) -> None:
        """Feed one executed call's runtime to the shard that planned it.

        Routed by the *requested* key (``fallback_from`` when a fallback
        policy substituted a model, else the plan's routine) — the same key
        :meth:`submit` routed the request by — so each shard's drift window
        sees exactly the traffic it planned.
        """
        requested = plan.fallback_from or plan.routine
        dims_key = tuple(sorted(plan.dims.items()))
        shard = self.shards[shard_index(requested, dims_key, len(self.shards))]
        shard.record_observation(plan, observed_time)

    # -- merged statistics ------------------------------------------------------------
    def reinstall_candidates(self) -> List[str]:
        """Union of every shard's drift flags (sorted)."""
        flagged = set()
        for shard in self.shards:
            flagged.update(shard.reinstall_candidates())
        return sorted(flagged)

    @staticmethod
    def _merge_cache(cache_snapshots: Sequence[Dict]) -> Dict[str, object]:
        """Merge per-shard cache snapshots into one single-engine shape."""
        merged: Dict[str, object] = {
            "cache_hits": 0,
            "cache_misses": 0,
            "model_evaluations": 0,
            "routines": {},
            "timing": {"hits": 0, "misses": 0, "size": 0, "capacity": 0},
        }
        routines: Dict[str, Dict[str, object]] = merged["routines"]
        for stats in cache_snapshots:
            for counter in ("cache_hits", "cache_misses", "model_evaluations"):
                merged[counter] += stats[counter]
            for counter in ("hits", "misses", "size", "capacity"):
                merged["timing"][counter] += stats["timing"][counter]
            for routine, entry in stats["routines"].items():
                slot = routines.setdefault(routine, {"hits": 0, "misses": 0})
                if entry.get("unloadable"):
                    slot["unloadable"] = True
                    continue
                slot["hits"] += entry["hits"]
                slot["misses"] += entry["misses"]
        for entry in routines.values():
            probes = entry.get("hits", 0) + entry.get("misses", 0)
            entry["hit_rate"] = entry.get("hits", 0) / probes if probes else 0.0
        return merged

    def cache_statistics(self) -> Dict[str, object]:
        """Shard cache counters merged into one single-engine-shaped snapshot."""
        return self._merge_cache(
            [shard.cache_statistics() for shard in self.shards]
        )

    def stats(self) -> Dict[str, object]:
        """One merged, JSON-serialisable snapshot across every shard.

        Counters sum (including ``pending``); ``mean_batch_size`` and
        per-routine error statistics are weighted by each shard's
        contribution (quantile merges are therefore approximate — exact
        per-shard values ride along under ``"per_shard"``) while
        ``max_batch_size`` and error maxima take the max; per-routine
        latency histograms sum bucket-wise (fixed buckets make this
        exact); drift flags union.  The merged block carries the same
        counter names as a single engine's snapshot — plus ``wall_time``
        / ``monotonic_time`` stamped at merge time — so consumers need
        one schema for both shapes.  Every merged value — including the
        cache block and drift flags — derives from **one**
        ``engine.stats()`` call per shard, so the snapshot is internally
        consistent (no second lock round-trip racing live traffic).
        """
        shard_snapshots = [shard.stats() for shard in self.shards]
        requests = sum(snapshot["requests"] for snapshot in shard_snapshots)
        with self._counters_lock:
            rejected_unknown = self.n_rejected_unknown
        rejected_unknown += sum(
            snapshot.get("rejected_unknown_routine", 0)
            for snapshot in shard_snapshots
        )
        batches = sum(snapshot["batches"] for snapshot in shard_snapshots)
        pending = sum(snapshot.get("pending", 0) for snapshot in shard_snapshots)
        max_batch_size = max(
            (snapshot.get("max_batch_size", 0) for snapshot in shard_snapshots),
            default=0,
        )
        routines: Dict[str, Dict[str, object]] = {}
        latency_parts: Dict[str, List[Dict]] = {}
        for snapshot in shard_snapshots:
            for routine, entry in snapshot["routines"].items():
                slot = routines.setdefault(
                    routine,
                    {
                        "routine": routine,
                        "plans": 0,
                        "cache_hits": 0,
                        "fallback_plans": 0,
                        "heuristic_plans": 0,
                        "observations": 0,
                        "invalid_observations": 0,
                        "mean_abs_rel_error": 0.0,
                        "p50_abs_rel_error": 0.0,
                        "p99_abs_rel_error": 0.0,
                        "max_abs_rel_error": 0.0,
                    },
                )
                for counter in (
                    "plans",
                    "cache_hits",
                    "fallback_plans",
                    "heuristic_plans",
                    "observations",
                    "invalid_observations",
                ):
                    slot[counter] += entry[counter]
                # Weighted by observation count so shards that saw more
                # traffic dominate the merged error, like one engine would.
                # For the quantiles this weighting is an approximation (the
                # exact merged quantile would need the raw windows).
                for stat in (
                    "mean_abs_rel_error",
                    "p50_abs_rel_error",
                    "p99_abs_rel_error",
                ):
                    slot[stat] += entry.get(stat, 0.0) * entry["observations"]
                slot["max_abs_rel_error"] = max(
                    slot["max_abs_rel_error"], entry["max_abs_rel_error"]
                )
                latency = entry.get("latency")
                if isinstance(latency, dict):
                    latency_parts.setdefault(routine, []).append(latency)
        for routine, entry in routines.items():
            if entry["observations"]:
                for stat in (
                    "mean_abs_rel_error",
                    "p50_abs_rel_error",
                    "p99_abs_rel_error",
                ):
                    entry[stat] /= entry["observations"]
            entry["cache_hit_rate"] = (
                entry["cache_hits"] / entry["plans"] if entry["plans"] else 0.0
            )
            parts = latency_parts.get(routine)
            if parts:
                merged_latency = BucketHistogram(parts[0]["bounds"])
                for part in parts:
                    merged_latency.merge_snapshot(part)
                entry["latency"] = merged_latency.snapshot()
        with self._counters_lock:
            admission = {
                "capacity": self.max_pending,
                "mode": self.backpressure,
                "submitted": self.n_submitted,
                "completed": self.n_completed,
                "in_flight": self.n_submitted - self.n_completed,
                "shed": self.n_shed,
            }
        flagged = set()
        for snapshot in shard_snapshots:
            flagged.update(snapshot["reinstall_candidates"])
        supervision = (
            self.supervisor.snapshot() if self.supervisor is not None else None
        )
        return {
            "backend": self.backend,
            "shards": len(self.shards),
            "supervision": supervision,
            "requests": requests,
            "batches": batches,
            "mean_batch_size": requests / batches if batches else 0.0,
            "max_batch_size": max_batch_size,
            "pending": pending,
            "batch_size_limit": shard_snapshots[0].get("batch_size_limit"),
            "wall_time": time.time(),
            "monotonic_time": time.monotonic(),
            "fallback_chain": self.shards[0].fallback_describe(),
            "rejected_unknown_routine": rejected_unknown,
            "reinstall_candidates": sorted(flagged),
            "routines": routines,
            "admission": admission,
            "cache": self._merge_cache(
                [snapshot["cache"] for snapshot in shard_snapshots]
            ),
            "per_shard": [shard.describe() for shard in self.shards],
        }
