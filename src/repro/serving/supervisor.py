"""Shard supervision: health checks, restarts, redispatch, circuit breaking.

PR 6 gave the sharded frontend worker *processes*; this module gives it a
*fleet discipline*.  Without supervision a SIGKILLed worker poisons its
shard forever: every routed request gets a
:class:`~repro.serving.procshard.WorkerDiedError` and the key range it
owned goes dark.  The :class:`ShardSupervisor` closes that gap:

* **Failure recovery** — when a shard's drain loop hits a
  :class:`~repro.serving.shard.ShardFailure` (dead worker process, broken
  pipe, corrupted frame, failed worker init, injected chaos), the
  supervisor restarts the backend with capped exponential backoff and
  requeues the failed batch.  The futures stay pending throughout, so
  every request is answered exactly once — by whichever worker finally
  produces the plan — and the answers are bit-identical to a sequential
  replay because plans are pure functions of their requests.
* **Shared-memory re-attachment** — a process-shard restart re-verifies
  the shared model segments before the replacement worker spawns
  (:meth:`~repro.serving.procshard.SharedSourceExport.ensure_alive`); if
  the segments died, the model state is re-exported from the retained
  source and the worker spec swapped, transparently.
* **Liveness monitoring** — a daemon monitor thread watches each shard's
  oldest in-flight batch.  Past ``hang_timeout`` a process shard's worker
  is SIGKILLed (the blocked drain thread then unblocks into the normal
  failure path); a thread shard's wedged drain worker is *abandoned*
  (generation-fenced so its late answers are suppressed, never doubled), a
  fresh engine is swapped in and the stuck batches are redispatched.
* **Circuit breaker** — after ``max_consecutive_failures`` failed
  recovery rounds a shard is quarantined: its key range is consistently
  rerouted to the surviving shards (a deterministic rehash over the live
  shard list, so a given shape still always lands on the same engine) and
  degraded-mode counters account for every rerouted request in the merged
  ``stats()``.  With no survivors left, affected requests fail loudly
  with :class:`NoHealthyShardError` — nothing ever hangs.

The supervisor is attached (or not) by the
:class:`~repro.serving.frontend.ShardedFrontend`; shards without one
behave exactly as before — failures surface on the affected futures.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.engine import PlanRequest
from repro.serving.shard import (
    DeadlineExceededError,
    ShardBase,
    ShardFailure,
    shard_index,
)
from repro.serving.telemetry import FaultTelemetry

__all__ = ["NoHealthyShardError", "RestartPolicy", "ShardSupervisor"]


class NoHealthyShardError(ShardFailure):
    """Every shard is quarantined; the request cannot be served."""


@dataclass(frozen=True)
class RestartPolicy:
    """Tunables for restart backoff, hang detection and circuit breaking.

    ``backoff_base * 2**(n-1)`` seconds (capped at ``backoff_cap``) are
    slept before the ``n``-th consecutive restart of a shard; the counter
    resets on the first healthy batch.  A shard whose consecutive failures
    exceed ``max_consecutive_failures`` is quarantined.  A batch in flight
    longer than ``hang_timeout`` seconds is declared hung; the monitor
    thread checks every ``health_interval`` seconds (defaults to a quarter
    of the hang timeout, bounded to [0.05s, 1s]).

    ``hang_timeout`` must comfortably exceed worker *startup* time: the
    in-flight clock starts at dispatch, and a process shard's first batch
    spawns the worker (~1-2s of interpreter + import in the child).  Set
    it too low and the monitor SIGKILLs replacements mid-spawn, turning
    every recovery into another failure until the breaker trips.
    """

    max_consecutive_failures: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    hang_timeout: float = 30.0
    health_interval: Optional[float] = None

    def __post_init__(self):
        if self.max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be at least 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")

    @property
    def monitor_interval(self) -> float:
        if self.health_interval is not None:
            return float(self.health_interval)
        return min(1.0, max(0.05, self.hang_timeout / 4.0))

    def backoff(self, consecutive_failures: int) -> float:
        return min(
            self.backoff_base * (2 ** max(0, consecutive_failures - 1)),
            self.backoff_cap,
        )


class ShardSupervisor:
    """Keeps a :class:`~repro.serving.frontend.ShardedFrontend`'s shards alive.

    One instance per frontend.  :meth:`attach` wires itself (and the
    optional fault injector) into every shard; :meth:`start` spawns the
    liveness monitor.  All mutable per-shard state lives in
    :class:`~repro.serving.telemetry.FaultTelemetry` records guarded by one
    supervisor lock — the drain threads, bulk callers and the monitor all
    report through it.
    """

    def __init__(
        self,
        shards: Sequence[ShardBase],
        policy: Optional[RestartPolicy] = None,
        injector=None,
    ):
        if not shards:
            raise ValueError("ShardSupervisor needs at least one shard")
        self.shards = list(shards)
        self.policy = policy or RestartPolicy()
        self.injector = injector
        self._lock = threading.Lock()
        self._states = [FaultTelemetry(shard.index) for shard in self.shards]
        self._lifecycle = threading.Lock()
        self._monitor: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        # Last hang intervention per shard: the monitor must not re-kick a
        # shard every tick while one long recovery is still unwinding.
        self._hang_kicked: Dict[int, float] = {}

    # -- wiring --------------------------------------------------------------------
    def attach(self) -> "ShardSupervisor":
        for shard in self.shards:
            shard.supervisor = self
            if self.injector is not None:
                shard.injector = self.injector
        return self

    def start(self) -> None:
        with self._lifecycle:
            if self._monitor is None:
                self._stop_event = threading.Event()
                monitor = threading.Thread(
                    target=self._monitor_loop,
                    name="adsala-supervisor",
                    daemon=True,
                )
                self._monitor = monitor
                monitor.start()

    def stop(self) -> None:
        with self._lifecycle:
            monitor = self._monitor
            if monitor is not None:
                self._stop_event.set()
                monitor.join()
                self._monitor = None

    # -- routing -------------------------------------------------------------------
    def live_indices(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(
                index
                for index, state in enumerate(self._states)
                if not state.quarantined
            )

    def resolve_request(self, request: PlanRequest, primary: int) -> int:
        """Shard index that should serve ``request`` (primary unless dark).

        A quarantined primary's traffic is rehashed deterministically over
        the *live* shard list — stable for a given quarantine set, so a
        problem shape keeps landing on one survivor and its caches stay
        hot.  Counts the reroute against the quarantined shard.
        """
        state = self._states[primary]
        if not state.quarantined:
            return primary
        live = self.live_indices()
        if not live:
            raise NoHealthyShardError(
                f"request {request.request_id}: every shard is quarantined"
            )
        target = live[shard_index(request.routine, request.dims_key, len(live))]
        with self._lock:
            state.n_rerouted += 1
        return target

    # -- recovery core -------------------------------------------------------------
    def on_batch_success(self, shard: ShardBase) -> None:
        """Called by a shard after each healthy batch; closes failure episodes."""
        state = self._states[shard.index]
        if state.consecutive_failures == 0 and state.failure_started is None:
            return
        with self._lock:
            state.consecutive_failures = 0
            if state.failure_started is not None:
                state.recovery.add(time.monotonic() - state.failure_started)
                state.failure_started = None

    def _recover(self, shard: ShardBase, exc: BaseException) -> str:
        """Record one failure; restart with backoff or quarantine.

        Returns ``"restarted"`` or ``"quarantined"``.  A restart that
        itself raises is left for the next dispatch to surface — the
        consecutive-failure counter bounds the loop either way.
        """
        state = self._states[shard.index]
        with self._lock:
            state.n_failures += 1
            state.consecutive_failures += 1
            state.last_error = repr(exc)
            if state.failure_started is None:
                state.failure_started = time.monotonic()
            failures = state.consecutive_failures
            quarantine = failures > self.policy.max_consecutive_failures
            newly_quarantined = quarantine and not state.quarantined
            if quarantine:
                state.quarantined = True
        if quarantine:
            if newly_quarantined:
                warnings.warn(
                    f"shard {shard.index} quarantined after {failures - 1} "
                    f"consecutive restart failures (last: {exc!r}); its key "
                    "range is rerouted to surviving shards",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return "quarantined"
        delay = self.policy.backoff(failures)
        if delay > 0:
            time.sleep(delay)
        try:
            shard.restart()
        except Exception as restart_exc:
            with self._lock:
                state.last_error = f"restart failed: {restart_exc!r}"
        else:
            with self._lock:
                state.n_restarts += 1
        return "restarted"

    def on_batch_failure(
        self,
        shard: ShardBase,
        batch: List[Tuple[PlanRequest, object]],
        exc: ShardFailure,
    ) -> None:
        """Drain-loop path: restart and requeue, or reroute on quarantine.

        The futures are *not* failed — they ride back onto an inbox and
        resolve when a healthy worker answers them.  Only with every shard
        quarantined do they fail, with :class:`NoHealthyShardError`.
        """
        outcome = self._recover(shard, exc)
        state = self._states[shard.index]
        if outcome == "quarantined":
            self._reroute_batch(shard, batch, exc)
            return
        with self._lock:
            state.n_redispatched += len(batch)
        shard.requeue(batch)
        shard.start()

    def _reroute_batch(
        self,
        shard: ShardBase,
        batch: List[Tuple[PlanRequest, object]],
        exc: BaseException,
    ) -> None:
        state = self._states[shard.index]
        for request, future in batch:
            try:
                target_index = self.resolve_request(request, shard.index)
            except NoHealthyShardError as dead_end:
                dead_end.__cause__ = exc
                shard._resolve(future, error=dead_end)
                continue
            with self._lock:
                state.n_redispatched += 1
            target = self.shards[target_index]
            target.start()
            target.enqueue(request, future)

    def execute_batch(
        self,
        shard: ShardBase,
        requests: Sequence[PlanRequest],
        deadline: Optional[float] = None,
    ) -> List:
        """Bulk path: one micro-batch with restart/quarantine recovery.

        Loops dispatch → recover until the batch is answered, the deadline
        passes, or the shard quarantines (then the requests re-split over
        the survivors and drain through *their* supervised bulk paths).
        """
        requests = list(requests)
        while True:
            state = self._states[shard.index]
            if state.quarantined:
                return self._execute_rerouted(shard, requests, deadline)
            if deadline is not None and time.monotonic() > deadline:
                raise DeadlineExceededError(
                    f"request {requests[0].request_id} missed its deadline "
                    f"during failure recovery on shard {shard.index}"
                )
            try:
                plans = shard._dispatch(requests)
            except ShardFailure as exc:
                self._recover(shard, exc)
                continue
            self.on_batch_success(shard)
            return plans

    def _execute_rerouted(
        self,
        shard: ShardBase,
        requests: Sequence[PlanRequest],
        deadline: Optional[float],
    ) -> List:
        state = self._states[shard.index]
        groups: Dict[int, List[PlanRequest]] = {}
        for request in requests:
            groups.setdefault(
                self.resolve_request(request, shard.index), []
            ).append(request)
        with self._lock:
            state.n_redispatched += len(requests)
        by_id = {}
        for target_index, grouped in groups.items():
            target = self.shards[target_index]
            for request, plan in zip(
                grouped, target.execute(grouped, deadline=deadline)
            ):
                by_id[request.request_id] = plan
        return [by_id[request.request_id] for request in requests]

    # -- liveness monitor ----------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.policy.monitor_interval):
            self.check_health()

    def check_health(self) -> None:
        """One liveness sweep: declare and recover hung shards."""
        now = time.monotonic()
        for shard in self.shards:
            state = self._states[shard.index]
            if state.quarantined:
                continue
            stalled = shard.stalled_for(now)
            if stalled is None or stalled <= self.policy.hang_timeout:
                continue
            kicked = self._hang_kicked.get(shard.index)
            if kicked is not None and now - kicked < self.policy.hang_timeout:
                continue  # one long recovery is still unwinding
            self._hang_kicked[shard.index] = now
            self._recover_hung(shard, stalled)

    def _recover_hung(self, shard: ShardBase, stalled: float) -> None:
        state = self._states[shard.index]
        with self._lock:
            state.n_hangs += 1
            state.last_error = (
                f"hung batch: in flight {stalled:.2f}s "
                f"(> hang_timeout {self.policy.hang_timeout:.2f}s)"
            )
            if state.failure_started is None:
                state.failure_started = time.monotonic()
        if shard.backend == "process":
            # Kill the wedged worker; the drain thread blocked on the pipe
            # unblocks with EOF and the normal ShardFailure recovery path
            # (restart + redispatch) takes over from there.
            pid = shard.worker_pid
            if pid is not None and pid != os.getpid():
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError, OSError):
                    pass
            return
        # Thread shard: a wedged drain thread cannot be killed — abandon it
        # (generation fencing suppresses its late answers), swap in a fresh
        # engine and redispatch the stuck batches on a replacement worker.
        batches = shard.abandon_worker()
        try:
            shard.restart()
        except Exception as restart_exc:
            with self._lock:
                state.last_error = f"restart failed: {restart_exc!r}"
        else:
            with self._lock:
                state.n_restarts += 1
        redispatched = sum(len(batch) for batch in batches)
        if redispatched:
            with self._lock:
                state.n_redispatched += redispatched
            for batch in batches:
                shard.requeue(batch)
        shard.start()

    # -- observability --------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable supervision block for the merged stats."""
        with self._lock:
            per_shard = [
                dict(
                    state.snapshot(),
                    deadline_expired=shard.n_deadline_expired,
                    duplicate_answers=shard.n_duplicate_answers,
                )
                for shard, state in zip(self.shards, self._states)
            ]
        quarantined = [entry["index"] for entry in per_shard if entry["quarantined"]]
        recovery_counts = sum(entry["recovery"]["count"] for entry in per_shard)
        recovery_mean = (
            sum(
                entry["recovery"]["mean"] * entry["recovery"]["count"]
                for entry in per_shard
            )
            / recovery_counts
            if recovery_counts
            else 0.0
        )
        merged: Dict[str, object] = {
            "failures": sum(entry["failures"] for entry in per_shard),
            "restarts": sum(entry["restarts"] for entry in per_shard),
            "redispatched": sum(entry["redispatched"] for entry in per_shard),
            "rerouted": sum(entry["rerouted"] for entry in per_shard),
            "hangs": sum(entry["hangs"] for entry in per_shard),
            "deadline_expired": sum(
                entry["deadline_expired"] for entry in per_shard
            ),
            "duplicate_answers": sum(
                entry["duplicate_answers"] for entry in per_shard
            ),
            "quarantined": quarantined,
            "healthy_shards": len(per_shard) - len(quarantined),
            "recovery_episodes": recovery_counts,
            "recovery_mean_s": recovery_mean,
            "recovery_max_s": max(
                (entry["recovery"]["max"] for entry in per_shard), default=0.0
            ),
            "policy": {
                "max_consecutive_failures": self.policy.max_consecutive_failures,
                "backoff_base": self.policy.backoff_base,
                "backoff_cap": self.policy.backoff_cap,
                "hang_timeout": self.policy.hang_timeout,
            },
            "per_shard": per_shard,
        }
        if self.injector is not None:
            merged["injected"] = self.injector.snapshot()
        return merged
