"""Production serving layer on top of the ADSALA core.

The paper splits ADSALA into an offline installer (Fig. 1a) and a runtime
predictor (Fig. 1b).  This subpackage turns the runtime half into a serving
engine fit for heavy traffic:

* :mod:`repro.serving.registry` — a versioned model registry over on-disk
  bundles: lazy per-routine loading, several platforms/bundle versions side
  by side, and hot-reload of a re-installed bundle directory.
* :mod:`repro.serving.engine` — a micro-batching plan server: requests are
  queued, coalesced per routine and answered through one
  ``predict_threads_batch`` / ``time_batch`` pass instead of N scalar
  ``plan()`` calls.  Thread-safe behind one coarse engine lock.
* :mod:`repro.serving.frontend` / :mod:`repro.serving.shard` — the
  concurrent sharded frontend: traffic partitioned across N engine shards
  by a deterministic ``(routine, dims_key)`` hash, waitable ``submit()``
  futures, bounded admission control (block or reject backpressure) and
  merged cross-shard statistics.
* :mod:`repro.serving.fallback` — the composable fallback-policy chain
  (installed precision → cross precision → max-threads heuristic) that
  decides which installed model serves a request.
* :mod:`repro.serving.supervisor` / :mod:`repro.serving.faults` — fault
  tolerance: shard health monitoring, dead/hung-worker restart with capped
  exponential backoff, exactly-once redispatch of stranded requests,
  circuit-breaker quarantine with deterministic rerouting, and a seeded
  fault-injection harness for chaos testing.
* :mod:`repro.serving.telemetry` — online observed-vs-predicted error
  tracking, rolling drift statistics and re-install flagging.
* :mod:`repro.serving.workload` — synthetic request streams (uniform /
  cycling / skewed) and JSONL workload files for ``adsala serve`` and the
  throughput benchmark.

:class:`~repro.core.runtime.AdsalaRuntime` and
:class:`~repro.core.runtime.AdsalaBlas` remain the stable public facade;
they delegate to a private :class:`~repro.serving.engine.ServingEngine`.
"""

from repro.serving.fallback import (
    CrossPrecisionPolicy,
    FallbackChain,
    FallbackPolicy,
    InstalledPrecisionPolicy,
    MaxThreadsPolicy,
    RoutineResolution,
    UnservableRoutineError,
    default_runtime_chain,
    default_serving_chain,
)
from repro.serving.telemetry import (
    EngineTelemetry,
    FaultTelemetry,
    RollingStats,
    RoutineTelemetry,
    ShapeHistogram,
    TrafficRecord,
)
from repro.serving.registry import BundleHandle, ModelRegistry
from repro.serving.engine import PlanRequest, ServingEngine, normalize_request
from repro.serving.frontend import (
    PlanFuture,
    QueueFullError,
    ShardedFrontend,
    shard_index,
)
from repro.serving.shard import (
    DeadlineExceededError,
    EngineShard,
    ShardFailure,
)
from repro.serving.procshard import (
    FrameCorruptionError,
    ProcessShard,
    WorkerDiedError,
    WorkerInitError,
)
from repro.serving.supervisor import (
    NoHealthyShardError,
    RestartPolicy,
    ShardSupervisor,
)
from repro.serving.faults import FaultInjector, InjectedFault, parse_fault_spec
from repro.serving.workload import (
    WorkloadRequest,
    append_jsonl,
    generate_workload,
    load_workload,
    read_jsonl,
    save_workload,
)

__all__ = [
    "FallbackPolicy",
    "FallbackChain",
    "InstalledPrecisionPolicy",
    "CrossPrecisionPolicy",
    "MaxThreadsPolicy",
    "RoutineResolution",
    "UnservableRoutineError",
    "default_runtime_chain",
    "default_serving_chain",
    "RollingStats",
    "ShapeHistogram",
    "TrafficRecord",
    "RoutineTelemetry",
    "EngineTelemetry",
    "BundleHandle",
    "ModelRegistry",
    "PlanRequest",
    "ServingEngine",
    "normalize_request",
    "EngineShard",
    "ProcessShard",
    "ShardedFrontend",
    "PlanFuture",
    "QueueFullError",
    "shard_index",
    "ShardFailure",
    "DeadlineExceededError",
    "WorkerDiedError",
    "WorkerInitError",
    "FrameCorruptionError",
    "NoHealthyShardError",
    "ShardSupervisor",
    "RestartPolicy",
    "FaultInjector",
    "InjectedFault",
    "parse_fault_spec",
    "FaultTelemetry",
    "WorkloadRequest",
    "generate_workload",
    "load_workload",
    "save_workload",
    "read_jsonl",
    "append_jsonl",
]
