"""Synthetic request streams and workload files for the serving engine.

``adsala serve`` and the throughput benchmark need realistic mixes of plan
requests.  Three generators cover the serving regimes the engine's design
targets:

* ``uniform`` — every request draws a fresh routine and fresh dimensions:
  the cache-hostile regime where micro-batching does all the work.
* ``cycling`` — a small pool of shapes repeats back to back, the iterative
  solver pattern the predictor's LRU cache was built for.
* ``skewed`` — a Zipf-like mix over a medium pool with one hot routine:
  the realistic middle ground (a few hot shapes, a long tail).

Workloads serialize to JSON-lines files (one ``{"routine": ..., "dims":
{...}}`` object per line) so request streams can be captured, replayed and
checked into benchmarks.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.blas.api import parse_routine

# Canonical home is the observability package now (the run journal
# generalizes them); re-exported here because workload replay and long
# -standing callers import them from this module.
from repro.obs.journal import append_jsonl, read_jsonl

__all__ = [
    "WorkloadRequest",
    "DISTRIBUTIONS",
    "generate_workload",
    "save_workload",
    "load_workload",
    "read_jsonl",
    "append_jsonl",
]

DISTRIBUTIONS = ("uniform", "cycling", "skewed")


@dataclass(frozen=True)
class WorkloadRequest:
    """One replayable plan request."""

    routine: str
    dims: Dict[str, int]

    def as_tuple(self) -> Tuple[str, Dict[str, int]]:
        return self.routine, self.dims

    def to_json(self) -> str:
        return json.dumps({"routine": self.routine, "dims": self.dims})

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkloadRequest":
        """Build a request from a parsed JSONL row.

        Unknown fields are ignored (a captured stream may carry extra
        metadata — timestamps, request ids — that replay does not need).
        """
        dims = data["dims"]
        if not isinstance(dims, dict):
            raise KeyError("dims")
        return cls(
            routine=str(data["routine"]),
            dims={k: int(v) for k, v in dims.items()},
        )

    @classmethod
    def from_json(cls, line: str) -> "WorkloadRequest":
        return cls.from_dict(json.loads(line))


def _random_dims(
    rng: np.random.Generator, dim_names: Sequence[str], min_dim: int, max_dim: int
) -> Dict[str, int]:
    return {name: int(rng.integers(min_dim, max_dim + 1)) for name in dim_names}


def generate_workload(
    routines: Sequence[str],
    n_requests: int,
    distribution: str = "uniform",
    seed: int = 0,
    min_dim: int = 64,
    max_dim: int = 1024,
    pool_size: int = 8,
) -> List[WorkloadRequest]:
    """Generate a mixed-routine request stream.

    Parameters
    ----------
    routines:
        Routine keys to draw from (e.g. the bundle's installed routines).
    n_requests:
        Length of the stream.
    distribution:
        ``"uniform"``, ``"cycling"`` or ``"skewed"`` (see module docstring).
    pool_size:
        Number of distinct (routine, shape) combinations for the cycling
        pool; the skewed pool uses ``4 * pool_size``.
    """
    if not routines:
        raise ValueError("routines must not be empty")
    if n_requests < 1:
        raise ValueError("n_requests must be at least 1")
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"Unknown distribution {distribution!r}; pick one of {DISTRIBUTIONS}"
        )
    rng = np.random.default_rng(seed)
    specs = {}
    for routine in routines:
        prefix, base, spec = parse_routine(routine)
        specs[prefix + base] = spec
    keys = sorted(specs)

    def fresh_request() -> WorkloadRequest:
        key = keys[int(rng.integers(len(keys)))]
        return WorkloadRequest(
            key, _random_dims(rng, specs[key].dim_names, min_dim, max_dim)
        )

    if distribution == "uniform":
        return [fresh_request() for _ in range(n_requests)]

    if distribution == "cycling":
        pool = [fresh_request() for _ in range(min(pool_size, n_requests))]
        return [pool[i % len(pool)] for i in range(n_requests)]

    # skewed: Zipf-like weights over a larger pool, hottest entries first.
    pool = [fresh_request() for _ in range(4 * pool_size)]
    ranks = np.arange(1, len(pool) + 1, dtype=float)
    weights = 1.0 / ranks
    weights /= weights.sum()
    choices = rng.choice(len(pool), size=n_requests, p=weights)
    return [pool[int(c)] for c in choices]


def save_workload(path: str | Path, requests: Sequence[WorkloadRequest]) -> Path:
    """Write a request stream as JSON lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for request in requests:
            handle.write(request.to_json() + "\n")
    return path


def load_workload(path: str | Path, strict: bool = False) -> List[WorkloadRequest]:
    """Read a JSON-lines request stream written by :func:`save_workload`.

    Malformed lines and rows missing ``routine``/``dims`` are skipped with a
    :class:`RuntimeWarning` by default (unknown extra fields are always
    ignored); ``strict=True`` turns them into a ``ValueError`` that reports
    the offending line number.
    """
    requests: List[WorkloadRequest] = []
    for line_number, row in read_jsonl(path, strict=strict):
        try:
            requests.append(WorkloadRequest.from_dict(row))
        except (KeyError, TypeError, ValueError) as exc:
            if strict:
                raise ValueError(
                    f"{path}:{line_number}: not a valid workload line: {exc}"
                ) from exc
            warnings.warn(
                f"{path}:{line_number}: skipping invalid workload line ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
    return requests
