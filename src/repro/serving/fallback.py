"""Composable fallback policies for routing plan requests to models.

Historically :meth:`AdsalaRuntime.plan` hard-coded one branch: if the
requested precision of a routine was not installed, silently try the other
precision.  The serving layer replaces that branch with an explicit chain of
:class:`FallbackPolicy` objects evaluated in order; the first one that
resolves the request wins, and the resolution records *which* policy served
it so the substitution is visible on the resulting
:class:`~repro.core.runtime.ExecutionPlan` (``fallback_from`` / ``policy``).

Built-in policies:

* :class:`InstalledPrecisionPolicy` — serve the routine exactly as
  requested, if installed.
* :class:`CrossPrecisionPolicy` — serve ``sgemm`` with the ``dgemm`` model
  (and vice versa): the runtime-vs-threads structure of the two precisions
  is close enough for a sensible plan, and refusing the call would be worse.
* :class:`MaxThreadsPolicy` — last resort for routines with no trained
  model at all: fall back to the platform's maximum thread count (the
  vendor-BLAS default the paper benchmarks against).  No prediction is
  involved, so the plan's predicted time equals its baseline time.

Two ready-made chains are provided: :func:`default_runtime_chain` (the
facade's historical behaviour — raises for fully unknown routines) and
:func:`default_serving_chain` (adds the max-threads last resort so a serving
engine never rejects a syntactically valid request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.blas.api import parse_routine

__all__ = [
    "RoutineResolution",
    "UnservableRoutineError",
    "FallbackPolicy",
    "InstalledPrecisionPolicy",
    "CrossPrecisionPolicy",
    "MaxThreadsPolicy",
    "FallbackChain",
    "default_runtime_chain",
    "default_serving_chain",
]


class UnservableRoutineError(KeyError):
    """No policy in the fallback chain could serve the requested routine."""


@dataclass(frozen=True)
class RoutineResolution:
    """Outcome of routing one request through the fallback chain.

    Attributes
    ----------
    requested:
        The normalized requested routine key (e.g. ``"sgemm"``).
    key:
        The installed routine key that actually serves the request — equal
        to ``requested`` unless a substitution happened.
    policy:
        Name of the policy that resolved the request.
    heuristic:
        True when no trained model backs the resolution (max-threads path).
    """

    requested: str
    key: str
    policy: str
    heuristic: bool = False

    @property
    def fallback_from(self) -> Optional[str]:
        """The requested key when a substitution happened, else ``None``."""
        return self.requested if self.key != self.requested else None


class FallbackPolicy:
    """One link in the fallback chain.

    Subclasses implement :meth:`resolve`, returning a
    :class:`RoutineResolution` when they can serve the request and ``None``
    to pass it on to the next policy.  ``source`` is anything exposing the
    bundle protocol (``routines`` mapping, ``platform``) — an
    :class:`~repro.core.install.InstallationBundle` or a registry
    :class:`~repro.serving.registry.BundleHandle`.
    """

    name = "abstract"

    def resolve(self, requested: str, source) -> Optional[RoutineResolution]:
        raise NotImplementedError


class InstalledPrecisionPolicy(FallbackPolicy):
    """Serve the routine exactly as requested when its model is installed."""

    name = "installed"

    def resolve(self, requested: str, source) -> Optional[RoutineResolution]:
        if requested in source.routines:
            return RoutineResolution(requested=requested, key=requested, policy=self.name)
        return None


class CrossPrecisionPolicy(FallbackPolicy):
    """Serve one precision with the other precision's model."""

    name = "cross-precision"

    def resolve(self, requested: str, source) -> Optional[RoutineResolution]:
        prefix, base = requested[0], requested[1:]
        if prefix not in ("s", "d"):
            return None
        other = ("d" if prefix == "s" else "s") + base
        if other in source.routines:
            return RoutineResolution(requested=requested, key=other, policy=self.name)
        return None


class MaxThreadsPolicy(FallbackPolicy):
    """Serve any valid routine with the platform's maximum thread count."""

    name = "max-threads"

    def resolve(self, requested: str, source) -> Optional[RoutineResolution]:
        return RoutineResolution(
            requested=requested, key=requested, policy=self.name, heuristic=True
        )


class FallbackChain:
    """Ordered list of policies; the first resolution wins."""

    def __init__(self, policies: Sequence[FallbackPolicy]):
        if not policies:
            raise ValueError("FallbackChain needs at least one policy")
        self.policies: List[FallbackPolicy] = list(policies)

    def resolve(self, routine: str, source) -> RoutineResolution:
        """Normalize ``routine`` and route it through the chain.

        Raises :class:`UnservableRoutineError` (a :class:`KeyError`) when no
        policy resolves the request.
        """
        prefix, base, _ = parse_routine(routine)
        requested = prefix + base
        for policy in self.policies:
            resolution = policy.resolve(requested, source)
            if resolution is not None:
                return resolution
        from repro.routines.catalog import get_catalog

        raise UnservableRoutineError(
            f"Routine {requested!r} was not installed and no fallback policy "
            f"({[p.name for p in self.policies]}) could serve it; installed: "
            f"{sorted(source.routines)}; registered routine keys: "
            f"{sorted(get_catalog().keys())}"
        )

    def describe(self) -> str:
        return " -> ".join(policy.name for policy in self.policies)


def default_runtime_chain() -> FallbackChain:
    """The facade's historical behaviour: installed, then cross-precision."""
    return FallbackChain([InstalledPrecisionPolicy(), CrossPrecisionPolicy()])


def default_serving_chain() -> FallbackChain:
    """Serving default: never reject a valid request (max-threads last resort)."""
    return FallbackChain(
        [InstalledPrecisionPolicy(), CrossPrecisionPolicy(), MaxThreadsPolicy()]
    )
