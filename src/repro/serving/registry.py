"""Versioned model registry over on-disk installation bundles.

A production deployment keeps many bundles around: one per platform, and
several *bundle versions* per platform as models are periodically
re-installed.  The registry is the serving layer's view of that store:

* :class:`BundleHandle` wraps one bundle directory.  Only the manifest
  (``bundle.json``) is read eagerly; each routine's model pickle is loaded
  lazily on first use, so a registry over dozens of bundles starts
  instantly.  The handle exposes the same protocol the engine needs from an
  in-memory :class:`~repro.core.install.InstallationBundle` (``routines``
  mapping, ``predictor()``, ``platform``, ``simulator``).
* :class:`ModelRegistry` maps names/platforms/versions to handles, picks
  the highest ``bundle_version`` by default, and hot-reloads: when a bundle
  directory is re-written on disk (the manifest fingerprint changes),
  :meth:`ModelRegistry.refresh` drops the stale lazy state without a
  restart.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional

from repro.core.install import RoutineInstallation
from repro.core.persistence import (
    BundleFormatError,
    load_routine,
    manifest_fingerprint,
    manifest_schema_version,
    read_manifest,
    simulator_from_settings,
    verify_bundle,
)
from repro.core.predictor import ThreadPredictor
from repro.machine.platforms import get_platform

__all__ = ["BundleHandle", "ModelRegistry"]


class _LazyRoutines(Mapping):
    """Mapping view over a handle's routines that loads models on access.

    Membership tests and iteration use only the manifest; ``[]`` triggers
    the (cached) per-routine model load.
    """

    def __init__(self, handle: "BundleHandle"):
        self._handle = handle

    def __contains__(self, routine: object) -> bool:
        # O(1) dict probe: the fallback chain runs this per request on the
        # serving hot path.
        return routine in self._handle.manifest["routines"]

    def __iter__(self) -> Iterator[str]:
        return iter(self._handle.installed_routines)

    def __len__(self) -> int:
        return len(self._handle.manifest["routines"])

    def __getitem__(self, routine: str) -> RoutineInstallation:
        return self._handle.installation(routine)


class BundleHandle:
    """One on-disk bundle, manifest eagerly parsed, models lazily loaded."""

    def __init__(
        self,
        directory: str | Path,
        name: Optional[str] = None,
        verify_checksums: bool = True,
    ):
        self.directory = Path(directory)
        self.name = name or self.directory.name
        self.verify_checksums = verify_checksums
        self._loaded: Dict[str, RoutineInstallation] = {}
        self._read_manifest()

    def _read_manifest(self) -> None:
        # Parse everything into locals first: if any step raises (e.g. a
        # manifest caught mid-rewrite), the handle keeps its previous,
        # consistent state and a later reload can retry.
        manifest = read_manifest(self.directory)
        fingerprint = manifest_fingerprint(self.directory)
        platform = get_platform(manifest["platform"])
        settings = manifest.get("settings", {}) or {}
        simulator = simulator_from_settings(platform, settings)
        self.manifest = manifest
        self.fingerprint = fingerprint
        self.platform = platform
        self.settings = settings
        self.simulator = simulator

    # -- manifest-level metadata (no model loads) ---------------------------------
    @property
    def schema_version(self) -> int:
        return manifest_schema_version(self.manifest)

    @property
    def bundle_version(self) -> int:
        return int(self.manifest.get("bundle_version", 1))

    @property
    def installed_routines(self) -> List[str]:
        return sorted(self.manifest["routines"])

    @property
    def loaded_routines(self) -> List[str]:
        """Routines whose models are materialised in memory right now."""
        return sorted(self._loaded)

    @property
    def routines(self) -> _LazyRoutines:
        return _LazyRoutines(self)

    # -- lazy loading ------------------------------------------------------------
    def installation(self, routine: str) -> RoutineInstallation:
        key = routine.lower()
        cached = self._loaded.get(key)
        if cached is not None:
            return cached
        meta = self.manifest["routines"].get(key)
        if meta is None:
            raise KeyError(
                f"Routine {routine!r} was not installed; available: "
                f"{self.installed_routines}"
            )
        installation = load_routine(
            self.directory,
            key,
            meta,
            self.platform,
            verify_checksum=self.verify_checksums,
        )
        # Build the fused prediction kernel while we are already paying the
        # load cost, so the routine's first request is served at steady-state
        # latency instead of triggering the compile.
        installation.predictor.compile()
        self._loaded[key] = installation
        return installation

    def predictor(self, routine: str) -> ThreadPredictor:
        return self.installation(routine).predictor

    # -- hot reload ---------------------------------------------------------------
    def is_stale(self) -> bool:
        """True when the on-disk manifest no longer matches what was read."""
        try:
            return manifest_fingerprint(self.directory) != self.fingerprint
        except FileNotFoundError:
            return True

    def reload(self, force: bool = False) -> bool:
        """Re-read the manifest and drop lazily loaded models if changed.

        Raises :class:`~repro.core.persistence.BundleFormatError` if the
        on-disk manifest is unreadable; the handle then keeps serving its
        previous state and the reload can be retried.
        """
        if not force and not self.is_stale():
            return False
        self._read_manifest()
        self._loaded.clear()
        return True

    # -- maintenance --------------------------------------------------------------
    def verify(self) -> dict:
        """Checksum-verify the on-disk bundle (see :func:`verify_bundle`)."""
        return verify_bundle(self.directory)

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "directory": str(self.directory),
            "platform": self.platform.name,
            "schema_version": self.schema_version,
            "bundle_version": self.bundle_version,
            "routines": self.installed_routines,
            "loaded": self.loaded_routines,
        }


class ModelRegistry:
    """Registry of bundle handles keyed by name, platform and version."""

    def __init__(self, root: str | Path | None = None):
        self._handles: Dict[str, BundleHandle] = {}
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.scan()

    # -- registration -------------------------------------------------------------
    def register(
        self, directory: str | Path, name: Optional[str] = None
    ) -> BundleHandle:
        """Register (or re-register) one bundle directory and return its handle."""
        handle = BundleHandle(directory, name=name)
        self._handles[handle.name] = handle
        return handle

    def scan(self, root: str | Path | None = None) -> List[str]:
        """Register every bundle directory under ``root`` (non-recursive).

        A directory counts as a bundle when it contains ``bundle.json``;
        ``root`` itself may be a bundle.  Returns the newly registered names.

        A directory already registered — under *any* name, including a
        custom ``register(name=...)`` alias — is never registered a second
        time: the guard compares resolved directories, not handle names, so
        a ``refresh()`` cannot create a duplicate handle (with its own lazy
        model cache) for a bundle that is already being served.
        """
        root = Path(root) if root is not None else self.root
        if root is None:
            raise ValueError("No root directory configured for this registry")
        added: List[str] = []
        registered_dirs = {
            handle.directory.resolve() for handle in self._handles.values()
        }
        candidates = [root] + sorted(p for p in root.iterdir() if p.is_dir())
        for candidate in candidates:
            if not (candidate / "bundle.json").exists():
                continue
            if candidate.resolve() in registered_dirs:
                continue
            handle = self.register(candidate)
            registered_dirs.add(handle.directory.resolve())
            added.append(candidate.name)
        return added

    # -- lookup -------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._handles)

    def get(
        self,
        name: Optional[str] = None,
        platform: Optional[str] = None,
        version: Optional[int] = None,
    ) -> BundleHandle:
        """Look up a handle by name, or by platform (+ optional version).

        Without ``version`` the highest ``bundle_version`` for the platform
        wins; without ``platform`` either, the registry must hold exactly
        one bundle.
        """
        if name is not None:
            try:
                return self._handles[name]
            except KeyError:
                raise KeyError(
                    f"No bundle named {name!r}; registered: {self.names()}"
                ) from None
        handles = list(self._handles.values())
        if platform is not None:
            handles = [h for h in handles if h.platform.name == platform]
        if version is not None:
            handles = [h for h in handles if h.bundle_version == version]
        if not handles:
            raise KeyError(
                f"No bundle matches platform={platform!r} version={version!r}; "
                f"registered: {self.names()}"
            )
        if version is None:
            handles.sort(key=lambda h: (h.bundle_version, h.name))
            if platform is None and len({h.platform.name for h in handles}) > 1:
                raise KeyError(
                    "Several platforms registered; pass name= or platform= "
                    f"to disambiguate: {self.names()}"
                )
            return handles[-1]
        if len(handles) > 1:
            raise KeyError(
                f"Several bundles match platform={platform!r} "
                f"version={version!r}: {[h.name for h in handles]}"
            )
        return handles[0]

    # -- hot reload ---------------------------------------------------------------
    def refresh(self) -> Dict[str, str]:
        """Hot-reload: pick up changed, new and deleted bundles.

        Returns a ``{name: "reloaded" | "added" | "removed" | "error"}``
        report for every handle whose state changed.  ``"error"`` marks a
        bundle whose manifest was unreadable (e.g. caught mid-rewrite);
        the handle keeps its previous state and the next refresh retries.
        """
        report: Dict[str, str] = {}
        for bundle_name, handle in list(self._handles.items()):
            if not (handle.directory / "bundle.json").exists():
                del self._handles[bundle_name]
                report[bundle_name] = "removed"
                continue
            try:
                if handle.reload():
                    report[bundle_name] = "reloaded"
            except BundleFormatError:
                report[bundle_name] = "error"
        if self.root is not None:
            for bundle_name in self.scan():
                report[bundle_name] = "added"
        return report

    def describe(self) -> List[Dict[str, object]]:
        return [self._handles[bundle_name].describe() for bundle_name in self.names()]
