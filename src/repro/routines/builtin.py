"""The BLAS Level 3 built-ins, re-homed as the catalog's first plugin.

These are the paper's Table I routine specifications, unchanged: the same
operand tables, the same FLOPs and memory-footprint lambdas (operation
order included — the feature pipeline and native column program depend on
their exact floating-point association).  :mod:`repro.blas.api` re-exports
:data:`ROUTINE_SPECS` so existing imports keep working.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.routines.plugin import RoutinePlugin
from repro.routines.spec import OperandSpec, RoutineSpec

__all__ = ["ROUTINE_SPECS", "BuiltinBlasPlugin", "BUILTIN_PLUGIN_NAME"]

BUILTIN_PLUGIN_NAME = "builtin-blas3"
BUILTIN_PLUGIN_VERSION = "1"


ROUTINE_SPECS: Dict[str, RoutineSpec] = {
    "gemm": RoutineSpec(
        name="gemm",
        dim_names=("m", "k", "n"),
        operands=(
            OperandSpec("A", ("m", "k"), "regular"),
            OperandSpec("B", ("k", "n"), "regular"),
            OperandSpec("C", ("m", "n"), "regular"),
        ),
        flops=lambda d: 2.0 * d["m"] * d["k"] * d["n"],
        memory_words=lambda d: 1.0
        * (d["m"] * d["k"] + d["k"] * d["n"] + d["m"] * d["n"]),
    ),
    "symm": RoutineSpec(
        name="symm",
        dim_names=("m", "n"),
        operands=(
            OperandSpec("A", ("m", "m"), "symmetric"),
            OperandSpec("B", ("m", "n"), "regular"),
            OperandSpec("C", ("m", "n"), "regular"),
        ),
        flops=lambda d: 2.0 * d["m"] * d["m"] * d["n"],
        memory_words=lambda d: 1.0 * (d["m"] * d["m"] + 2 * d["m"] * d["n"]),
    ),
    "syrk": RoutineSpec(
        name="syrk",
        dim_names=("n", "k"),
        operands=(
            OperandSpec("A", ("n", "k"), "regular"),
            OperandSpec("C", ("n", "n"), "symmetric"),
        ),
        flops=lambda d: 1.0 * d["n"] * (d["n"] + 1) * d["k"],
        memory_words=lambda d: 1.0 * (d["n"] * d["k"] + d["n"] * d["n"]),
    ),
    "syr2k": RoutineSpec(
        name="syr2k",
        dim_names=("n", "k"),
        operands=(
            OperandSpec("A", ("n", "k"), "regular"),
            OperandSpec("B", ("n", "k"), "regular"),
            OperandSpec("C", ("n", "n"), "symmetric"),
        ),
        flops=lambda d: 2.0 * d["n"] * (d["n"] + 1) * d["k"],
        memory_words=lambda d: 1.0 * (2 * d["n"] * d["k"] + d["n"] * d["n"]),
    ),
    "trmm": RoutineSpec(
        name="trmm",
        dim_names=("m", "n"),
        operands=(
            OperandSpec("A", ("m", "m"), "triangular"),
            OperandSpec("B", ("m", "n"), "regular"),
        ),
        flops=lambda d: 1.0 * d["m"] * d["m"] * d["n"],
        memory_words=lambda d: 1.0 * (d["m"] * d["m"] + d["m"] * d["n"]),
    ),
    "trsm": RoutineSpec(
        name="trsm",
        dim_names=("m", "n"),
        operands=(
            OperandSpec("A", ("m", "m"), "triangular"),
            OperandSpec("B", ("m", "n"), "regular"),
        ),
        flops=lambda d: 1.0 * d["m"] * d["m"] * d["n"],
        memory_words=lambda d: 1.0 * (d["m"] * d["m"] + d["m"] * d["n"]),
    ),
}


class BuiltinBlasPlugin(RoutinePlugin):
    """Provider of the twelve builtin BLAS L3 routine keys."""

    name = BUILTIN_PLUGIN_NAME
    version = BUILTIN_PLUGIN_VERSION

    def routine_specs(self) -> Sequence[RoutineSpec]:
        return tuple(ROUTINE_SPECS.values())
