"""Routine specifications and spec-derived metadata.

This module is the canonical home of :class:`RoutineSpec` /
:class:`OperandSpec` (re-exported by :mod:`repro.blas.api` for backward
compatibility) plus everything that can be *derived* from a spec instead of
being maintained in parallel literal tables:

* :func:`feature_layout` — the Table III feature set (names, product bases
  and column operations) generalised to any number of free dimensions; for
  two- and three-dimension routines it reproduces the paper's feature lists
  exactly, feature for feature.
* :func:`derive_footprint_terms` — the memory footprint of a routine as
  (coefficient, dim-index factors) monomial terms read off the operand
  table, replacing the hard-coded per-routine table that
  :mod:`repro.core.features` used to keep.
* :func:`make_routine_spec` — the plugin-authoring constructor: validates
  the dims schema and fills in a derived ``memory_words`` so a minimal
  plugin only has to declare name, dims, operands and a FLOPs formula.

Specs are frozen and hashable, so the derivation helpers are memoised per
spec object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PRECISIONS",
    "OperandSpec",
    "RoutineSpec",
    "FeatureLayout",
    "feature_layout",
    "derive_footprint_terms",
    "derived_memory_words",
    "tiling_schema",
    "make_routine_spec",
]


PRECISIONS: Dict[str, np.dtype] = {
    "s": np.dtype(np.float32),
    "d": np.dtype(np.float64),
}


@dataclass(frozen=True)
class OperandSpec:
    """Shape/type of one matrix operand as listed in Table I.

    ``shape`` entries are dimension names from the owning spec's
    ``dim_names`` or integer literals (as strings, e.g. ``"1"`` for a
    vector operand).
    """

    name: str
    shape: Tuple[str, str]
    kind: str  # "regular", "symmetric", "triangular"


@dataclass(frozen=True)
class RoutineSpec:
    """Specification of one routine served by the thread-count predictor.

    Attributes
    ----------
    name:
        Base routine name (``"gemm"``, ``"symm"``, ...), lowercase.
    dim_names:
        The free size parameters the ADSALA sampler draws (paper: three for
        GEMM, two for the rest; plugins may declare any number).
    operands:
        Operand table matching the paper's Table I.
    flops:
        Callable mapping the dimension dict to the floating-point operation
        count of the routine.
    memory_words:
        Callable mapping the dimension dict to the number of matrix elements
        that must be resident (input/output operands counted once even when
        overwritten, per the paper's footnote on TRMM/TRSM).
    precisions:
        The precision prefixes the routine supports (default both).
    analytic:
        Whether the builtin :class:`~repro.machine.perfmodel.PerformanceModel`
        can time the routine analytically.  True for the BLAS built-ins;
        plugin specs default to False unless they opt in.
    cost_model:
        Optional plugin analytic simulator: ``f(platform, precision,
        dim_arrays, threads_array) -> total_seconds_array``.  Takes
        precedence over ``analytic``.
    measure:
        Optional plugin measurement hook with the same signature — the
        plugin's way of timing the real routine.  Used when no analytic
        source exists (the "black-box" case); the simulator still layers
        its deterministic run-to-run noise on top.
    dim_ranges:
        Optional per-dimension ``(name, min, max)`` sampling bounds for the
        installation campaign; dimensions not listed use the sampler
        defaults.
    footprint_terms:
        Optional explicit monomial encoding of ``memory_words`` for the
        native column program; when omitted it is derived from ``operands``
        (see :func:`derive_footprint_terms`).

    ``flops`` and ``memory_words`` are pure arithmetic on the dimension
    values, so they accept scalars *or* aligned NumPy arrays (one entry per
    problem shape) and return a float or float array accordingly — the
    batch timing path (:meth:`repro.machine.perfmodel.PerformanceModel.breakdown_batch`)
    relies on this.
    """

    name: str
    dim_names: Tuple[str, ...]
    operands: Tuple[OperandSpec, ...]
    flops: Callable[[Dict[str, int]], float]
    memory_words: Callable[[Dict[str, int]], float]
    precisions: Tuple[str, ...] = ("s", "d")
    analytic: bool = True
    cost_model: Optional[Callable] = None
    measure: Optional[Callable] = None
    dim_ranges: Optional[Tuple[Tuple[str, int, int], ...]] = None
    footprint_terms: Optional[Tuple[Tuple[float, Tuple[int, ...]], ...]] = None

    @property
    def n_dims(self) -> int:
        return len(self.dim_names)

    @property
    def has_simulator(self) -> bool:
        """Whether an analytic timing source exists (no measurement needed)."""
        return self.cost_model is not None or self.analytic

    def dims_from_args(self, *args: int, **kwargs: int) -> Dict[str, int]:
        """Build the dimension dict from positional or keyword sizes."""
        if args and kwargs:
            raise TypeError("Pass dimensions either positionally or by name, not both")
        if args:
            if len(args) != self.n_dims:
                raise ValueError(
                    f"{self.name} expects {self.n_dims} dimensions "
                    f"{self.dim_names}, got {len(args)}"
                )
            dims = dict(zip(self.dim_names, args))
        else:
            missing = [d for d in self.dim_names if d not in kwargs]
            if missing:
                raise ValueError(f"{self.name} missing dimensions: {missing}")
            extra = [d for d in kwargs if d not in self.dim_names]
            if extra:
                raise ValueError(f"{self.name} got unexpected dimensions: {extra}")
            dims = {d: kwargs[d] for d in self.dim_names}
        for key, value in dims.items():
            value = int(value)
            if value < 1:
                raise ValueError(f"Dimension {key} must be positive, got {value}")
            dims[key] = value
        return dims

    def dim_bounds(self, name: str) -> Optional[Tuple[int, int]]:
        """Declared sampling (min, max) for one dimension, if any."""
        if self.dim_ranges is None:
            return None
        for dim, lo, hi in self.dim_ranges:
            if dim == name:
                return (int(lo), int(hi))
        return None


@dataclass(frozen=True)
class FeatureLayout:
    """The Table III feature set derived from one spec.

    ``subsets`` lists the product bases as dim-index tuples — the single
    dimensions first, then all products of two or more dimensions ordered
    by (size, lexicographic index).  The memory footprint is implicitly the
    final base, at index ``len(subsets)``.  ``ops`` gives each feature
    column as ``("nt", None)`` (the thread count), ``("base", i)`` (base
    ``i``) or ``("pt", i)`` (base ``i`` divided by the thread count).
    """

    names: Tuple[str, ...]
    subsets: Tuple[Tuple[int, ...], ...]
    ops: Tuple[Tuple[str, Optional[int]], ...]

    @property
    def n_bases(self) -> int:
        return len(self.subsets) + 1  # + memory footprint

    @property
    def n_features(self) -> int:
        return len(self.ops)


def _index_subsets(n: int) -> Tuple[Tuple[int, ...], ...]:
    """All subsets of ``range(n)`` with >= 2 elements, by (size, lex) order."""
    subsets: list = []
    for size in range(2, n + 1):
        subsets.extend(itertools.combinations(range(n), size))
    return tuple(subsets)


@lru_cache(maxsize=None)
def feature_layout(spec: RoutineSpec) -> FeatureLayout:
    """Derive the Table III feature layout from a spec.

    For ``n_dims == 3`` this reproduces ``THREE_DIM_FEATURES`` and for
    ``n_dims == 2`` ``TWO_DIM_FEATURES`` exactly (same names, same order,
    same operations); other dimension counts extend the same rule: raw
    dims, thread count, all dimension products, memory footprint, then the
    per-thread variant of every size base.
    """
    n = spec.n_dims
    if n < 1:
        raise ValueError(f"{spec.name} declares no dimensions")
    # The paper labels the two-dimension feature set d1/d2 regardless of the
    # routine's own dimension names; keep that for display compatibility.
    labels = ("d1", "d2") if n == 2 else spec.dim_names
    singles = tuple((i,) for i in range(n))
    products = _index_subsets(n)
    subsets = singles + products
    n_bases = len(subsets) + 1
    base_names = ["*".join(labels[i] for i in subset) for subset in subsets]
    base_names.append("memory_footprint")

    names = [base_names[i] for i in range(n)]
    names.append("nt")
    names.extend(base_names[n:])
    names.extend(f"{base}/nt" for base in base_names)

    ops: list = [("base", i) for i in range(n)]
    ops.append(("nt", None))
    ops.extend(("base", i) for i in range(n, n_bases))
    ops.extend(("pt", i) for i in range(n_bases))
    return FeatureLayout(names=tuple(names), subsets=subsets, ops=tuple(ops))


@lru_cache(maxsize=None)
def derive_footprint_terms(
    spec: RoutineSpec,
) -> Optional[Tuple[Tuple[float, Tuple[int, ...]], ...]]:
    """Monomial terms of ``memory_words`` read off the operand table.

    Each operand contributes one ``coefficient * dim * dim ...`` term;
    integer-literal shape entries fold into the coefficient and consecutive
    operands with the same factors merge by summing coefficients — exactly
    the algebra of the builtin ``memory_words`` lambdas, so the native
    column program built from these terms evaluates bit-identically to
    them (and :meth:`FeatureGridWriter._program_matches` verifies that
    before the program is ever used).  Returns the spec's explicit
    ``footprint_terms`` when set, or ``None`` when an operand shape cannot
    be expressed as monomials (the NumPy path then uses ``memory_words``
    directly and the native fill is skipped).
    """
    if spec.footprint_terms is not None:
        return spec.footprint_terms
    if not spec.operands:
        return None
    index = {name: i for i, name in enumerate(spec.dim_names)}
    terms: list = []
    for operand in spec.operands:
        coefficient = 1.0
        factors = []
        for entry in operand.shape:
            if entry in index:
                factors.append(index[entry])
            else:
                try:
                    coefficient = coefficient * float(entry)
                except (TypeError, ValueError):
                    return None
        key = tuple(factors)
        if terms and terms[-1][1] == key:
            terms[-1] = (terms[-1][0] + coefficient, key)
        else:
            terms.append((coefficient, key))
    return tuple(terms)


@lru_cache(maxsize=None)
def tiling_schema(spec: RoutineSpec) -> Tuple[Tuple[str, ...], bool, str]:
    """``(tile_dims, triangular, panel_dim)`` for the analytic cost model.

    Derived from the operand table (the output operand is the last one, per
    Table I convention): the output's free dimensions bound the tile-level
    parallelism — halved to a triangular count when the output is a
    symmetric square — and the panel (accumulation) dimension is the first
    free dimension *not* appearing in the output, falling back to the first
    operand's leading dimension.  For the six BLAS built-ins this
    reproduces the previously hard-coded routine branches exactly: GEMM
    tiles (m, n) and accumulates over k, SYRK/SYR2K tile the triangular n
    and accumulate over k, SYMM/TRMM/TRSM tile (m, n) and accumulate over
    the square operand dimension m.
    """
    if not spec.operands:
        return (spec.dim_names, False, spec.dim_names[0])
    output = spec.operands[-1]
    out_dims = tuple(entry for entry in output.shape if entry in spec.dim_names)
    triangular = (
        output.kind == "symmetric"
        and len(set(output.shape)) == 1
        and len(out_dims) >= 1
    )
    tile_dims = (out_dims[0],) if triangular else out_dims
    if not tile_dims:
        tile_dims = spec.dim_names
    panel_dim = None
    for name in spec.dim_names:
        if name not in output.shape:
            panel_dim = name
            break
    if panel_dim is None:
        first = spec.operands[0]
        for entry in first.shape:
            if entry in spec.dim_names:
                panel_dim = entry
                break
    if panel_dim is None:
        panel_dim = spec.dim_names[0]
    return (tile_dims, triangular, panel_dim)


def derived_memory_words(
    dim_names: Sequence[str], operands: Sequence[OperandSpec]
) -> Callable[[Dict[str, object]], object]:
    """Default ``memory_words`` summing the operand areas left to right."""
    names = tuple(dim_names)
    index = {name: i for i, name in enumerate(names)}
    plan = []
    for operand in operands:
        coefficient = 1.0
        factors = []
        for entry in operand.shape:
            if entry in index:
                factors.append(entry)
            else:
                coefficient = coefficient * float(entry)
        plan.append((coefficient, tuple(factors)))

    def memory_words(dims, _plan=tuple(plan)):
        total = None
        for coefficient, factors in _plan:
            value = coefficient
            for factor in factors:
                value = value * dims[factor]
            total = value if total is None else total + value
        return total if total is not None else 0.0

    return memory_words


def make_routine_spec(
    name: str,
    dim_names: Sequence[str],
    operands: Sequence[OperandSpec | Tuple[str, Tuple[str, str], str]],
    flops: Callable,
    memory_words: Optional[Callable] = None,
    *,
    precisions: Sequence[str] = ("s", "d"),
    analytic: bool = False,
    cost_model: Optional[Callable] = None,
    measure: Optional[Callable] = None,
    dim_ranges: Optional[Dict[str, Tuple[int, int]]] = None,
    footprint_terms: Optional[Sequence[Tuple[float, Sequence[int]]]] = None,
) -> RoutineSpec:
    """Validated constructor for plugin routine specs.

    Unlike the raw dataclass this defaults ``analytic`` to False (plugins
    must opt in to the builtin performance model) and derives
    ``memory_words`` from the operand table when not given, so a minimal
    plugin declares only name, dims, operands and a FLOPs formula plus one
    timing source (``cost_model`` or ``measure``).
    """
    key = str(name).lower()
    if not key.isidentifier():
        raise ValueError(f"Routine name {name!r} must be a lowercase identifier")
    dims = tuple(str(d) for d in dim_names)
    if not dims:
        raise ValueError(f"Routine {key!r} must declare at least one dimension")
    if len(set(dims)) != len(dims):
        raise ValueError(f"Routine {key!r} has duplicate dimension names {dims}")
    ops = tuple(
        operand if isinstance(operand, OperandSpec) else OperandSpec(*operand)
        for operand in operands
    )
    for operand in ops:
        for entry in operand.shape:
            if entry in dims:
                continue
            try:
                float(entry)
            except (TypeError, ValueError):
                raise ValueError(
                    f"Operand {operand.name!r} of {key!r} references unknown "
                    f"dimension {entry!r} (declared: {dims})"
                ) from None
    precs = tuple(str(p) for p in precisions)
    if not precs or any(p not in PRECISIONS for p in precs):
        raise ValueError(
            f"Routine {key!r} precisions {precs} must be drawn from "
            f"{tuple(PRECISIONS)}"
        )
    if memory_words is None:
        if not ops:
            raise ValueError(
                f"Routine {key!r} needs operands or an explicit memory_words"
            )
        memory_words = derived_memory_words(dims, ops)
    ranges = None
    if dim_ranges:
        unknown = [d for d in dim_ranges if d not in dims]
        if unknown:
            raise ValueError(f"dim_ranges names unknown dimensions {unknown}")
        ranges = tuple(
            (d, int(lo), int(hi)) for d, (lo, hi) in sorted(dim_ranges.items())
        )
        for d, lo, hi in ranges:
            if lo < 1 or hi <= lo:
                raise ValueError(f"dim_ranges[{d!r}] needs 1 <= min < max")
    terms = None
    if footprint_terms is not None:
        terms = tuple(
            (float(coef), tuple(int(f) for f in factors))
            for coef, factors in footprint_terms
        )
    return RoutineSpec(
        name=key,
        dim_names=dims,
        operands=ops,
        flops=flops,
        memory_words=memory_words,
        precisions=precs,
        analytic=bool(analytic),
        cost_model=cost_model,
        measure=measure,
        dim_ranges=ranges,
        footprint_terms=terms,
    )
