"""Pluggable routine ecosystem.

The fixed BLAS-12 of the paper lives on as the first plugin
(:mod:`repro.routines.builtin`); anything else — other precisions, batched
kernels, sparse or spectral routines, black-box libraries — registers a
:class:`~repro.routines.spec.RoutineSpec` through the
:class:`~repro.routines.catalog.RoutineCatalog` and immediately flows
through sampling, gathering, installation, simulation, serving and the
CLI.  See ``examples/plugins/README.md`` for the authoring walkthrough.
"""

from repro.routines.catalog import (
    ENTRY_POINT_GROUP,
    PLUGIN_PATH_ENV,
    CatalogEntry,
    RoutineCatalog,
    UnknownRoutineError,
    build_catalog,
    get_catalog,
    reset_catalog,
)
from repro.routines.plugin import RoutinePlugin, SpecListPlugin
from repro.routines.replay import NoTimingSourceError, ReplayTimingModel
from repro.routines.spec import (
    PRECISIONS,
    FeatureLayout,
    OperandSpec,
    RoutineSpec,
    derive_footprint_terms,
    feature_layout,
    make_routine_spec,
)

__all__ = [
    "ENTRY_POINT_GROUP",
    "PLUGIN_PATH_ENV",
    "CatalogEntry",
    "RoutineCatalog",
    "UnknownRoutineError",
    "build_catalog",
    "get_catalog",
    "reset_catalog",
    "RoutinePlugin",
    "SpecListPlugin",
    "NoTimingSourceError",
    "ReplayTimingModel",
    "PRECISIONS",
    "FeatureLayout",
    "OperandSpec",
    "RoutineSpec",
    "derive_footprint_terms",
    "feature_layout",
    "make_routine_spec",
]
