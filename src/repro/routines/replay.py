"""Observed-traffic replay as a timing source.

A plugin routine with neither an analytic ``cost_model`` nor a ``measure``
hook can still be timed by *replaying* previously observed calls: the
:class:`ReplayTimingModel` holds a set of observed ``(dims, threads, time)``
triples — from a gathered :class:`~repro.core.dataset.TimingDataset` or
from serving :class:`~repro.serving.telemetry.TrafficRecord` logs — and
answers any query with the time of the nearest observation in
(log2-dimension, log2-thread) space.  Piecewise-constant, fully
deterministic, and attached to a simulator via
:meth:`repro.machine.simulator.TimingSimulator.attach_replay`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = ["ReplayTimingModel", "NoTimingSourceError"]


class NoTimingSourceError(RuntimeError):
    """A routine has no analytic model, no measure hook and no replay data."""


class ReplayTimingModel:
    """Nearest-observation replay over a log-scaled (dims, threads) space."""

    def __init__(
        self,
        dim_names: Sequence[str],
        dims: Sequence[Dict[str, int]],
        threads: Sequence[int],
        times: Sequence[float],
    ):
        self.dim_names = tuple(dim_names)
        if not (len(dims) == len(threads) == len(times)):
            raise ValueError("dims, threads and times must be aligned")
        if len(times) == 0:
            raise ValueError("replay needs at least one observation")
        points = np.empty((len(dims), len(self.dim_names) + 1), dtype=np.float64)
        for i, d in enumerate(dims):
            for j, name in enumerate(self.dim_names):
                points[i, j] = d[name]
        points[:, -1] = np.asarray(threads, dtype=np.float64)
        self._points = np.log2(np.maximum(points, 1.0))
        self._times = np.asarray(times, dtype=np.float64)

    @classmethod
    def from_dataset(cls, dataset) -> "ReplayTimingModel":
        """Build from a gathered :class:`~repro.core.dataset.TimingDataset`."""
        dim_names = tuple(dataset.dims[0]) if dataset.dims else ()
        return cls(dim_names, dataset.dims, dataset.threads, dataset.times)

    @classmethod
    def from_traffic(
        cls, dim_names: Sequence[str], records: Iterable
    ) -> "ReplayTimingModel":
        """Build from serving ``TrafficRecord`` observations."""
        records = list(records)
        return cls(
            dim_names,
            [record.dims for record in records],
            [record.threads for record in records],
            [record.observed for record in records],
        )

    @property
    def n_observations(self) -> int:
        return int(self._times.size)

    def time_batch(
        self, dims: Dict[str, np.ndarray], threads: np.ndarray
    ) -> np.ndarray:
        """Replayed total seconds for aligned dimension/thread arrays."""
        columns = [np.asarray(dims[name], dtype=np.float64) for name in self.dim_names]
        columns.append(np.asarray(threads, dtype=np.float64))
        query = np.log2(np.maximum(np.column_stack(columns), 1.0))
        # (n_query, n_obs) squared distances; argmin ties resolve to the
        # earliest observation, keeping the replay deterministic.
        deltas = query[:, None, :] - self._points[None, :, :]
        nearest = np.argmin(np.einsum("qod,qod->qo", deltas, deltas), axis=1)
        return self._times[nearest]
