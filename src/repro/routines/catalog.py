"""The routine catalog: every routine the reproduction can serve.

:class:`RoutineCatalog` maps base routine names to specs plus the identity
of the plugin that provided them.  The process-wide catalog built by
:func:`get_catalog` aggregates three discovery sources, in order:

1. **built-ins** — the BLAS-12 of the paper, re-homed as
   :class:`~repro.routines.builtin.BuiltinBlasPlugin`;
2. **plugin directories** — every ``*.py`` file in the directories listed
   in the ``ADSALA_PLUGIN_PATH`` environment variable (``os.pathsep``
   separated), loaded without being importable by name;
3. **entry points** — installed distributions advertising the
   ``adsala.routines`` entry-point group.

``parse_routine`` / ``routine_dims`` / key listings across the codebase are
thin queries against this catalog, so a routine registered here is
immediately usable by the sampler, gatherer, installer, simulator, serving
engine and CLI.  A plugin file that fails to load is skipped with a warning
(and recorded in :attr:`RoutineCatalog.load_errors`) rather than taking the
whole catalog down; name collisions, however, are hard errors.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass
from importlib import metadata as importlib_metadata
from importlib import util as importlib_util
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.routines.builtin import BuiltinBlasPlugin
from repro.routines.plugin import RoutinePlugin, SpecListPlugin
from repro.routines.spec import PRECISIONS, RoutineSpec

__all__ = [
    "UnknownRoutineError",
    "CatalogEntry",
    "RoutineCatalog",
    "get_catalog",
    "reset_catalog",
    "ENTRY_POINT_GROUP",
    "PLUGIN_PATH_ENV",
]

ENTRY_POINT_GROUP = "adsala.routines"
PLUGIN_PATH_ENV = "ADSALA_PLUGIN_PATH"


class UnknownRoutineError(KeyError):
    """A routine key no registered plugin provides.

    Subclasses :class:`KeyError` for backward compatibility with the
    pre-catalog ``parse_routine``; carries the offending key and the
    registered catalog keys for structured handling (serving rejections,
    CLI messages).
    """

    def __init__(self, routine: str, known_keys: Sequence[str]):
        self.routine = routine
        self.known_keys = tuple(known_keys)
        super().__init__(
            f"Unknown BLAS routine or plugin key {routine!r}; registered "
            f"routine keys: {list(self.known_keys)} (or a base name without "
            f"the precision prefix)"
        )


@dataclass(frozen=True)
class CatalogEntry:
    """One registered base routine and the plugin identity behind it."""

    spec: RoutineSpec
    plugin_name: str
    plugin_version: str
    source: str  # "builtin", "directory", "entry-point" or "runtime"

    @property
    def base(self) -> str:
        return self.spec.name

    @property
    def has_simulator(self) -> bool:
        return self.spec.has_simulator

    def keys(self) -> List[str]:
        """Precision-qualified routine keys of this entry."""
        return [prefix + self.spec.name for prefix in self.spec.precisions]

    def provenance(self) -> Dict[str, str]:
        """The plugin identity dict recorded in bundle manifests."""
        return {
            "name": self.plugin_name,
            "version": self.plugin_version,
            "source": self.source,
        }


class RoutineCatalog:
    """Ordered registry of routine specs keyed by base name."""

    def __init__(self):
        self._entries: Dict[str, CatalogEntry] = {}
        self._lock = threading.Lock()
        #: (origin, message) pairs for plugin files/entry points that failed
        #: to load and were skipped.
        self.load_errors: List[Tuple[str, str]] = []

    # -- registration ----------------------------------------------------------
    def register_plugin(
        self, plugin: RoutinePlugin, source: str = "runtime"
    ) -> List[str]:
        """Register every spec of a plugin; returns the new base names."""
        specs = list(plugin.routine_specs())
        if not specs:
            raise ValueError(f"Plugin {plugin.name!r} provides no routine specs")
        registered = []
        for spec in specs:
            self.register_spec(
                spec,
                plugin_name=str(plugin.name),
                plugin_version=str(plugin.version),
                source=source,
            )
            registered.append(spec.name)
        return registered

    def register_spec(
        self,
        spec: RoutineSpec,
        plugin_name: str,
        plugin_version: str = "0",
        source: str = "runtime",
    ) -> CatalogEntry:
        """Register one spec under a plugin identity (collisions are errors)."""
        if not isinstance(spec, RoutineSpec):
            raise TypeError(f"Expected a RoutineSpec, got {type(spec).__name__}")
        base = spec.name
        if not base or base != base.lower() or not base.isidentifier():
            raise ValueError(
                f"Routine base name {base!r} must be a lowercase identifier"
            )
        with self._lock:
            taken = self._all_names_locked()
            new_names = [base] + [p + base for p in spec.precisions]
            for name in new_names:
                if name in taken:
                    owner = self._owner_of_locked(name)
                    raise ValueError(
                        f"Routine name {name!r} from plugin {plugin_name!r} "
                        f"collides with {owner}"
                    )
            entry = CatalogEntry(
                spec=spec,
                plugin_name=plugin_name,
                plugin_version=plugin_version,
                source=source,
            )
            self._entries[base] = entry
        return entry

    def _all_names_locked(self) -> set:
        names = set()
        for entry in self._entries.values():
            names.add(entry.base)
            names.update(entry.keys())
        return names

    def _owner_of_locked(self, name: str) -> str:
        for entry in self._entries.values():
            if name == entry.base or name in entry.keys():
                return (
                    f"routine {entry.base!r} of plugin {entry.plugin_name!r} "
                    f"({entry.source})"
                )
        return "an existing registration"

    # -- discovery -------------------------------------------------------------
    def load_directory(self, directory: str | Path) -> List[str]:
        """Load every ``*.py`` plugin file in a directory.

        Each file is executed as an anonymous module and may provide a
        ``register(catalog)`` function, a ``PLUGIN`` object, a ``PLUGINS``
        iterable or a ``ROUTINES`` spec list (with optional
        ``PLUGIN_NAME`` / ``PLUGIN_VERSION``).  Returns the base names
        registered; files that fail to execute are skipped with a warning.
        """
        directory = Path(directory)
        if not directory.is_dir():
            self._record_error(str(directory), "not a directory")
            return []
        registered: List[str] = []
        for path in sorted(directory.glob("*.py")):
            if path.name.startswith("_"):
                continue
            try:
                registered.extend(self._load_plugin_file(path))
            except Exception as exc:  # noqa: BLE001 - isolate bad plugin files
                self._record_error(str(path), f"{type(exc).__name__}: {exc}")
        return registered

    def _load_plugin_file(self, path: Path) -> List[str]:
        module_name = f"_adsala_plugin_{path.stem}_{abs(hash(str(path))) & 0xFFFF:x}"
        module_spec = importlib_util.spec_from_file_location(module_name, path)
        if module_spec is None or module_spec.loader is None:
            raise ImportError(f"cannot load plugin file {path}")
        module = importlib_util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        return self._register_module(module, default_name=path.stem, source="directory")

    def _register_module(self, module, default_name: str, source: str) -> List[str]:
        register = getattr(module, "register", None)
        if callable(register):
            before = set(self._entries)
            register(self)
            return [base for base in self._entries if base not in before]
        plugins: List[RoutinePlugin] = []
        plugin = getattr(module, "PLUGIN", None)
        if plugin is not None:
            plugins.append(self._as_plugin(plugin))
        for candidate in getattr(module, "PLUGINS", ()):
            plugins.append(self._as_plugin(candidate))
        specs = list(getattr(module, "ROUTINES", ()))
        if specs:
            plugins.append(
                SpecListPlugin(
                    name=getattr(module, "PLUGIN_NAME", default_name),
                    specs=specs,
                    version=str(getattr(module, "PLUGIN_VERSION", "0")),
                )
            )
        if not plugins:
            raise ValueError(
                "plugin module defines none of register()/PLUGIN/PLUGINS/ROUTINES"
            )
        registered: List[str] = []
        for item in plugins:
            registered.extend(self.register_plugin(item, source=source))
        return registered

    @staticmethod
    def _as_plugin(candidate) -> RoutinePlugin:
        if isinstance(candidate, type):
            candidate = candidate()
        if not isinstance(candidate, RoutinePlugin):
            raise TypeError(
                f"Expected a RoutinePlugin, got {type(candidate).__name__}"
            )
        return candidate

    def load_entry_points(self, group: str = ENTRY_POINT_GROUP) -> List[str]:
        """Register plugins advertised through ``importlib.metadata``."""
        registered: List[str] = []
        try:
            entry_points = importlib_metadata.entry_points(group=group)
        except Exception as exc:  # pragma: no cover - environment dependent
            self._record_error(f"entry-points:{group}", str(exc))
            return registered
        for entry_point in entry_points:
            try:
                loaded = entry_point.load()
                if isinstance(loaded, (RoutinePlugin, type)):
                    plugin = self._as_plugin(loaded)
                elif callable(loaded):
                    plugin = self._as_plugin(loaded())
                else:
                    registered.extend(
                        self._register_module(
                            loaded, default_name=entry_point.name, source="entry-point"
                        )
                    )
                    continue
                registered.extend(self.register_plugin(plugin, source="entry-point"))
            except Exception as exc:  # noqa: BLE001 - isolate bad entry points
                self._record_error(
                    f"entry-point:{entry_point.name}",
                    f"{type(exc).__name__}: {exc}",
                )
        return registered

    def _record_error(self, origin: str, message: str) -> None:
        self.load_errors.append((origin, message))
        warnings.warn(
            f"Skipping routine plugin {origin}: {message}",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- queries ---------------------------------------------------------------
    def __contains__(self, base: str) -> bool:
        return base in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def bases(self) -> List[str]:
        """Registered base names in registration order."""
        return list(self._entries)

    def keys(self) -> List[str]:
        """All precision-qualified routine keys in registration order."""
        keys: List[str] = []
        for entry in self._entries.values():
            keys.extend(entry.keys())
        return keys

    def entries(self) -> List[CatalogEntry]:
        return list(self._entries.values())

    def entry(self, base: str) -> CatalogEntry:
        try:
            return self._entries[base]
        except KeyError:
            raise UnknownRoutineError(base, self.keys()) from None

    def entry_for_key(self, routine: str) -> CatalogEntry:
        """The entry behind a routine key (precision prefix allowed)."""
        _, base, _ = self.resolve(routine)
        return self._entries[base]

    def resolve(self, routine: str) -> Tuple[str, str, RoutineSpec]:
        """Split ``"dgemm"`` into ``("d", "gemm", spec)``.

        A bare base name defaults to double precision when the routine
        supports it, else to its first declared precision.
        """
        key = str(routine).lower()
        entry = self._entries.get(key)
        if entry is not None:
            prefix = "d" if "d" in entry.spec.precisions else entry.spec.precisions[0]
            return prefix, key, entry.spec
        prefix, base = key[:1], key[1:]
        entry = self._entries.get(base)
        if (
            entry is not None
            and prefix in PRECISIONS
            and prefix in entry.spec.precisions
        ):
            return prefix, base, entry.spec
        raise UnknownRoutineError(routine, self.keys())


# -- the process-wide catalog --------------------------------------------------
_global_lock = threading.Lock()
_global_catalog: Optional[RoutineCatalog] = None


def _env_plugin_dirs() -> Iterable[str]:
    raw = os.environ.get(PLUGIN_PATH_ENV, "")
    for part in raw.split(os.pathsep):
        part = part.strip()
        if part:
            yield part


def build_catalog(
    plugin_dirs: Optional[Sequence[str]] = None, entry_points: bool = True
) -> RoutineCatalog:
    """A fresh catalog with built-ins plus the requested discovery sources."""
    catalog = RoutineCatalog()
    catalog.register_plugin(BuiltinBlasPlugin(), source="builtin")
    dirs = list(_env_plugin_dirs()) if plugin_dirs is None else list(plugin_dirs)
    for directory in dirs:
        catalog.load_directory(directory)
    if entry_points:
        catalog.load_entry_points()
    return catalog


def get_catalog() -> RoutineCatalog:
    """The process-wide catalog, built on first use.

    Discovery (``ADSALA_PLUGIN_PATH`` directories, ``adsala.routines``
    entry points) runs once; call :func:`reset_catalog` to force a rescan
    (tests, or after changing the environment).
    """
    global _global_catalog
    catalog = _global_catalog
    if catalog is None:
        with _global_lock:
            catalog = _global_catalog
            if catalog is None:
                catalog = build_catalog()
                _global_catalog = catalog
    return catalog


def reset_catalog() -> None:
    """Drop the process-wide catalog so the next use rebuilds it."""
    global _global_catalog
    with _global_lock:
        _global_catalog = None
