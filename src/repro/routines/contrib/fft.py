"""FFT-shaped kernel plugin: a 2-D complex transform.

The interesting property is the FLOPs formula: ``5 m n log2(m n)`` is not
a monomial in the dimensions, so the derived footprint/feature machinery
must fall back gracefully (the *operand* table is still monomial — two
complex m x n arrays — only the work formula is not).  The scaling law
has an all-to-all transpose phase between the row and column passes whose
cost grows with the thread count, giving a genuine interior optimum.
"""

from __future__ import annotations

import numpy as np

from repro.routines.plugin import SpecListPlugin
from repro.routines.spec import make_routine_spec

__all__ = ["FftPlugin", "FFT2D_SPEC"]

#: Transpose/exchange cost factor per thread pair (seconds per word).
_EXCHANGE_SECONDS_PER_WORD = 2.5e-11


def _fft2d_cost(platform, precision, dims, threads):
    m = np.asarray(dims["m"], dtype=np.float64)
    n = np.asarray(dims["n"], dtype=np.float64)
    t = np.asarray(threads, dtype=np.float64)
    width = 2.0 if precision == "s" else 1.0
    peak = platform.peak_gflops_per_core * 1e9 * width
    points = m * n
    flops = 5.0 * points * np.log2(np.maximum(points, 2.0))
    # Butterflies are latency-bound: ~35% of peak, scaling with threads.
    kernel = flops / (peak * 0.35 * t)
    # The row->column transpose is an all-to-all exchange whose per-word
    # cost grows with the number of participating threads.
    exchange = _EXCHANGE_SECONDS_PER_WORD * points * np.log2(t + 1.0)
    return kernel + exchange


FFT2D_SPEC = make_routine_spec(
    "fft2d",
    ("m", "n"),
    [
        ("input", ("2", "m", "n"), "regular"),
        ("output", ("2", "m", "n"), "regular"),
    ],
    flops=lambda d: 5.0 * d["m"] * d["n"] * np.log2(
        np.maximum(np.asarray(d["m"], dtype=np.float64) * d["n"], 2.0)
    ),
    cost_model=_fft2d_cost,
    dim_ranges={"m": (64, 16384), "n": (64, 16384)},
)


class FftPlugin(SpecListPlugin):
    """2-D complex FFT (``sfft2d`` / ``dfft2d``)."""

    def __init__(self):
        super().__init__("contrib-fft", [FFT2D_SPEC], version="1.0")
